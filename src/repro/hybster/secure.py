"""Secure client-to-server envelopes.

Client traffic rides TLS in every evaluated configuration ("Secure
socket connections are applied to the client-to-replica communication
for both the baseline and Troxy", Section VI-C). A
:class:`SecureEnvelope` binds a message body to a TLS record sealed over
the body's digest: opening verifies the record (integrity + replay
sequence) *and* that the body matches the sealed digest, so a
man-in-the-middle replica altering either part is detected — without the
simulation having to serialize full payload bytes.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..crypto.tls import TlsEndpoint, TlsError, TlsRecord


@dataclass(frozen=True)
class SecureEnvelope:
    """A message body accompanied by its sealed digest."""

    record: TlsRecord
    body: object

    @property
    def wire_size(self) -> int:
        return self.record.wire_size + self.body.wire_size  # type: ignore[attr-defined]


def seal_body(endpoint: TlsEndpoint, body) -> SecureEnvelope:
    """Seal ``body`` for the peer endpoint of ``endpoint``."""
    digest = body.digest() if hasattr(body, "digest") else body.auth_bytes()
    return SecureEnvelope(endpoint.seal(digest), body)


def open_body(endpoint: TlsEndpoint, envelope: SecureEnvelope):
    """Verify and unwrap an envelope; raises TlsError on any mismatch."""
    digest = endpoint.open(envelope.record)
    body = envelope.body
    expected = body.digest() if hasattr(body, "digest") else body.auth_bytes()
    if digest != expected:
        raise TlsError("envelope body does not match sealed digest")
    return body
