"""Protocol messages of the Hybster-style hybrid BFT protocol.

Hybster [13] orders requests with a leader whose ORDER messages are
certified by a trusted monotonic counter: the counter value *is* the
sequence number, so a Byzantine leader cannot assign two requests to the
same slot. Followers acknowledge with counter-certified COMMITs; a slot
is committed once f+1 of the 2f+1 replicas have certified it.

All messages expose ``auth_bytes()`` (the canonical byte string covered
by MACs / counter certificates) and ``wire_size`` (modelled bytes on the
wire, used by the network simulation).

Messages are immutable, so every derived quantity is computed once:
``wire_size`` is precomputed at construction (cost models read it on
every hop), per-instance digests are cached on first use, and content
digests go through :func:`repro.crypto.primitives.intern_digest` so the
2f+1 replicas that each hash the same ORDER/COMMIT content share one
SHA-256 evaluation (see docs/PERFORMANCE.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..apps.base import Operation, Payload
from ..crypto.primitives import DIGEST_SIZE, MAC_SIZE, digest_of, intern_digest
from ..sgx.counters import CounterCertificate

_HEADER = 16  # type tag, lengths, framing


@dataclass(frozen=True)
class Request:
    """A client operation as it enters the BFT protocol.

    ``origin`` names the contact point replies must converge on: the
    replica whose Troxy submitted it (Troxy mode) or the client itself
    (baseline mode). ``unordered`` marks read-optimization requests that
    replicas execute without ordering.
    """

    client_id: str
    request_id: int
    op: Operation
    origin: str
    unordered: bool = False
    wire_size: int = field(init=False, compare=False, repr=False)

    def __post_init__(self):
        object.__setattr__(
            self, "wire_size",
            _HEADER + len(self.client_id) + 8 + self.op.size + len(self.origin),
        )

    def digest(self) -> bytes:
        # try/except cache: the hit path is a plain attribute load, which
        # beats a dict.get call on every verify after the first.
        try:
            return self._digest
        except AttributeError:
            cached = digest_of(
                self.client_id.encode(),
                self.request_id.to_bytes(8, "big"),
                self.op.digest(),
                b"u" if self.unordered else b"o",
            )
            object.__setattr__(self, "_digest", cached)
            return cached

    def auth_bytes(self) -> bytes:
        try:
            return self._auth
        except AttributeError:
            cached = b"REQ" + self.digest()
            object.__setattr__(self, "_auth", cached)
            return cached


@dataclass(frozen=True)
class Batch:
    """An ordered run of client requests agreed on as one slot.

    The leader certifies a single monotonic-counter value for the whole
    batch; replicas execute the entries strictly in tuple order, so the
    batch digest must commit to both the entries *and* their order. A
    single-request batch is never put on the wire — the leader emits the
    bare :class:`Request` instead, keeping the pre-batching wire format
    (and the fig5 message flow) byte-for-byte intact at batch size 1.
    """

    requests: tuple[Request, ...]
    wire_size: int = field(init=False, compare=False, repr=False)

    def __post_init__(self):
        if len(self.requests) < 2:
            raise ValueError(
                f"a Batch carries at least two requests, got {len(self.requests)}"
            )
        object.__setattr__(
            self, "wire_size",
            _HEADER + sum(request.wire_size for request in self.requests),
        )

    def __len__(self) -> int:
        return len(self.requests)

    def __iter__(self):
        return iter(self.requests)

    def digest(self) -> bytes:
        """Order-sensitive digest over the entry digests (deterministic
        for a given request tuple; see tests/property)."""
        try:
            return self._digest
        except AttributeError:
            cached = digest_of(
                b"BATCH",
                len(self.requests).to_bytes(4, "big"),
                *[request.digest() for request in self.requests],
            )
            object.__setattr__(self, "_digest", cached)
            return cached

    def auth_bytes(self) -> bytes:
        return b"BATCH" + self.digest()


@dataclass(frozen=True)
class Reply:
    """A replica's reply to one request.

    Carries the digest of the original request (extension (2) in
    Section IV-A) so a Troxy can identify which cache entry a write
    outdates, and optionally ``troxy_tag`` — the HMAC computed by the
    *replica's Troxy* under the group secret bound to its instance id
    (extension (1)): the voter only counts Troxy-authenticated replies.
    """

    replica_id: str
    client_id: str
    request_id: int
    result: Payload
    request_digest: bytes
    view: int = 0
    troxy_tag: Optional[bytes] = None
    #: False when the replica re-emitted this reply from its duplicate-
    #: suppression cache instead of executing the request now. The flag
    #: is a header bit (no wire-size contribution) but is folded into
    #: ``auth_bytes`` so the untrusted host relaying the reply cannot
    #: pass a replay off as a fresh execution: a replayed read carries
    #: its *original* execution position's value, and the voting Troxy
    #: must never (re-)install it into the fast-read cache
    #: (docs/READS.md).
    fresh: bool = True
    wire_size: int = field(init=False, compare=False, repr=False)

    def __post_init__(self):
        size = (
            _HEADER
            + len(self.replica_id)
            + len(self.client_id)
            + 8
            + self.result.size
            + DIGEST_SIZE
        )
        if self.troxy_tag is not None:
            size += MAC_SIZE
        object.__setattr__(self, "wire_size", size)

    def result_digest(self) -> bytes:
        return self.result.digest()

    def auth_bytes(self) -> bytes:
        try:
            return self._auth
        except AttributeError:
            cached = b"|".join(
                [
                    b"REPLY",
                    self.replica_id.encode(),
                    self.client_id.encode(),
                    self.request_id.to_bytes(8, "big"),
                    self.result_digest(),
                    self.request_digest,
                    b"\x01" if self.fresh else b"\x00",
                ]
            )
            object.__setattr__(self, "_auth", cached)
            return cached

    def matches(self, other: "Reply") -> bool:
        """Vote equality: same request answered with the same result."""
        return (
            self.client_id == other.client_id
            and self.request_id == other.request_id
            and self.request_digest == other.request_digest
            and self.result_digest() == other.result_digest()
        )


@dataclass(frozen=True)
class Forward:
    """Follower-to-leader request relay (Fig. 5c's extra phase)."""

    request: Request
    sender: str
    wire_size: int = field(init=False, compare=False, repr=False)

    def __post_init__(self):
        object.__setattr__(
            self, "wire_size", _HEADER + self.request.wire_size + len(self.sender)
        )

    def auth_bytes(self) -> bytes:
        return b"FWD" + self.sender.encode() + self.request.digest()


@dataclass(frozen=True)
class Order:
    """Leader proposal binding ``request`` to slot ``seq`` in ``view``.

    ``cert.value == seq`` by construction; followers verify both the
    certificate and the continuity of the counter values.
    """

    view: int
    seq: int
    request: Request
    cert: CounterCertificate
    sender: str
    #: Read-lease grants piggybacked on this slot (docs/READS.md). Empty
    #: in any lease-free deployment: the wire size and content digest are
    #: then byte-identical to the historical format. Non-empty grants are
    #: folded into the certified content digest, so a relaying host can
    #: neither strip nor alter them without invalidating the order cert.
    grants: tuple = ()
    wire_size: int = field(init=False, compare=False, repr=False)

    def __post_init__(self):
        object.__setattr__(
            self, "wire_size",
            _HEADER + 16 + self.request.wire_size + self.cert.wire_size
            + sum(grant.wire_size for grant in self.grants),
        )

    @staticmethod
    def content_digest(
        view: int, seq: int, request_digest: bytes, grants: tuple = ()
    ) -> bytes:
        if grants:
            return intern_digest(
                b"ORDER", view.to_bytes(8, "big"), seq.to_bytes(8, "big"),
                request_digest, *(grant.digest() for grant in grants),
            )
        return intern_digest(
            b"ORDER", view.to_bytes(8, "big"), seq.to_bytes(8, "big"), request_digest
        )

    def digest(self) -> bytes:
        try:
            return self._digest
        except AttributeError:
            cached = self.content_digest(
                self.view, self.seq, self.request.digest(), self.grants
            )
            object.__setattr__(self, "_digest", cached)
            return cached


@dataclass(frozen=True)
class Commit:
    """A replica's counter-certified acknowledgement of an Order."""

    view: int
    seq: int
    request_digest: bytes
    cert: CounterCertificate
    sender: str
    wire_size: int = field(init=False, compare=False, repr=False)

    def __post_init__(self):
        object.__setattr__(
            self, "wire_size", _HEADER + 16 + DIGEST_SIZE + self.cert.wire_size
        )

    @staticmethod
    def content_digest(view: int, seq: int, request_digest: bytes, sender: str) -> bytes:
        return intern_digest(
            b"COMMIT",
            view.to_bytes(8, "big"),
            seq.to_bytes(8, "big"),
            request_digest,
            sender.encode(),
        )

    def digest(self) -> bytes:
        try:
            return self._digest
        except AttributeError:
            cached = self.content_digest(
                self.view, self.seq, self.request_digest, self.sender
            )
            object.__setattr__(self, "_digest", cached)
            return cached


@dataclass(frozen=True)
class Checkpoint:
    """Periodic state digest; f+1 matching ones make a checkpoint stable."""

    seq: int
    state_digest: bytes
    sender: str
    wire_size: int = field(init=False, compare=False, repr=False)

    def __post_init__(self):
        object.__setattr__(self, "wire_size", _HEADER + 8 + DIGEST_SIZE + len(self.sender))

    def auth_bytes(self) -> bytes:
        return b"CHKPT" + self.seq.to_bytes(8, "big") + self.state_digest + self.sender.encode()


@dataclass(frozen=True)
class ViewChange:
    """A replica's vote to move to ``new_view``.

    Carries the stable checkpoint and every Order the replica has
    accepted above it; the counter certificate makes the vote
    non-equivocating.
    """

    new_view: int
    stable_seq: int
    state_snapshot: bytes
    prepared: tuple[Order, ...]
    sender: str
    cert: CounterCertificate

    @staticmethod
    def content_digest(new_view: int, stable_seq: int, prepared_digest: bytes, sender: str) -> bytes:
        return digest_of(
            b"VIEWCHANGE",
            new_view.to_bytes(8, "big"),
            stable_seq.to_bytes(8, "big"),
            prepared_digest,
            sender.encode(),
        )

    def digest(self) -> bytes:
        prepared_digest = digest_of(*[order.digest() for order in self.prepared])
        return self.content_digest(self.new_view, self.stable_seq, prepared_digest, self.sender)

    @property
    def wire_size(self) -> int:
        return (
            _HEADER
            + 16
            + len(self.state_snapshot)
            + sum(order.wire_size for order in self.prepared)
            + self.cert.wire_size
        )


@dataclass(frozen=True)
class NewView:
    """New leader's view installation: proofs plus re-proposed Orders."""

    view: int
    view_changes: tuple[ViewChange, ...]
    orders: tuple[Order, ...]
    sender: str
    cert: CounterCertificate

    @staticmethod
    def content_digest(view: int, orders_digest: bytes, sender: str) -> bytes:
        return digest_of(b"NEWVIEW", view.to_bytes(8, "big"), orders_digest, sender.encode())

    def digest(self) -> bytes:
        orders_digest = digest_of(*[order.digest() for order in self.orders])
        return self.content_digest(self.view, orders_digest, self.sender)

    @property
    def wire_size(self) -> int:
        return (
            _HEADER
            + 8
            + sum(vc.wire_size for vc in self.view_changes)
            + sum(order.wire_size for order in self.orders)
            + self.cert.wire_size
        )


@dataclass(frozen=True)
class FetchOrders:
    """Ask a peer to resend ORDERs for a gap in the sequence space.

    Sent when a replica's in-order intake stalls behind buffered orders
    (e.g. messages dropped during a view installation window)."""

    view: int
    first: int
    last: int
    sender: str

    def auth_bytes(self) -> bytes:
        return (
            b"FETCH"
            + self.view.to_bytes(8, "big")
            + self.first.to_bytes(8, "big")
            + self.last.to_bytes(8, "big")
            + self.sender.encode()
        )

    @property
    def wire_size(self) -> int:
        return _HEADER + 24 + len(self.sender)


@dataclass(frozen=True)
class StateRequest:
    """Ask a peer for the application state at its stable checkpoint.

    Sent by a replica that can no longer catch up from its own log —
    after recovering from a crash, or when the cluster's stable
    checkpoint ran ahead of the orders it ever received."""

    low_water: int  # requester executes up to here; anything newer helps
    sender: str

    def auth_bytes(self) -> bytes:
        return b"STREQ" + self.low_water.to_bytes(8, "big") + self.sender.encode()

    @property
    def wire_size(self) -> int:
        return _HEADER + 8 + len(self.sender)


@dataclass(frozen=True)
class StateResponse:
    """A stable checkpoint's full state.

    The requester only installs it if ``digest_of(seq, snapshot)``
    matches a digest it has seen f+1 replicas vote for — a single
    (possibly Byzantine) responder cannot install garbage."""

    seq: int
    snapshot: bytes
    high_water: int  # responder's last executed slot (catch-up horizon)
    sender: str

    def auth_bytes(self) -> bytes:
        return (
            b"STRSP" + self.seq.to_bytes(8, "big")
            + digest_of(self.snapshot)
            + self.high_water.to_bytes(8, "big") + self.sender.encode()
        )

    @property
    def wire_size(self) -> int:
        return _HEADER + 16 + len(self.snapshot) + len(self.sender)


@dataclass(frozen=True)
class Tagged:
    """A message carried with a pairwise HMAC tag (non-counter messages)."""

    msg: object
    sender: str
    tag: bytes
    wire_size: int = field(init=False, compare=False, repr=False)

    def __post_init__(self):
        object.__setattr__(
            self, "wire_size", self.msg.wire_size + MAC_SIZE  # type: ignore[attr-defined]
        )
