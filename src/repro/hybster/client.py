"""The traditional client-side BFT library (the baseline, "BL").

This is exactly the functionality Troxy relocates to the server side
(Section I): connection handling to every replica, request distribution,
and majority voting over the received replies. Running it costs the
client machine CPU (TLS for each replica channel, reply verification)
and access-link bandwidth (n requests out, n replies in) — the overheads
the paper's WAN experiments expose.

Several logical clients share one :class:`ClientMachine` (the testbed
used two physical client machines), which owns the node, demultiplexes
incoming replies, and charges the per-machine TLS costs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..apps.base import Operation, Payload
from ..crypto.costs import RuntimeProfile, profile as cost_profile
from ..crypto.keys import KeyRing
from ..crypto.tls import TlsError, establish_session
from ..sim.engine import Environment
from ..sim.network import Network, Node
from ..sim.resources import Store
from .config import ClusterConfig
from .messages import Reply, Request
from .secure import SecureEnvelope, open_body, seal_body


@dataclass
class InvokeResult:
    """Outcome of one client operation."""

    result: Payload
    latency: float
    retries: int = 0
    read_conflict: bool = False
    ordered: bool = True


@dataclass
class ClientStats:
    invocations: int = 0
    retransmissions: int = 0
    read_conflicts: int = 0
    replies_received: int = 0
    invalid_replies: int = 0


class ClientMachine:
    """One physical client host: shared NIC, CPU, and reply dispatch."""

    def __init__(
        self,
        env: Environment,
        net: Network,
        node: Node,
        runtime: str = "java",
        owns_inbox: bool = True,
    ):
        self.env = env
        self.net = net
        self.node = node
        self.profile: RuntimeProfile = cost_profile(runtime)
        self._client_inboxes: dict[str, Store] = {}
        if owns_inbox:
            env.process(self._dispatch_loop(), name=f"{node.name}:dispatch")

    def register(self, client_id: str) -> Store:
        inbox = Store(self.env)
        self._client_inboxes[client_id] = inbox
        return inbox

    def deliver(self, msg) -> None:
        """Route one network message to the owning logical client.

        Used directly by co-located components (e.g. the Prophecy
        middlebox) that own the node's inbox themselves.
        """
        payload = msg.payload
        if isinstance(payload, SecureEnvelope) and isinstance(payload.body, Reply):
            inbox = self._client_inboxes.get(payload.body.client_id)
            if inbox is not None:
                inbox.put(payload)

    def _dispatch_loop(self):
        while True:
            msg = yield self.node.inbox.get()
            self.deliver(msg)


class BftClient:
    """One logical baseline client with the full client-side library."""

    def __init__(
        self,
        machine: ClientMachine,
        client_id: str,
        config: ClusterConfig,
        keyring: KeyRing,
        read_optimization: bool = True,
        request_distribution: str = "leader",
    ):
        if request_distribution not in ("leader", "all"):
            raise ValueError(
                f"request_distribution must be 'leader' or 'all': {request_distribution!r}"
            )
        self.machine = machine
        self.env = machine.env
        self.net = machine.net
        self.node = machine.node
        self.client_id = client_id
        self.config = config
        self.keyring = keyring
        self.read_optimization = read_optimization
        # "leader": ordered requests go to the current leader only (the
        # paper's microbenchmark setup); "all": PBFT-style multicast to
        # every replica. Unordered reads always go to every replica.
        self.request_distribution = request_distribution
        self.stats = ClientStats()
        self._request_id = 0
        self._view_hint = 0
        self._endpoints: dict[str, object] = {}
        self._inbox = machine.register(client_id)
        # Replies are demultiplexed to per-request stores by a single
        # library thread: concurrent invocations (e.g. the Prophecy
        # middlebox drives one library instance from many server
        # threads) never steal each other's replies, and TLS records
        # are opened strictly in arrival order.
        self._reply_stores: dict[int, Store] = {}
        self.env.process(self._demux_loop(), name=f"{client_id}:demux")

    # -- connection handling ---------------------------------------------------

    def connect(self, replicas) -> None:
        """Establish a secure channel to every replica (BFT clients must
        know and reach the full replica set)."""
        for replica in replicas:
            session = establish_session(
                self.keyring.tls_master(replica.replica_id),
                self.client_id,
                replica.replica_id,
            )
            self._endpoints[replica.replica_id] = session.client
            replica.register_client_channel(self.client_id, session.server)

    # -- invocation --------------------------------------------------------------

    def invoke(self, op: Operation):
        """Process generator: run one operation to a trusted result.

        Reads go down the unordered fast path when ``read_optimization``
        is enabled, falling back to ordering on conflict — the PBFT-like
        scheme the paper uses for the baseline.
        """
        start = self.env.now
        self.stats.invocations += 1
        if op.is_read and self.read_optimization:
            result = yield from self._invoke_unordered(op)
            if result is not None:
                return InvokeResult(result, self.env.now - start, ordered=False)
            self.stats.read_conflicts += 1
            result, retries = yield from self._invoke_ordered(op)
            return InvokeResult(
                result, self.env.now - start, retries=retries,
                read_conflict=True, ordered=True,
            )
        result, retries = yield from self._invoke_ordered(op)
        return InvokeResult(result, self.env.now - start, retries=retries, ordered=True)

    def _next_request(self, op: Operation, unordered: bool) -> Request:
        self._request_id += 1
        return Request(
            client_id=self.client_id,
            request_id=self._request_id,
            op=op,
            origin=self.node.name,
            unordered=unordered,
        )

    def _distribute(self, request: Request, targets=None):
        """Seal and send the request to the given replicas (default all)."""
        for replica_id, endpoint in self._endpoints.items():
            if targets is not None and replica_id not in targets:
                continue
            yield from self.node.compute(self.machine.profile.aead_cost(request.wire_size))
            envelope = seal_body(endpoint, request)
            # The client-side library is one process per machine: all its
            # logical clients share one TCP connection per replica
            # (stream=None = per-pair). Under WAN jitter this costs real
            # head-of-line blocking — a burden Troxy's per-client
            # connections do not carry.
            self.net.send(self.node.name, replica_id, envelope)

    def _ordered_targets(self, retries: int):
        """Where to send an ordered request: the presumed leader first;
        after a timeout, everyone (the PBFT retransmission rule, which
        also lets followers detect a dead leader)."""
        if self.request_distribution == "all" or retries > 0:
            return None  # everyone
        return {self.config.leader_of(self._view_hint)}

    def _invoke_ordered(self, op: Operation):
        request = self._next_request(op, unordered=False)
        retries = 0
        yield from self._distribute(request, self._ordered_targets(retries))
        while True:
            reply = yield from self._await_quorum(
                request, needed=self.config.reply_quorum,
                timeout=self.config.request_timeout,
            )
            if reply is not None:
                if reply.view > self._view_hint:
                    self._view_hint = reply.view
                return reply.result, retries
            retries += 1
            self.stats.retransmissions += 1
            self._view_hint += 1  # suspect the leader
            yield from self._distribute(request, self._ordered_targets(retries))

    def query_one(self, op: Operation, replica_id: str, timeout: float) -> Optional[Reply]:
        """Ask one replica for an unordered read (Prophecy's validation
        probe). Returns its reply or None on timeout. No voting — the
        caller owns whatever consistency argument justifies this."""
        request = self._next_request(op, unordered=True)
        endpoint = self._endpoints[replica_id]
        yield from self.node.compute(self.machine.profile.aead_cost(request.wire_size))
        self.net.send(self.node.name, replica_id, seal_body(endpoint, request))
        return (yield from self._await_quorum(request, needed=1, timeout=timeout))

    def _invoke_unordered(self, op: Operation) -> Optional[Payload]:
        """The read optimization: returns None on conflict/timeout."""
        request = self._next_request(op, unordered=True)
        yield from self._distribute(request)
        reply = yield from self._await_quorum(
            request, needed=self.config.read_quorum,
            timeout=self.config.request_timeout, conflict_detect=True,
        )
        if reply is None:
            return None
        return reply.result

    def _demux_loop(self):
        """The library's receive thread: verify each incoming reply and
        hand it to the invocation waiting for it."""
        while True:
            envelope = yield self._inbox.get()
            reply = yield from self._open_reply(envelope)
            if reply is None:
                continue
            store = self._reply_stores.get(reply.request_id)
            if store is not None:
                store.put(reply)
            # else: stale reply from a finished (retransmitted) op - drop

    def _next_reply(self, store: Store, deadline: float) -> Optional[Reply]:
        remaining = deadline - self.env.now
        if remaining <= 0:
            return None
        get_event = store.get()
        yield self.env.any_of([get_event, self.env.timeout(remaining)])
        if not get_event.triggered:
            store.cancel(get_event)
            return None
        return get_event.value

    def _await_quorum(
        self,
        request: Request,
        needed: int,
        timeout: float,
        conflict_detect: bool = False,
    ) -> Optional[Reply]:
        """Collect replies for ``request`` until ``needed`` match.

        Returns the winning reply, or None on timeout — or, with
        ``conflict_detect``, as soon as the first ``needed`` replies
        disagree (the optimistic read failed; Section VI-D).
        """
        votes: dict[bytes, list[Reply]] = {}
        voters: set[str] = set()
        deadline = self.env.now + timeout
        store = self._reply_stores.setdefault(request.request_id, Store(self.env))
        try:
            while True:
                reply = yield from self._next_reply(store, deadline)
                if reply is None:
                    return None
                if reply.request_digest != request.digest():
                    continue
                if reply.replica_id in voters:
                    continue
                voters.add(reply.replica_id)
                self.stats.replies_received += 1
                bucket = votes.setdefault(reply.result_digest(), [])
                bucket.append(reply)
                if len(bucket) >= needed:
                    return bucket[0]
                if conflict_detect and len(voters) >= needed:
                    # The optimistic read takes the FIRST f+1 replies; if
                    # they are not identical, the optimization failed and
                    # the read must be ordered. Waiting for stragglers
                    # would serialize behind the slowest replica and
                    # still race further writes.
                    return None
        finally:
            self._reply_stores.pop(request.request_id, None)

    def _open_reply(self, envelope: SecureEnvelope) -> Optional[Reply]:
        reply = envelope.body
        endpoint = self._endpoints.get(reply.replica_id)
        if endpoint is None:
            self.stats.invalid_replies += 1
            return None
        yield from self.node.compute(self.machine.profile.aead_cost(envelope.wire_size))
        try:
            open_body(endpoint, envelope)
        except TlsError:
            self.stats.invalid_replies += 1
            return None
        return reply
