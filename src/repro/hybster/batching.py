"""Leader-side batch assembly (pure logic, no simulation dependencies).

The :class:`BatchAssembler` owns the leader's request buffer and decides
when a batch should be cut: on size (the cutoff filled), on time (the
oldest buffered request waited ``batch_wait``), on an idle pipeline
(nothing in flight to overlap with, so waiting would only add latency),
or on drain (a pipeline slot freed and the configuration never waits).

Keeping the policy free of :mod:`repro.sim` types makes it directly
property-testable (``tests/property/test_batching_properties.py``): the
replica feeds it requests and timestamps, and everything it returns is a
pure function of that sequence.

Adaptive cutoff: with ``BatchConfig.adaptive`` the assembler tracks an
EWMA of request inter-arrival gaps and aims the cutoff at the number of
requests expected to arrive within one ``batch_wait`` window — light
load degrades towards single-request batches (no added latency), heavy
load grows batches towards ``max_batch`` (amortized certification).
"""

from __future__ import annotations

from collections import deque
from typing import Optional

from .config import BatchConfig
from .messages import Request

#: Smoothing factor for the inter-arrival EWMA; small enough to ride out
#: bursts, large enough to track a load shift within tens of requests.
_EWMA_ALPHA = 0.2


class BatchAssembler:
    """FIFO request buffer with size/time/pipeline flush policy."""

    def __init__(self, config: BatchConfig):
        self.config = config
        self._buffer: deque[tuple[Request, float]] = deque()
        self._ewma_gap: Optional[float] = None
        self._last_arrival: Optional[float] = None
        #: Queue wait of each request in the last :meth:`take`, in take
        #: order — the wait side of the critical-path wait/service split
        #: (repro.obs.critpath); empty until the first take.
        self.last_take_waits: tuple[float, ...] = ()

    def __len__(self) -> int:
        return len(self._buffer)

    @property
    def pending(self) -> tuple[Request, ...]:
        """Snapshot of buffered requests in arrival order (tests)."""
        return tuple(request for request, _t in self._buffer)

    @property
    def deadline(self) -> Optional[float]:
        """When the oldest buffered request must flush, or None."""
        if not self._buffer or self.config.batch_wait <= 0:
            return None
        return self._buffer[0][1] + self.config.batch_wait

    def enqueue(self, request: Request, now: float) -> None:
        """Buffer one request, updating the arrival-rate estimate."""
        if self._last_arrival is not None:
            gap = now - self._last_arrival
            if self._ewma_gap is None:
                self._ewma_gap = gap
            else:
                self._ewma_gap += _EWMA_ALPHA * (gap - self._ewma_gap)
        self._last_arrival = now
        self._buffer.append((request, now))

    def cutoff(self) -> int:
        """Requests worth waiting for before cutting a batch."""
        config = self.config
        if not config.adaptive:
            return config.max_batch
        if not self._ewma_gap or self._ewma_gap <= 0:
            return config.min_batch
        # A denormally small gap makes the ratio overflow int(); any
        # ratio beyond max_batch clamps there anyway.
        expected = config.batch_wait / self._ewma_gap
        if expected >= config.max_batch:
            return config.max_batch
        return max(config.min_batch, int(expected))

    def flush_reason(self, now: float, inflight: int) -> Optional[str]:
        """Why a batch should be cut right now, or None to keep waiting.

        ``inflight`` is the number of batches ordered but not yet
        committed; at or above ``pipeline_depth`` nothing may flush.
        """
        if not self._buffer or inflight >= self.config.pipeline_depth:
            return None
        if len(self._buffer) >= self.cutoff():
            return "size"
        if inflight == 0:
            return "idle"
        if self.config.batch_wait <= 0:
            return "drain"
        if now >= self._buffer[0][1] + self.config.batch_wait:
            return "timeout"
        return None

    def take(self, now: float = 0.0) -> tuple[Request, ...]:
        """Pop the next batch (up to ``max_batch`` requests, FIFO).

        ``now`` stamps :attr:`last_take_waits` with how long each taken
        request sat buffered (enqueue-to-take, the batch-queue wait)."""
        count = min(len(self._buffer), self.config.max_batch)
        taken = [self._buffer.popleft() for _ in range(count)]
        self.last_take_waits = tuple(now - t for _request, t in taken)
        return tuple(request for request, _t in taken)

    def drain(self) -> tuple[Request, ...]:
        """Drop and return everything buffered (view change / restart);
        callers un-register the dropped requests so client
        retransmissions can be ordered again later."""
        dropped = tuple(request for request, _t in self._buffer)
        self._buffer.clear()
        return dropped
