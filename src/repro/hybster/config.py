"""Cluster configuration for a Hybster deployment."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class ClusterConfig:
    """Static membership and protocol parameters.

    Hybster's hybrid fault model tolerates ``f`` Byzantine replica faults
    with ``n = 2f + 1`` replicas (trusted counters rule out equivocation).
    """

    f: int = 1
    checkpoint_interval: int = 128
    request_timeout: float = 2.0  # client retransmission timeout
    progress_timeout: float = 1.0  # replica-side view-change trigger
    runtime: str = "java"  # protocol-processing cost profile

    def __post_init__(self):
        if self.f < 1:
            raise ValueError(f"f must be >= 1, got {self.f}")
        if self.checkpoint_interval < 1:
            raise ValueError("checkpoint_interval must be positive")

    @property
    def n(self) -> int:
        return 2 * self.f + 1

    @property
    def commit_quorum(self) -> int:
        """Replicas whose counter-certified COMMIT makes a slot durable."""
        return self.f + 1

    @property
    def reply_quorum(self) -> int:
        """Matching replies a voter needs to trust a result."""
        return self.f + 1

    @property
    def read_quorum(self) -> int:
        """Identical unordered-read replies the BL client optimization needs."""
        return self.f + 1

    @property
    def replica_ids(self) -> tuple[str, ...]:
        try:
            return self._replica_ids
        except AttributeError:
            cached = tuple(f"replica-{i}" for i in range(self.n))
            object.__setattr__(self, "_replica_ids", cached)
            return cached

    def leader_of(self, view: int) -> str:
        return self.replica_ids[view % self.n]

    def index_of(self, replica_id: str) -> int:
        try:
            return self.replica_ids.index(replica_id)
        except ValueError:
            raise ValueError(f"unknown replica id: {replica_id!r}") from None
