"""Cluster configuration for a Hybster deployment."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class BatchConfig:
    """Ordered-request batching and agreement pipelining (docs/BATCHING.md).

    The leader accumulates client requests into bounded batches and
    certifies one trusted-counter value per batch. ``max_batch`` caps the
    batch size; ``batch_wait`` caps how long the oldest buffered request
    may wait for the batch to fill (0 means "never wait": batches form
    only from the backlog that accumulates while the pipeline is full).
    ``pipeline_depth`` bounds how many batches may be ordered but not yet
    committed; while the pipeline is full, arrivals buffer — which is
    what makes batches fill under load. With ``adaptive`` the flush
    cutoff follows the observed arrival rate (how many requests are
    expected to arrive within one ``batch_wait`` window) instead of
    always waiting for ``max_batch``.

    The default configuration is *off*: requests are ordered one per
    ORDER/COMMIT round through the exact pre-batching code path, so the
    wire format and message flow are unchanged (the conformance suite in
    ``tests/hybster`` pins this byte for byte).
    """

    max_batch: int = 1
    batch_wait: float = 0.0
    pipeline_depth: int = 1
    adaptive: bool = False
    min_batch: int = 1  # adaptive cutoff floor

    def __post_init__(self):
        if self.max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {self.max_batch}")
        if self.batch_wait < 0:
            raise ValueError(f"batch_wait must be >= 0, got {self.batch_wait}")
        if self.pipeline_depth < 1:
            raise ValueError(
                f"pipeline_depth must be >= 1, got {self.pipeline_depth}"
            )
        if not 1 <= self.min_batch <= self.max_batch:
            raise ValueError(
                f"min_batch must be in [1, max_batch], got {self.min_batch}"
            )
        if self.adaptive and self.batch_wait <= 0:
            raise ValueError("adaptive batching requires batch_wait > 0")

    @property
    def enabled(self) -> bool:
        """Whether the batching machinery is engaged at all.

        A configuration that cannot ever form a multi-request batch or
        hold more than one slot in flight takes the legacy path.
        """
        return (
            self.max_batch > 1
            or self.adaptive
            or self.pipeline_depth > 1
            or self.batch_wait > 0
        )

    @staticmethod
    def sized(n: int, pipeline_depth: int = 2) -> "BatchConfig":
        """Fixed-size batching: flush whenever the pipeline has room,
        carrying up to ``n`` backlogged requests per batch."""
        return BatchConfig(max_batch=n, pipeline_depth=pipeline_depth)

    @staticmethod
    def adaptive_default() -> "BatchConfig":
        """Arrival-rate-driven batching with a small wait window.

        Tuned on the fig6 local-writes workload: the 50 µs window is
        short enough not to tax closed-loop latency, while the deep
        pipeline keeps slots available so the cutoff — not the pipeline
        — decides batch size (benchmarks/results/batching.txt)."""
        return BatchConfig(
            max_batch=64, batch_wait=0.00005, pipeline_depth=16, adaptive=True
        )


@dataclass(frozen=True)
class LeaseConfig:
    """Leader-granted read leases for the Troxy fast path (docs/READS.md).

    While a Troxy enclave holds a valid lease on a key, it serves reads
    for that key straight from its fast-read cache — no f+1 cache-digest
    vote round — because the group leader guarantees no write to the key
    commits before the lease is revoked (acknowledged) or has expired on
    the shared simulation clock. ``duration`` is the lifetime of one
    grant; ``renew_margin`` is how close to expiry a serving Troxy asks
    the leader for a fresh grant; ``request_backoff`` rate-limits lease
    requests per key so a cold or contended key does not flood the
    leader.

    The default configuration is *off*: no grants, no lease messages, no
    extra protocol state — the wire trace is byte-identical to a
    pre-lease deployment (tests/integration/test_lease_conformance.py
    pins this).
    """

    enabled: bool = False
    duration: float = 0.5
    renew_margin: float = 0.125
    request_backoff: float = 0.02

    def __post_init__(self):
        if self.duration <= 0:
            raise ValueError(f"duration must be > 0, got {self.duration}")
        if not 0 < self.renew_margin < self.duration:
            raise ValueError(
                f"renew_margin must be in (0, duration), got {self.renew_margin}"
            )
        if self.request_backoff < 0:
            raise ValueError(
                f"request_backoff must be >= 0, got {self.request_backoff}"
            )

    @staticmethod
    def on(duration: float = 0.5) -> "LeaseConfig":
        return LeaseConfig(
            enabled=True,
            duration=duration,
            renew_margin=duration / 4,
            request_backoff=min(0.02, duration / 8),
        )


@dataclass(frozen=True)
class ClusterConfig:
    """Static membership and protocol parameters.

    Hybster's hybrid fault model tolerates ``f`` Byzantine replica faults
    with ``n = 2f + 1`` replicas (trusted counters rule out equivocation).
    """

    f: int = 1
    checkpoint_interval: int = 128
    request_timeout: float = 2.0  # client retransmission timeout
    progress_timeout: float = 1.0  # replica-side view-change trigger
    runtime: str = "java"  # protocol-processing cost profile
    batching: BatchConfig = field(default_factory=BatchConfig)
    leases: LeaseConfig = field(default_factory=LeaseConfig)
    #: Node-name prefix for this agreement group's replicas. The default
    #: (empty) keeps the historical ``replica-{i}`` names; sharded
    #: deployments (repro.shard) give every group beyond the first its
    #: own prefix (``g1-``, ``g2-``, ...) so groups share one network
    #: without name collisions while group 0 stays byte-compatible with
    #: the unsharded wire format.
    replica_prefix: str = ""

    def __post_init__(self):
        if self.f < 1:
            raise ValueError(f"f must be >= 1, got {self.f}")
        if self.checkpoint_interval < 1:
            raise ValueError("checkpoint_interval must be positive")

    @property
    def n(self) -> int:
        return 2 * self.f + 1

    @property
    def commit_quorum(self) -> int:
        """Replicas whose counter-certified COMMIT makes a slot durable."""
        return self.f + 1

    @property
    def reply_quorum(self) -> int:
        """Matching replies a voter needs to trust a result."""
        return self.f + 1

    @property
    def read_quorum(self) -> int:
        """Identical unordered-read replies the BL client optimization needs."""
        return self.f + 1

    @property
    def replica_ids(self) -> tuple[str, ...]:
        try:
            return self._replica_ids
        except AttributeError:
            cached = tuple(
                f"{self.replica_prefix}replica-{i}" for i in range(self.n)
            )
            object.__setattr__(self, "_replica_ids", cached)
            return cached

    def leader_of(self, view: int) -> str:
        return self.replica_ids[view % self.n]

    def index_of(self, replica_id: str) -> int:
        try:
            return self.replica_ids.index(replica_id)
        except ValueError:
            raise ValueError(f"unknown replica id: {replica_id!r}") from None
