"""Hybster: a hybrid-fault-model BFT protocol (2f+1 replicas).

The replication substrate Troxy extends. Leader-based ordering with
trusted-counter-certified ORDER/COMMIT messages, checkpoints, view
change, and the traditional client-side library (connection handling,
request distribution, reply voting) that the baseline configuration
uses and that Troxy makes obsolete.
"""

from .client import BftClient, ClientMachine, ClientStats, InvokeResult
from .config import ClusterConfig
from .messages import (
    Checkpoint,
    Commit,
    Forward,
    NewView,
    Order,
    Reply,
    Request,
    Tagged,
    ViewChange,
)
from .replica import LogEntry, Replica, ReplicaStats, noop_request
from .secure import SecureEnvelope, open_body, seal_body

__all__ = [
    "BftClient",
    "Checkpoint",
    "ClientMachine",
    "ClientStats",
    "ClusterConfig",
    "Commit",
    "Forward",
    "InvokeResult",
    "LogEntry",
    "NewView",
    "Order",
    "Reply",
    "Replica",
    "ReplicaStats",
    "Request",
    "SecureEnvelope",
    "Tagged",
    "ViewChange",
    "noop_request",
    "open_body",
    "seal_body",
]
