"""The Hybster replica state machine.

One :class:`Replica` runs on one simulated node. Incoming messages are
handled by per-message processes (modelling Hybster's parallelized
message handling across cores) while two invariants are kept serial:

* ORDER intake is processed in sequence-number order under a lock, so
  each replica's commit counter advances monotonically (continuity);
* execution happens in a dedicated process, strictly in slot order.

The trusted counter subsystem is reached through the enclave boundary
(JNI in the original Hybster), so every certify/verify pays the
crossing cost in addition to the MAC itself.

Reply delivery is pluggable through ``reply_sink`` so the same replica
core serves both the baseline deployment (replies go straight to the
client over TLS) and the Troxy deployment (replies are handed to the
local Troxy for authentication, cache invalidation, and voting).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from ..apps.base import Application, Operation, OpKind, Payload
from ..crypto.costs import RuntimeProfile, profile as cost_profile
from ..crypto.keys import KeyRing
from ..crypto.primitives import DIGEST_SIZE, digest_of
from ..crypto.tls import TlsEndpoint, TlsError
from ..sgx.counters import (
    CounterCertificate,
    CounterError,
    TrustedCounterSubsystem,
    certify_ledger_checkpoint,
)
from ..sgx.enclave import Enclave
from ..sim.engine import Environment, Process
from ..sim.network import Network, Node
from ..sim.resources import Resource, Store
from ..sim.trace import Tracer
from .batching import BatchAssembler
from .config import ClusterConfig
from .messages import (
    Batch,
    Checkpoint,
    Commit,
    FetchOrders,
    Forward,
    StateRequest,
    StateResponse,
    NewView,
    Order,
    Reply,
    Request,
    Tagged,
    ViewChange,
)
from .secure import SecureEnvelope, open_body, seal_body

NOOP_REQUEST_CLIENT = "__noop__"


def noop_request(seq: int, origin: str) -> Request:
    """Filler request used to close gaps during view changes."""
    op = Operation(OpKind.WRITE, "noop", key="__noop__")
    return Request(NOOP_REQUEST_CLIENT, seq, op, origin)


@dataclass
class LogEntry:
    """Per-slot ordering state."""

    order: Optional[Order] = None
    commit_senders: dict[str, CounterCertificate] = field(default_factory=dict)
    committed: bool = False
    executed: bool = False


@dataclass
class ReplicaStats:
    """Counters exposed for tests and benchmarks."""

    requests_submitted: int = 0
    orders_sent: int = 0
    commits_sent: int = 0
    executions: int = 0
    unordered_reads: int = 0
    view_changes: int = 0
    checkpoints_stable: int = 0
    state_transfers: int = 0
    invalid_messages: int = 0
    # Batching (leader side; all zero when batching is disabled).
    batches_sent: int = 0
    batched_requests: int = 0
    batch_flush_size: int = 0
    batch_flush_timeout: int = 0
    batch_flush_idle: int = 0
    batch_flush_drain: int = 0
    max_pipeline_depth: int = 0
    # Lease granting and write parking (leader side; docs/READS.md).
    # All zero when leases are disabled.
    lease_grants_attached: int = 0
    lease_writes_parked: int = 0
    lease_revokes_sent: int = 0
    lease_parked_released: int = 0
    lease_parked_dropped: int = 0


class Replica:
    """One Hybster replica (ordering + execution + reply routing)."""

    def __init__(
        self,
        env: Environment,
        net: Network,
        node: Node,
        replica_id: str,
        config: ClusterConfig,
        app: Application,
        keyring: KeyRing,
        counters: TrustedCounterSubsystem,
        trusted_boundary: Enclave,
        tracer: Optional[Tracer] = None,
        owns_inbox: bool = True,
    ):
        self.env = env
        self.net = net
        self.node = node
        self.replica_id = replica_id
        self.config = config
        self.app = app
        self.keyring = keyring
        self.counters = counters
        self.boundary = trusted_boundary
        self.tracer = tracer or Tracer(enabled=False)
        self.profile: RuntimeProfile = cost_profile(config.runtime)
        self.stats = ReplicaStats()

        self.view = 0
        self.log: dict[int, LogEntry] = {}
        self.next_seq = 1  # leader: next slot to assign
        self.next_exec = 1
        self.stable_seq = 0
        self.stable_snapshot: bytes = app.snapshot()
        self._next_order_intake = 1  # continuity cursor for this view
        self._pending_orders: dict[int, Order] = {}
        self._order_lock = Resource(env, capacity=1)
        self._exec_signal = Store(env)
        self._last_reply: dict[str, Reply] = {}
        self._executed_requests: dict[str, int] = {}
        self._inflight: set[tuple[str, int]] = set()
        self._client_endpoints: dict[str, TlsEndpoint] = {}
        # TLS records of one client session must be opened in arrival
        # order; concurrent message handlers serialize per client.
        self._channel_locks: dict[str, Resource] = {}
        self._checkpoint_votes: dict[int, dict[str, bytes]] = {}
        self._state_offers: dict[tuple[int, bytes], set[str]] = {}
        self._view_changes: dict[int, dict[str, ViewChange]] = {}
        self._view_change_pending: Optional[int] = None
        self._progress_deadline: Optional[float] = None
        self._stopped = False
        # Count of log entries with an installed order that are not yet
        # executed; kept in sync by the order/execute/truncate paths so
        # _progress_made() is O(1) instead of scanning the log.
        self._unexec_ordered = 0
        # Leader-side batching (docs/BATCHING.md). With the default
        # BatchConfig the assembler is absent and submit() takes the
        # exact pre-batching ordering path.
        self._batcher = (
            BatchAssembler(config.batching) if config.batching.enabled else None
        )
        self._batch_signal = Store(env) if self._batcher is not None else None
        # Slots holding a batch this leader ordered but has not yet seen
        # committed; its size is the pipeline occupancy.
        self._inflight_batch_seqs: set[int] = set()
        self._batch_generation = 0

        # Hot-path constants: every message charges serialize/hash/MAC
        # costs, so the linear-model coefficients are pinned as locals of
        # the instance instead of chasing profile attributes per call.
        prof = self.profile
        self._ser_base = prof.serialize.base
        self._ser_per_byte = prof.serialize.per_byte
        self._hash_base = prof.hash.base
        self._hash_per_byte = prof.hash.per_byte
        self._mac_cost_const = prof.mac.cost(DIGEST_SIZE)
        self._peers = tuple(
            rid for rid in config.replica_ids if rid != replica_id
        )
        self._handle_name = f"{replica_id}:handle"

        # Counters used by this replica. "order/<view>" is created lazily
        # per view by whoever becomes leader; "commit/<view>" likewise.
        self.counters.create(self._commit_counter(0))
        if self.is_leader:
            self.counters.create(self._order_counter(0))

        self.reply_sink: Callable = self._default_reply_sink
        # Batched counterpart: receives the ordered (request, reply)
        # pairs of one executed batch in a single call, so a Troxy sink
        # can invalidate every written key before any reply in the batch
        # becomes visible (fast-read freshness across batch boundaries).
        self.batch_reply_sink: Callable = self._default_batch_reply_sink
        # Fault-injection hook: when set, every dispatched payload is
        # offered to the filter first; returning False swallows it
        # (models a mute/selectively-deaf replica without touching links).
        self.dispatch_filter: Optional[Callable[[object], bool]] = None
        # Optional observability plane (repro.obs): spans around
        # ordering and execution, commit events, certify attribution.
        self.obs = None
        # Lease-read support (docs/READS.md), wired by the Troxy build
        # when leases are enabled. Everything lease-shaped is injected
        # so this layer stays importable without repro.troxy.
        self.lease_manager = None  # leader-side granting/parking state
        self.lease_directory = None  # per-replica mirror of ordered grants
        self.lease_sink: Optional[Callable] = None  # executed grants -> enclave
        self.lease_revoke_sink: Optional[Callable] = None  # self-revoke shortcut
        self.lease_keys_fn: Callable[[Operation], tuple] = lambda op: (op.key,)
        self._lease_flush_armed = False

        # Trusted-subsystem entry points (three of Hybster's boundary
        # crossings); each certify pays the crossing plus one MAC.
        for ecall_name in ("certify_order", "certify_commit", "certify_viewchange"):
            trusted_boundary.register_ecall(ecall_name, self._trusted_certify)
        # Audit-ledger checkpoints (repro.obs.audit) cross the same
        # trusted boundary; the sealed audit-ledger counter fences
        # checkpoint numbers so a rewound ledger cannot be re-certified.
        trusted_boundary.register_ecall("certify_ledger", self._certify_ledger)

        self._owns_inbox = owns_inbox
        self._loop_generation = 0
        if owns_inbox:
            env.process(self._message_loop(0), name=f"{replica_id}:loop")
        env.process(self._execution_loop(), name=f"{replica_id}:exec")
        env.process(self._progress_monitor(), name=f"{replica_id}:monitor")
        if self._batcher is not None:
            env.process(self._batch_loop(0), name=f"{replica_id}:batcher")

    # -- identity helpers ------------------------------------------------------

    @property
    def is_leader(self) -> bool:
        return self.config.leader_of(self.view) == self.replica_id

    @property
    def leader_id(self) -> str:
        return self.config.leader_of(self.view)

    def _order_counter(self, view: int) -> str:
        return f"order/{view}"

    def _commit_counter(self, view: int) -> str:
        return f"commit/{view}"

    def _ensure_counter(self, name: str) -> None:
        try:
            self.counters.create(name)
        except CounterError:
            pass

    # -- cost helpers -----------------------------------------------------------

    def _rx_cost(self, size: int) -> float:
        """Deserialize + digest an incoming protocol message."""
        return (self._ser_base + self._ser_per_byte * size) + (
            self._hash_base + self._hash_per_byte * size
        )

    def _tx_cost(self, size: int) -> float:
        return self._ser_base + self._ser_per_byte * size

    def _mac_cost(self) -> float:
        """Verify/create one MAC over a fixed-size digest."""
        return self._mac_cost_const

    def _trusted_certify(self, counter: str, value: int, digest: bytes):
        """Trusted-side body of the certify ecalls."""
        yield from self.node.compute(self._mac_cost_const)
        return self.counters.certify_at(counter, value, digest)

    def _certify_ledger(self, seq: int, head: bytes):
        """Trusted-side body of the certify_ledger ecall."""
        yield from self.node.compute(self._mac_cost_const)
        return certify_ledger_checkpoint(self.counters, seq, head)

    # -- secure client channels (baseline deployment) ----------------------------

    def register_client_channel(self, client_id: str, endpoint: TlsEndpoint) -> None:
        """Install the server-side TLS endpoint for ``client_id``."""
        self._client_endpoints[client_id] = endpoint

    # -- outbound -----------------------------------------------------------------

    def _send(self, dst: str, msg, trace: str = "") -> None:
        if self.tracer.enabled:
            self.tracer.record(self.env.now, "proto.send", self.replica_id,
                               f"{type(msg).__name__}->{dst} {trace}")
        self.net.send(self.node.name, dst, msg)

    def _broadcast(self, msg, trace: str = "") -> None:
        for rid in self._peers:
            self._send(rid, msg, trace)

    def _request_trace(self, request: Request) -> str:
        """Per-request trace label for relayed/forwarded requests, so a
        request stays attributable in the trace once batching aggregates
        the downstream ordering records."""
        if not self.tracer.enabled:
            return ""
        return f"client={request.client_id} rid={request.request_id}"

    def _tagged(self, msg) -> Tagged:
        """Wrap with a troxy-group HMAC tag (checkpoint-class messages)."""
        key = self.keyring.troxy_instance(self.replica_id)
        return Tagged(msg, self.replica_id, key.sign(msg.auth_bytes()))

    def _verify_tagged(self, tagged: Tagged) -> bool:
        key = self.keyring.troxy_instance(tagged.sender)
        return key.verify(tagged.msg.auth_bytes(), tagged.tag)  # type: ignore[attr-defined]

    # -- main loops ------------------------------------------------------------------

    def stop(self) -> None:
        """Take the replica out of service (crash, for fault injection)."""
        self._stopped = True
        self.node.crash()

    def _message_loop(self, generation: int):
        while not self._stopped:
            msg = yield self.node.inbox.get()
            if generation != self._loop_generation:
                # A restart spawned a fresh loop; hand over after
                # dispatching the message this stale loop consumed.
                if not self._stopped:
                    self.dispatch(msg.payload)
                return
            if self._stopped:
                return
            self.dispatch(msg.payload)

    def dispatch(self, payload) -> None:
        """Handle one protocol message in its own process.

        Public so a Troxy host owning the node's inbox can hand protocol
        traffic to the co-located replica.
        """
        if self._stopped:
            return
        if self.dispatch_filter is not None and not self.dispatch_filter(payload):
            return
        Process(self.env, self._handle(payload), name=self._handle_name)

    def _handle(self, payload):
        if isinstance(payload, SecureEnvelope):
            yield from self._handle_client_envelope(payload)
        elif isinstance(payload, Order):
            yield from self._handle_order(payload)
        elif isinstance(payload, Commit):
            yield from self._handle_commit(payload)
        elif isinstance(payload, Tagged) and isinstance(payload.msg, Forward):
            yield from self._handle_forward(payload)
        elif isinstance(payload, Tagged) and isinstance(payload.msg, Checkpoint):
            yield from self._handle_checkpoint(payload)
        elif isinstance(payload, Tagged) and isinstance(payload.msg, FetchOrders):
            yield from self._handle_fetch_orders(payload)
        elif isinstance(payload, Tagged) and isinstance(payload.msg, StateRequest):
            yield from self._handle_state_request(payload)
        elif isinstance(payload, Tagged) and isinstance(payload.msg, StateResponse):
            yield from self._handle_state_response(payload)
        elif isinstance(payload, ViewChange):
            yield from self._handle_view_change(payload)
        elif isinstance(payload, NewView):
            yield from self._handle_new_view(payload)
        elif isinstance(payload, Request):
            # Plain (already-authenticated) request from a co-located Troxy
            # relay; normal client traffic arrives as SecureEnvelope.
            yield from self.submit(payload)
        else:
            self.stats.invalid_messages += 1

    # -- client requests -----------------------------------------------------------------

    def _handle_client_envelope(self, envelope: SecureEnvelope):
        body = envelope.body
        if not isinstance(body, Request):
            self.stats.invalid_messages += 1
            return
        endpoint = self._client_endpoints.get(body.client_id)
        if endpoint is None:
            self.stats.invalid_messages += 1
            return
        lock = self._channel_locks.setdefault(body.client_id, Resource(self.env, 1))
        yield lock.request()
        try:
            yield from self.node.compute(self.profile.aead_cost(envelope.wire_size))
            open_body(endpoint, envelope)
        except TlsError:
            self.stats.invalid_messages += 1
            return
        finally:
            lock.release()
        # Baseline clients distribute their requests to every replica
        # themselves, so a follower must not re-relay to the leader.
        yield from self.submit(body, relay=False)

    def submit(self, request: Request, relay: bool = True):
        """Inject an authenticated request into the ordering pipeline.

        Process generator; called with client requests (baseline) or by
        the local Troxy host (Troxy deployment). With ``relay=False`` a
        follower only starts its progress timer instead of forwarding
        (the sender is known to have contacted the leader directly).
        """
        self.stats.requests_submitted += 1
        if request.unordered and request.op.is_read:
            yield from self._execute_unordered_read(request)
            return
        last = self._executed_requests.get(request.client_id)
        if last is not None and request.request_id <= last:
            cached = self._last_reply.get(request.client_id)
            if cached is not None and cached.request_id == request.request_id:
                yield from self._emit_reply(request, cached, fresh=False)
            if relay:
                # Retransmission through a (possibly new) contact point:
                # fan out so every replica re-emits its cached reply to the
                # request's current origin (needed for Troxy failover).
                yield from self.node.compute(
                    self._tx_cost(request.wire_size) + self._mac_cost_const
                )
                self._broadcast(
                    self._tagged(Forward(request, self.replica_id)),
                    trace=self._request_trace(request),
                )
            return
        if self._view_change_pending is not None:
            return  # drop during view change; clients retransmit
        if self.is_leader:
            if (request.client_id, request.request_id) in self._inflight:
                return
            self._inflight.add((request.client_id, request.request_id))
            if (
                self.lease_manager is not None
                and not request.op.is_read
                and request.client_id != NOOP_REQUEST_CLIENT
            ):
                blocked = self.lease_manager.blocking_keys(
                    self.lease_keys_fn(request.op), self.env.now
                )
                if blocked:
                    # Single writer per key: the write waits until every
                    # covering lease is revoked-and-acked or has expired
                    # on the shared clock (docs/READS.md).
                    self.stats.lease_writes_parked += 1
                    self.lease_manager.park(request, blocked)
                    for key in blocked:
                        yield from self._revoke_lease(key)
                    return
            if self._batcher is None:
                yield from self._order(request)
            else:
                self._batcher.enqueue(request, self.env.now)
                if self.obs is not None:
                    self.obs.queue_enter(self, request)
                self._batch_signal.put(True)
        elif relay:
            yield from self.node.compute(self._tx_cost(request.wire_size) + self._mac_cost_const)
            self._send(
                self.leader_id,
                self._tagged(Forward(request, self.replica_id)),
                trace=self._request_trace(request),
            )
            self._note_progress_needed()
        else:
            self._note_progress_needed()

    def _handle_forward(self, tagged: Tagged):
        forward = tagged.msg
        if not isinstance(forward, Forward):
            self.stats.invalid_messages += 1
            return
        yield from self.node.compute(self._rx_cost(tagged.wire_size) + self._mac_cost_const)
        if not self._verify_tagged(tagged):
            self.stats.invalid_messages += 1
            return
        # relay=False: a Forward must never trigger another relay, whether
        # it carries a fresh request (to the leader) or a retransmission
        # fan-out (to everyone).
        yield from self.submit(forward.request, relay=False)

    # -- ordering: leader ------------------------------------------------------------------

    def _order(self, payload):
        """Assign the next slot to ``payload`` (a Request, or a Batch of
        requests when batching cut a multi-request batch) and broadcast
        the counter-certified ORDER. One certification per slot — that
        amortization is the point of batching."""
        if not self.is_leader:
            return
        span = None
        if self.obs is not None:
            span = self.obs.order_begin(self, payload)
        seq = -1
        try:
            # The trusted order counter is a single monotonic resource:
            # serialize slot assignment + certification (Hybster does too).
            yield self._order_lock.request()
            try:
                if not self.is_leader:
                    return
                seq = self.next_seq
                self.next_seq += 1
                if self._batcher is not None:
                    self._inflight_batch_seqs.add(seq)
                payload_digest = payload.digest()
                # Pending lease grants ride this slot: they become part
                # of the certified content, so the untrusted host cannot
                # strip or alter them in a relayed ORDER (docs/READS.md).
                grants = ()
                if self.lease_manager is not None:
                    grants = self.lease_manager.grants_for_slot(seq, self.env.now)
                    self.stats.lease_grants_attached += len(grants)
                content = Order.content_digest(self.view, seq, payload_digest, grants)
                if self.obs is not None:
                    self.obs.certify_scope(self.node.name, payload)
                # Counter certification crosses the trusted boundary (JNI/SGX).
                cert = yield from self.boundary.ecall(
                    "certify_order",
                    self._order_counter(self.view),
                    seq,
                    content,
                    bytes_in=DIGEST_SIZE,
                    bytes_out=80,
                )
            finally:
                if self.obs is not None:
                    self.obs.certify_scope_end(self.node.name)
                self._order_lock.release()
            order = Order(self.view, seq, payload, cert, self.replica_id, grants)
            entry = self.log.setdefault(seq, LogEntry())
            self._install_order(entry, order)
            entry.commit_senders[self.replica_id] = cert  # the ORDER is the leader's commit
            yield from self.node.compute(self._tx_cost(order.wire_size))
            self._broadcast(order, trace=f"seq={seq}" if self.tracer.enabled else "")
            self.stats.orders_sent += 1
            self._note_progress_needed()
            self._maybe_committed(seq)
        finally:
            if span is not None:
                self.obs.order_end(span, seq)

    # -- ordering: leader batching ------------------------------------------------------------

    def _batch_loop(self, generation: int):
        """The only process that cuts and orders batches on this leader.

        Serializing flushes through one process keeps batch formation
        deterministic and makes the take-buffer/assign-slot step atomic
        (no yield between them), so FIFO arrival order maps onto
        monotonically increasing slot numbers.
        """
        signal = self._batch_signal
        while True:
            yield signal.get()
            if generation != self._batch_generation:
                if not self._stopped:
                    signal.put(True)  # hand the wakeup to the fresh loop
                return
            if self._stopped:
                return
            yield from self._drain_batches(generation)
            if self._stopped or generation != self._batch_generation:
                return

    def _drain_batches(self, generation: int):
        """Cut and order batches while the flush policy allows it."""
        batcher = self._batcher
        while (
            not self._stopped
            and generation == self._batch_generation
            and self.is_leader
            and self._view_change_pending is None
        ):
            inflight = len(self._inflight_batch_seqs)
            reason = batcher.flush_reason(self.env.now, inflight)
            if reason is not None:
                requests = batcher.take(self.env.now)
                if not requests:
                    return
                if self.obs is not None:
                    for request in requests:
                        self.obs.queue_leave(self, request, reason, len(requests))
                payload = requests[0] if len(requests) == 1 else Batch(requests)
                self.stats.batches_sent += 1
                self.stats.batched_requests += len(requests)
                counter = "batch_flush_" + reason
                setattr(self.stats, counter, getattr(self.stats, counter) + 1)
                depth = inflight + 1
                if depth > self.stats.max_pipeline_depth:
                    self.stats.max_pipeline_depth = depth
                if self.tracer.enabled:
                    self.tracer.record(
                        self.env.now, "proto.batch", self.replica_id,
                        f"n={len(requests)} reason={reason} depth={depth}",
                    )
                if self.obs is not None:
                    self.obs.batch_flush(self, len(requests), reason, depth)
                yield from self._order(payload)
                continue
            deadline = batcher.deadline
            if deadline is None or inflight >= batcher.config.pipeline_depth:
                return  # nothing to do until the next enqueue/commit signal
            # Buffered below the cutoff with the pipeline still moving:
            # wait for the flush deadline or more arrivals, whichever
            # comes first, then re-evaluate.
            get_event = self._batch_signal.get()
            timeout = self.env.timeout(deadline - self.env.now)
            yield self.env.any_of((get_event, timeout))
            if not get_event.triggered:
                self._batch_signal.cancel(get_event)

    def _drop_batch_backlog(self) -> None:
        """Discard buffered-but-unordered requests (view change, restart,
        leadership loss). Un-registering them from ``_inflight`` lets
        client retransmissions be ordered again later."""
        if self._batcher is None:
            return
        for request in self._batcher.drain():
            self._inflight.discard((request.client_id, request.request_id))
            if self.obs is not None:
                self.obs.queue_drop(self, request)
        self._inflight_batch_seqs.clear()

    # -- ordering: follower -------------------------------------------------------------------

    def _handle_order(self, order: Order):
        yield from self.node.compute(self._rx_cost(order.wire_size) + self._mac_cost_const)
        if order.view != self.view or self._view_change_pending is not None:
            return
        if order.seq < self.next_exec:
            return  # slot already executed locally
        if order.sender != self.leader_id:
            self.stats.invalid_messages += 1
            return
        expected = Order.content_digest(
            order.view, order.seq, order.request.digest(), order.grants
        )
        if order.cert.digest != expected or order.cert.value != order.seq:
            self.stats.invalid_messages += 1
            return
        if not self.counters.verify(order.cert):
            self.stats.invalid_messages += 1
            return
        # Continuity: commit in strict sequence order so this replica's
        # commit counter never has to move backwards.
        yield self._order_lock.request()
        try:
            if order.seq < self._next_order_intake:
                return  # duplicate of an already-committed slot
            self._pending_orders[order.seq] = order
            while self._next_order_intake in self._pending_orders:
                next_order = self._pending_orders.pop(self._next_order_intake)
                yield from self._commit_order(next_order)
                self._next_order_intake += 1
        finally:
            self._order_lock.release()

    def _commit_order(self, order: Order):
        if order.seq < self.next_exec:
            return  # already executed here: nothing left to acknowledge
            yield  # pragma: no cover - generator marker
        entry = self.log.setdefault(order.seq, LogEntry())
        if entry.order is None:
            self._install_order(entry, order)
        entry.commit_senders[order.sender] = order.cert
        request_digest = order.request.digest()
        content = Commit.content_digest(order.view, order.seq, request_digest, self.replica_id)
        cert = yield from self.boundary.ecall(
            "certify_commit",
            self._commit_counter(self.view),
            order.seq,
            content,
            bytes_in=DIGEST_SIZE,
            bytes_out=80,
        )
        commit = Commit(order.view, order.seq, request_digest, cert, self.replica_id)
        entry.commit_senders[self.replica_id] = cert
        yield from self.node.compute(self._tx_cost(commit.wire_size))
        self._broadcast(commit, trace=f"seq={order.seq}" if self.tracer.enabled else "")
        self.stats.commits_sent += 1
        self._note_progress_needed()
        self._maybe_committed(order.seq)

    def _handle_commit(self, commit: Commit):
        yield from self.node.compute(self._rx_cost(commit.wire_size) + self._mac_cost_const)
        if commit.view != self.view or self._view_change_pending is not None:
            return
        if commit.seq < self.next_exec:
            return  # slot already executed locally: the commit is stale
        expected = Commit.content_digest(
            commit.view, commit.seq, commit.request_digest, commit.sender
        )
        if commit.cert.digest != expected or commit.cert.value != commit.seq:
            self.stats.invalid_messages += 1
            return
        if not self.counters.verify(commit.cert):
            self.stats.invalid_messages += 1
            return
        entry = self.log.setdefault(commit.seq, LogEntry())
        if entry.order is not None and entry.order.request.digest() != commit.request_digest:
            self.stats.invalid_messages += 1
            return
        entry.commit_senders[commit.sender] = commit.cert
        self._maybe_committed(commit.seq)

    def _maybe_committed(self, seq: int) -> None:
        entry = self.log.get(seq)
        if entry is None or entry.committed or entry.order is None:
            return
        if len(entry.commit_senders) >= self.config.commit_quorum:
            entry.committed = True
            if self.tracer.enabled:
                self.tracer.record(self.env.now, "proto.commit", self.replica_id, f"seq={seq}")
            if self.obs is not None:
                payload = entry.order.request
                requests = (
                    payload.requests if type(payload) is Batch else (payload,)
                )
                for request in requests:
                    if request.client_id != NOOP_REQUEST_CLIENT:
                        self.obs.order_committed(self, request, seq)
            if self._batcher is not None and seq in self._inflight_batch_seqs:
                # A pipeline slot freed up; if backlog is waiting, wake
                # the batch loop so it can cut the next batch.
                self._inflight_batch_seqs.discard(seq)
                if len(self._batcher):
                    self._batch_signal.put(True)
            self._exec_signal.put(seq)

    # -- execution ----------------------------------------------------------------------------

    def _execution_loop(self):
        while True:
            yield self._exec_signal.get()
            while True:
                entry = self.log.get(self.next_exec)
                if entry is None or not entry.committed or entry.executed:
                    break
                executed_seq = self.next_exec
                yield from self._execute_entry(executed_seq, entry)
                self.next_exec = executed_seq + 1
                if executed_seq <= self.stable_seq:
                    # Executed behind an already-stable checkpoint (we
                    # were lagging): the entry is disposable right away.
                    self._truncate_log()

    def _execute_entry(self, seq: int, entry: LogEntry):
        entry.executed = True
        self._unexec_ordered -= 1
        request = entry.order.request
        if type(request) is Batch:
            yield from self._execute_batch(seq, request)
        elif request.client_id != NOOP_REQUEST_CLIENT:
            span = None
            if self.obs is not None:
                span = self.obs.execute_begin(self, request, seq)
            try:
                yield from self.node.compute(self.app.execution_cost(request.op))
                result = self.app.execute(request.op)
                reply = Reply(
                    replica_id=self.replica_id,
                    client_id=request.client_id,
                    request_id=request.request_id,
                    result=result,
                    request_digest=request.digest(),
                    view=self.view,
                )
                self._executed_requests[request.client_id] = request.request_id
                self._last_reply[request.client_id] = reply
                self._inflight.discard((request.client_id, request.request_id))
                self.stats.executions += 1
                if self.tracer.enabled:
                    self.tracer.record(self.env.now, "proto.execute", self.replica_id,
                                       f"seq={seq} client={request.client_id} rid={request.request_id}")
                yield from self._emit_reply(request, reply)
            finally:
                if span is not None:
                    self.obs.execute_end(span)
        if entry.order.grants and self.lease_sink is not None:
            # Leases activate only when their carrying slot *executes*:
            # every earlier write has already invalidated the holder's
            # cache, so activation can never expose a pre-write entry.
            yield from self.lease_sink(entry.order.grants)
        self._progress_made()
        if seq % self.config.checkpoint_interval == 0:
            yield from self._emit_checkpoint(seq)

    def _execute_batch(self, seq: int, batch: Batch):
        """Execute every entry of a batched slot in order, then hand all
        (request, reply) pairs to the batch sink in one call — the sink
        must make no reply visible before it has invalidated every key
        the batch wrote (fast-read freshness)."""
        pairs = []
        for request in batch.requests:
            if request.client_id == NOOP_REQUEST_CLIENT:
                continue
            span = None
            if self.obs is not None:
                span = self.obs.execute_begin(self, request, seq)
            try:
                yield from self.node.compute(self.app.execution_cost(request.op))
                result = self.app.execute(request.op)
                reply = Reply(
                    replica_id=self.replica_id,
                    client_id=request.client_id,
                    request_id=request.request_id,
                    result=result,
                    request_digest=request.digest(),
                    view=self.view,
                )
                self._executed_requests[request.client_id] = request.request_id
                self._last_reply[request.client_id] = reply
                self._inflight.discard((request.client_id, request.request_id))
                self.stats.executions += 1
                if self.tracer.enabled:
                    self.tracer.record(self.env.now, "proto.execute", self.replica_id,
                                       f"seq={seq} client={request.client_id} rid={request.request_id}")
                pairs.append((request, reply))
            finally:
                if span is not None:
                    self.obs.execute_end(span)
        if pairs:
            yield from self.batch_reply_sink(pairs)

    def _default_batch_reply_sink(self, pairs):
        """Baseline deployment: batched replies are independent sends."""
        for request, reply in pairs:
            yield from self._emit_reply(request, reply)

    def _execute_unordered_read(self, request: Request):
        """The PBFT-like read optimization: execute against current state."""
        self.stats.unordered_reads += 1
        yield from self.node.compute(self.app.execution_cost(request.op))
        result = self.app.execute_read(request.op)
        reply = Reply(
            replica_id=self.replica_id,
            client_id=request.client_id,
            request_id=request.request_id,
            result=result,
            request_digest=request.digest(),
            view=self.view,
        )
        yield from self._emit_reply(request, reply)

    def _emit_reply(self, request: Request, reply: Reply, fresh: bool = True):
        # ``fresh`` distinguishes a reply produced by executing the
        # request now from a replay out of the duplicate-suppression
        # cache; sinks that maintain state keyed to execution order (the
        # Troxy fast-read cache) must not treat a replay as fresh.
        yield from self.reply_sink(request, reply, fresh)

    def _default_reply_sink(self, request: Request, reply: Reply, fresh: bool = True):
        """Baseline deployment: seal the reply for the client and send it."""
        endpoint = self._client_endpoints.get(request.client_id)
        if endpoint is None:
            return
        yield from self.node.compute(self.profile.aead_cost(reply.wire_size))
        envelope = seal_body(endpoint, reply)
        if self.tracer.enabled:
            self.tracer.record(self.env.now, "proto.send", self.replica_id,
                               f"reply rid={reply.request_id} ->{request.origin}")
        # Baseline replies ride the shared library connection to the
        # client machine (one client-side library process per machine).
        self.net.send(self.node.name, request.origin, envelope)

    # -- checkpoints ------------------------------------------------------------------------------

    def _emit_checkpoint(self, seq: int):
        snapshot = self.app.snapshot()
        state_digest = digest_of(seq.to_bytes(8, "big"), snapshot)
        checkpoint = Checkpoint(seq, state_digest, self.replica_id)
        self._note_checkpoint_vote(checkpoint, snapshot)
        yield from self.node.compute(self._tx_cost(checkpoint.wire_size) + self._mac_cost_const)
        self._broadcast(self._tagged(checkpoint))

    def _handle_checkpoint(self, tagged: Tagged):
        checkpoint = tagged.msg
        yield from self.node.compute(self._rx_cost(tagged.wire_size) + self._mac_cost_const)
        if not self._verify_tagged(tagged):
            self.stats.invalid_messages += 1
            return
        self._note_checkpoint_vote(checkpoint, None)

    def _handle_fetch_orders(self, tagged: Tagged):
        fetch = tagged.msg
        yield from self.node.compute(self._rx_cost(tagged.wire_size) + self._mac_cost_const)
        if not self._verify_tagged(tagged):
            self.stats.invalid_messages += 1
            return
        for seq in range(fetch.first, fetch.last + 1):
            entry = self.log.get(seq)
            if entry is not None and entry.order is not None:
                yield from self.node.compute(self._tx_cost(entry.order.wire_size))
                self._send(tagged.sender, entry.order, trace=f"refetch seq={seq}")

    def _request_missing_orders(self):
        """Intake stalled behind buffered orders: ask peers for the gap."""
        if not self._pending_orders:
            return
            yield  # pragma: no cover - generator marker
        first_buffered = min(self._pending_orders)
        if first_buffered <= self._next_order_intake:
            return
        fetch = FetchOrders(
            self.view, self._next_order_intake, first_buffered - 1, self.replica_id
        )
        yield from self.node.compute(self._tx_cost(fetch.wire_size) + self._mac_cost_const)
        self._send(self.leader_id, self._tagged(fetch))

    def _handle_state_request(self, tagged: Tagged):
        request = tagged.msg
        yield from self.node.compute(self._rx_cost(tagged.wire_size) + self._mac_cost_const)
        if not self._verify_tagged(tagged):
            self.stats.invalid_messages += 1
            return
        if self.stable_seq <= request.low_water:
            return  # nothing newer to offer
        response = StateResponse(
            self.stable_seq, self.stable_snapshot, self.next_exec - 1, self.replica_id
        )
        yield from self.node.compute(
            self._tx_cost(response.wire_size) + self._mac_cost_const
            + self.profile.hash_cost(len(response.snapshot))
        )
        self._send(tagged.sender, self._tagged(response), trace=f"state@{self.stable_seq}")

    def _handle_state_response(self, tagged: Tagged):
        response = tagged.msg
        yield from self.node.compute(
            self._rx_cost(tagged.wire_size) + self._mac_cost_const
            + self.profile.hash_cost(len(response.snapshot))
        )
        if not self._verify_tagged(tagged):
            self.stats.invalid_messages += 1
            return
        if response.seq < self.next_exec:
            return  # we caught up by ourselves in the meantime
        # Install only state that f+1 distinct replicas agree on: either
        # we already tallied f+1 checkpoint votes for this digest, or we
        # have collected f+1 identical StateResponses.
        expected = digest_of(response.seq.to_bytes(8, "big"), response.snapshot)
        votes = self._checkpoint_votes.get(response.seq, {})
        checkpoint_matches = sum(1 for digest in votes.values() if digest == expected)
        offers = self._state_offers.setdefault((response.seq, expected), set())
        offers.add(tagged.sender)
        if checkpoint_matches < self.config.f + 1 and len(offers) < self.config.f + 1:
            return  # keep waiting for corroboration
        self._state_offers.clear()
        self.app.restore(response.snapshot)
        self.stable_snapshot = response.snapshot
        self.stable_seq = max(self.stable_seq, response.seq)
        self.next_exec = response.seq + 1
        self._next_order_intake = max(self._next_order_intake, response.seq + 1)
        self._pending_orders = {
            seq: order for seq, order in self._pending_orders.items()
            if seq > response.seq
        }
        self.stats.state_transfers += 1
        self._truncate_log()
        self.tracer.record(self.env.now, "proto.statetransfer", self.replica_id,
                           f"installed state@{response.seq}")
        self._progress_made()
        if response.high_water >= self.next_exec:
            # Fetch the slots committed after the checkpoint; peers still
            # hold them in their logs.
            fetch = FetchOrders(
                self.view, self.next_exec, response.high_water, self.replica_id
            )
            yield from self.node.compute(self._tx_cost(fetch.wire_size) + self._mac_cost_const)
            self._broadcast(self._tagged(fetch))

    def _maybe_request_state(self, probe: bool = False):
        """Fetch checkpointed state when this replica cannot catch up by
        itself: it is stuck behind the cluster's stable checkpoint, or it
        just recovered (``probe``) and must ask whether it missed
        anything — peers only answer if they are ahead."""
        if not probe and self.stable_seq < self.next_exec:
            return
            yield  # pragma: no cover - generator marker
        entry = self.log.get(self.next_exec)
        if entry is not None and entry.order is not None:
            return  # we still hold the next slot: normal path will run it
        request = StateRequest(self.next_exec - 1, self.replica_id)
        yield from self.node.compute(self._tx_cost(request.wire_size) + self._mac_cost_const)
        self._broadcast(self._tagged(request))

    def restart(self) -> None:
        """Recover a crashed replica: rejoin with an empty volatile state.

        The trusted counters survived (sealed storage); the log and app
        state are rebuilt via state transfer + normal ordering."""
        self.node.recover()
        self.net.reset_streams(self.node.name)
        self._stopped = False
        self._view_change_pending = None
        self._drop_parked_writes()
        self._progress_deadline = self.env.now + self.config.progress_timeout
        if self._owns_inbox:
            self._loop_generation += 1
            self.env.process(
                self._message_loop(self._loop_generation),
                name=f"{self.replica_id}:loop",
            )
        self.env.process(self._progress_monitor(), name=f"{self.replica_id}:monitor")
        if self._batcher is not None:
            self._drop_batch_backlog()
            self._batch_generation += 1
            self.env.process(
                self._batch_loop(self._batch_generation),
                name=f"{self.replica_id}:batcher",
            )
        self.env.process(
            self._maybe_request_state(probe=True), name=f"{self.replica_id}:catchup"
        )

    def _note_checkpoint_vote(self, checkpoint: Checkpoint, snapshot: Optional[bytes]) -> None:
        votes = self._checkpoint_votes.setdefault(checkpoint.seq, {})
        votes[checkpoint.sender] = checkpoint.state_digest
        matching = sum(
            1 for digest in votes.values() if digest == checkpoint.state_digest
        )
        if matching >= self.config.f + 1 and checkpoint.seq > self.stable_seq:
            self.stable_seq = checkpoint.seq
            if snapshot is not None:
                self.stable_snapshot = snapshot
            elif self.next_exec > checkpoint.seq:
                self.stable_snapshot = self.app.snapshot()
            self.stats.checkpoints_stable += 1
            self._truncate_log()

    def _truncate_log(self) -> None:
        # Never drop entries this replica still has to execute, even when
        # the cluster's stable checkpoint has moved past them (a lagging
        # replica catches up from its own log).
        cut = min(self.stable_seq, self.next_exec - 1)
        for seq in [s for s in self.log if s <= cut]:
            entry = self.log.pop(seq)
            if entry.order is not None and not entry.executed:
                self._unexec_ordered -= 1
        for seq in [s for s in self._checkpoint_votes if s < self.stable_seq]:
            del self._checkpoint_votes[seq]

    # -- lease granting & write parking (docs/READS.md) --------------------------------------------

    def handle_lease_request(self, msg):
        """A Troxy asked for (or renewed) a read lease on one key.

        Fire-and-forget from the holder's perspective: the leader queues
        the request and the grant rides the next ordered slot. Refused
        silently when this replica is not leading or a view change is in
        flight — the holder re-requests after its backoff.
        """
        yield from self.node.compute(self._rx_cost(msg.wire_size) + self._mac_cost_const)
        holder_key = self.keyring.troxy_instance(msg.holder)
        if not holder_key.verify(msg.auth_input(msg.key, msg.holder), msg.tag):
            self.stats.invalid_messages += 1
            return
        if (
            self.lease_manager is None
            or not self.is_leader
            or self._view_change_pending is not None
        ):
            return
        if self.lease_manager.note_request(msg.key, msg.holder, self.env.now):
            self._arm_lease_flush()

    def _arm_lease_flush(self) -> None:
        """Queued grants must not depend on write traffic for delivery:
        if no slot is ordered within one backoff window, a noop slot is
        ordered to carry them. Read-only workloads renew leases through
        exactly this path."""
        if self._lease_flush_armed:
            return
        self._lease_flush_armed = True
        self.env.process(
            self._lease_grant_flush(),
            name=f"{self.replica_id}:lease-flush",
        )

    def _lease_grant_flush(self):
        try:
            yield self.env.timeout(self.lease_manager.config.request_backoff)
            if (
                self._stopped
                or not self.is_leader
                or self._view_change_pending is not None
                or self.lease_manager is None
                or not self.lease_manager.has_pending()
            ):
                return
            yield from self._order(noop_request(self.next_seq, self.replica_id))
        finally:
            self._lease_flush_armed = False

    def handle_lease_ack(self, ack):
        """A holder confirmed its lease is dead and fenced; writes parked
        behind that lease can be ordered."""
        yield from self.node.compute(self._rx_cost(ack.wire_size) + self._mac_cost_const)
        holder_key = self.keyring.troxy_instance(ack.holder)
        if not holder_key.verify(
            ack.auth_input(ack.key, ack.epoch, ack.holder), ack.tag
        ):
            self.stats.invalid_messages += 1
            return
        if self.lease_manager is None:
            return
        if self.lease_manager.on_ack(ack.key, ack.epoch, ack.holder):
            yield from self._release_lease_key(ack.key)

    def _revoke_lease(self, key: str):
        """Start revoking the lease covering ``key``: tell the holder to
        stop serving, and arm the expiry timer as the no-ack fallback
        (the holder may be partitioned — once the lease expires on the
        shared clock it cannot serve either way)."""
        manager = self.lease_manager
        grant = manager.begin_revoke(key)
        if grant is None:
            if not manager.is_revoking(key):
                # The lease vanished (expired) between the blocking check
                # and now: nothing blocks the parked write anymore.
                yield from self._release_lease_key(key)
            return
        self.stats.lease_revokes_sent += 1
        revoke = manager.make_revoke(grant)
        yield from self.node.compute(self._tx_cost(revoke.wire_size) + self._mac_cost_const)
        if grant.holder == self.replica_id and self.lease_revoke_sink is not None:
            # Revoking our own co-located Troxy: straight into the ecall.
            yield from self.lease_revoke_sink(revoke)
        else:
            self._send(
                grant.holder, revoke,
                trace=f"lease key={key}" if self.tracer.enabled else "",
            )
        self.env.process(
            self._lease_revoke_timer(key, grant),
            name=f"{self.replica_id}:lease-timer",
        )

    def _lease_revoke_timer(self, key: str, grant):
        yield self.env.timeout(max(grant.expiry - self.env.now, 0.0))
        if self._stopped or self.lease_manager is None:
            return
        if self.lease_manager.on_revoke_expired(key, grant, self.env.now):
            yield from self._release_lease_key(key)

    def _release_lease_key(self, key: str):
        """A lease stopped covering ``key``: re-dispatch every parked
        write that has no blocking keys left."""
        released = self.lease_manager.release_key(key)
        self.stats.lease_parked_released += len(released)
        for request in released:
            yield from self._order_released(request)

    def _order_released(self, request: Request):
        key = (request.client_id, request.request_id)
        if (
            self._stopped
            or not self.is_leader
            or self._view_change_pending is not None
        ):
            self._inflight.discard(key)  # client retransmits to the new leader
            return
        manager = self.lease_manager
        blocked = manager.blocking_keys(self.lease_keys_fn(request.op), self.env.now)
        if blocked:
            # A fresh lease landed while this write was parked: park
            # again behind a new revocation round.
            manager.park(request, blocked)
            for blocked_key in blocked:
                yield from self._revoke_lease(blocked_key)
            return
        if self._batcher is None:
            yield from self._order(request)
        else:
            self._batcher.enqueue(request, self.env.now)
            if self.obs is not None:
                self.obs.queue_enter(self, request)
            self._batch_signal.put(True)

    def _drop_parked_writes(self) -> None:
        """View change / restart: abandon parked writes (clients
        retransmit; a new leader re-parks against its adopted leases)."""
        if self.lease_manager is None:
            return
        for request in self.lease_manager.drain_parked():
            self._inflight.discard((request.client_id, request.request_id))
            self.stats.lease_parked_dropped += 1

    # -- progress monitoring & view change ----------------------------------------------------------

    def _install_order(self, entry: LogEntry, order: Order) -> None:
        """Install an order into a log slot, maintaining the backlog count."""
        if entry.order is None and not entry.executed:
            self._unexec_ordered += 1
        entry.order = order
        if order.grants and self.lease_directory is not None:
            # Mirror every grant seen in the ordered stream: should this
            # replica lead later, the mirror is its (conservative) view
            # of which leases may still be live (docs/READS.md).
            for grant in order.grants:
                self.lease_directory.observe(grant)

    def _note_progress_needed(self) -> None:
        if self._progress_deadline is None:
            self._progress_deadline = self.env.now + self.config.progress_timeout

    def _progress_made(self) -> None:
        # O(1) equivalent of scanning the log for an entry with an
        # installed order that has not executed yet.
        if self._unexec_ordered > 0:
            self._progress_deadline = self.env.now + self.config.progress_timeout
        else:
            self._progress_deadline = None

    def _progress_monitor(self):
        poll = self.config.progress_timeout / 4
        while True:
            yield self.env.timeout(poll)
            if self._stopped:
                return
            yield from self._request_missing_orders()
            yield from self._maybe_request_state()
            if (
                self._progress_deadline is not None
                and self.env.now >= self._progress_deadline
                and self._view_change_pending is None
            ):
                yield from self._start_view_change(self.view + 1)
            elif (
                self._view_change_pending is not None
                and self.env.now >= self._progress_deadline
            ):
                # View change itself stalled: escalate.
                yield from self._start_view_change(self._view_change_pending + 1)

    def _start_view_change(self, new_view: int):
        if new_view <= self.view:
            return
        self.stats.view_changes += 1
        self._view_change_pending = new_view
        self._drop_batch_backlog()
        self._drop_parked_writes()
        self._progress_deadline = self.env.now + self.config.progress_timeout
        prepared = tuple(
            entry.order
            for seq, entry in sorted(self.log.items())
            if entry.order is not None and seq > self.stable_seq
        )
        prepared_digest = digest_of(*[order.digest() for order in prepared])
        content = ViewChange.content_digest(
            new_view, self.stable_seq, prepared_digest, self.replica_id
        )
        self._ensure_counter("viewchange")
        cert = yield from self.boundary.ecall(
            "certify_viewchange",
            "viewchange",
            self.counters.current("viewchange") + 1,
            content,
            bytes_in=DIGEST_SIZE,
            bytes_out=80,
        )
        vc = ViewChange(
            new_view, self.stable_seq, self.stable_snapshot, prepared, self.replica_id, cert
        )
        self.tracer.record(self.env.now, "proto.viewchange", self.replica_id, f"view={new_view}")
        self._record_view_change(vc)
        yield from self.node.compute(self._tx_cost(vc.wire_size))
        self._broadcast(vc)
        yield from self._maybe_install_view(new_view)

    def _handle_view_change(self, vc: ViewChange):
        yield from self.node.compute(self._rx_cost(vc.wire_size) + self._mac_cost_const)
        if vc.new_view <= self.view:
            return
        if not self.counters.verify(vc.cert):
            self.stats.invalid_messages += 1
            return
        self._record_view_change(vc)
        # Join the view change once f+1 replicas demand it, or immediately
        # if we will lead the new view.
        votes = self._view_changes.get(vc.new_view, {})
        if self._view_change_pending is None and (
            len(votes) >= self.config.f + 1
            or self.config.leader_of(vc.new_view) == self.replica_id
        ):
            yield from self._start_view_change(vc.new_view)
            return
        yield from self._maybe_install_view(vc.new_view)

    def _record_view_change(self, vc: ViewChange) -> None:
        self._view_changes.setdefault(vc.new_view, {})[vc.sender] = vc

    def _maybe_install_view(self, new_view: int):
        """New leader: once f+1 ViewChanges arrived, install the view."""
        if self.config.leader_of(new_view) != self.replica_id:
            return
            yield  # pragma: no cover - generator marker
        votes = self._view_changes.get(new_view, {})
        if len(votes) < self.config.f + 1 or self.view >= new_view:
            return
        # Adopt the most advanced stable checkpoint among the votes.
        best = max(votes.values(), key=lambda vc: vc.stable_seq)
        if best.stable_seq > self.stable_seq:
            self.stable_seq = best.stable_seq
            self.stable_snapshot = best.state_snapshot
            if self.next_exec <= best.stable_seq:
                self.app.restore(best.state_snapshot)
                self.next_exec = best.stable_seq + 1
            self._truncate_log()
        # Union of prepared orders above the checkpoint.
        union: dict[int, Order] = {}
        for vc in votes.values():
            for order in vc.prepared:
                if order.seq > self.stable_seq:
                    known = union.get(order.seq)
                    if known is None or order.view > known.view:
                        union[order.seq] = order
        max_seq = max(union, default=self.stable_seq)
        self.view = new_view
        self._view_change_pending = None
        self._drop_batch_backlog()
        self._drop_parked_writes()
        if self.lease_manager is not None:
            # Take over granting: forget pending requests from the old
            # leadership and adopt the directory mirror as the active
            # lease set. The mirror may over-approximate (a write then
            # parks at most one lease duration) but cannot miss a lease
            # below this replica's commit point — every grant rode a
            # certified order.
            self.lease_manager.reset()
            if self.lease_directory is not None:
                self.lease_manager.adopt(
                    self.lease_directory.active(self.env.now), self.env.now
                )
        self._ensure_counter(self._order_counter(new_view))
        self._ensure_counter(self._commit_counter(new_view))
        self._pending_orders.clear()
        self._next_order_intake = self.stable_seq + 1
        # Never hand out a slot this replica has already executed (its
        # execution may be ahead of both the adopted checkpoint and the
        # prepared union).
        self.next_seq = max(max_seq + 1, self.next_exec)
        reproposals = []
        for seq in range(self.stable_seq + 1, max_seq + 1):
            old = union.get(seq)
            request = old.request if old is not None else noop_request(seq, self.replica_id)
            # Re-proposals must carry the original grants forward: a
            # replica that only learns this slot from the new view still
            # mirrors the grant, so a third leader in quick succession
            # cannot miss a lease that is still being served.
            grants = old.grants if old is not None else ()
            content = Order.content_digest(new_view, seq, request.digest(), grants)
            cert = yield from self.boundary.ecall(
                "certify_order",
                self._order_counter(new_view),
                seq,
                content,
                bytes_in=DIGEST_SIZE,
                bytes_out=80,
            )
            order = Order(new_view, seq, request, cert, self.replica_id, grants)
            reproposals.append(order)
            if seq >= self.next_exec:
                entry = self.log.setdefault(seq, LogEntry())
                self._install_order(entry, order)
                entry.committed = False
                entry.commit_senders = {self.replica_id: cert}
        content = NewView.content_digest(
            new_view, digest_of(*[o.digest() for o in reproposals]), self.replica_id
        )
        self._ensure_counter("newview")
        cert = yield from self.boundary.ecall(
            "certify_viewchange",
            "newview",
            self.counters.current("newview") + 1,
            content,
            bytes_in=DIGEST_SIZE,
            bytes_out=80,
        )
        new_view_msg = NewView(
            new_view, tuple(votes.values()), tuple(reproposals), self.replica_id, cert
        )
        yield from self.node.compute(self._tx_cost(new_view_msg.wire_size))
        self._broadcast(new_view_msg)
        self.tracer.record(self.env.now, "proto.newview", self.replica_id, f"view={new_view}")
        for seq in sorted(union):
            self._maybe_committed(seq)
        self._progress_made()

    def _handle_new_view(self, nv: NewView):
        yield from self.node.compute(self._rx_cost(nv.wire_size) + self._mac_cost_const)
        if nv.view <= self.view:
            return
        if nv.sender != self.config.leader_of(nv.view):
            self.stats.invalid_messages += 1
            return
        if not self.counters.verify(nv.cert):
            self.stats.invalid_messages += 1
            return
        if len(nv.view_changes) < self.config.f + 1:
            self.stats.invalid_messages += 1
            return
        best = max(nv.view_changes, key=lambda vc: vc.stable_seq)
        if best.stable_seq > self.stable_seq:
            self.stable_seq = best.stable_seq
            self.stable_snapshot = best.state_snapshot
            if self.next_exec <= best.stable_seq:
                self.app.restore(best.state_snapshot)
                self.next_exec = best.stable_seq + 1
            self._truncate_log()
        self.view = nv.view
        self._view_change_pending = None
        self._drop_batch_backlog()
        self._drop_parked_writes()
        if self.lease_manager is not None:
            self.lease_manager.reset()  # leadership (if any) is over
        self._ensure_counter(self._commit_counter(nv.view))
        self._pending_orders.clear()
        self._next_order_intake = self.stable_seq + 1
        # Drop uncommitted state from older views; the new leader's
        # re-proposals overwrite those slots.
        for seq, entry in list(self.log.items()):
            if not entry.executed and seq > self.stable_seq:
                if entry.order is not None:
                    self._unexec_ordered -= 1
                entry.order = None
                entry.committed = False
                entry.commit_senders = {}
        self.tracer.record(self.env.now, "proto.newview", self.replica_id,
                           f"installed view={nv.view}")
        yield self._order_lock.request()
        try:
            for order in sorted(nv.orders, key=lambda o: o.seq):
                self._pending_orders[order.seq] = order
            while self._next_order_intake in self._pending_orders:
                next_order = self._pending_orders.pop(self._next_order_intake)
                if next_order.seq >= self.next_exec:
                    yield from self._commit_order(next_order)
                self._next_order_intake += 1
        finally:
            self._order_lock.release()
        self._progress_made()
