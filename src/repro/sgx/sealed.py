"""Sealed storage: enclave state that survives reboots.

SGX sealing encrypts data under a key derived from the CPU and the
enclave *measurement*, so only the same enclave code on the same machine
can unseal it. We model exactly that binding: blobs carry an integrity
tag under a measurement-derived key, unsealing under a different
measurement fails, and the store itself lives outside the enclave
(it survives :meth:`Enclave.reboot`).
"""

from __future__ import annotations

from typing import Optional

from ..crypto.primitives import MacKey, derive_key


class SealError(Exception):
    """Unsealing failed: wrong enclave identity or corrupted blob."""


class SealedStorage:
    """Per-enclave sealed key/value store."""

    def __init__(self, platform_secret: bytes, measurement: bytes):
        self._measurement = measurement
        self._seal_key = MacKey(
            "seal", derive_key(platform_secret, "seal", measurement.hex())
        )
        # Lives in untrusted persistent storage; survives enclave reboot.
        self._blobs: dict[str, tuple[bytes, bytes]] = {}

    def seal(self, name: str, data: bytes) -> None:
        tag = self._seal_key.sign(name.encode() + b"\x00" + data)
        self._blobs[name] = (data, tag)

    def unseal(self, name: str) -> Optional[bytes]:
        """Return the sealed data, or None if never sealed.

        Raises :class:`SealError` if the blob fails its integrity check
        (tampered on disk, or sealed by a different enclave identity).
        """
        entry = self._blobs.get(name)
        if entry is None:
            return None
        data, tag = entry
        if not self._seal_key.verify(name.encode() + b"\x00" + data, tag):
            raise SealError(f"sealed blob {name!r} failed verification")
        return data

    def tamper(self, name: str, data: bytes) -> None:
        """Fault injection: overwrite the on-disk blob without the key."""
        entry = self._blobs.get(name)
        if entry is None:
            raise KeyError(name)
        self._blobs[name] = (data, entry[1])
