"""Simulated SGX enclaves (performance + isolation model).

The paper's etroxy numbers are shaped by three SGX effects (Section V-A):

1. **Transitions** — every ecall flushes the TLB, switches stacks and
   copies parameters; "it is best practice to minimize enclave
   transitions". We charge a fixed cost per boundary crossing plus a
   per-byte cost for buffers copied into the enclave (read buffers are
   *always* copied in, to prevent TOCTTOU; write buffers are copied
   outside, cheaper).
2. **EPC paging** — enclave memory beyond the ~93 MB usable Enclave Page
   Cache is encrypted and evicted; touching it costs dearly. We track the
   resident set and charge per evicted/loaded page.
3. **Isolation** — the untrusted host can only reach enclave state
   through the registered ecall table, and a reboot wipes volatile state
   (the fast-read cache) while sealed state (counters) survives.

`JniBoundary` models the cheaper Java-Native-Interface crossing used by
*ctroxy* (Troxy code in C/C++ but outside SGX) and by Hybster's own
trusted subsystem calls.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field
from typing import Callable, Optional

from ..crypto.primitives import sha256
from ..sim.network import Node

PAGE_SIZE = 4096
EPC_USABLE_BYTES = 93 * 1024 * 1024  # usable part of the 128 MB EPC


@dataclass(frozen=True)
class BoundaryCosts:
    """CPU cost of crossing a protection boundary."""

    per_call: float  # seconds per crossing (entry + exit)
    copy_in_per_byte: float  # buffers copied into the trusted side
    copy_out_per_byte: float  # buffers copied out (done outside for SGX)

    def cost(self, bytes_in: int, bytes_out: int) -> float:
        if bytes_in < 0 or bytes_out < 0:
            raise ValueError("negative buffer size")
        return (
            self.per_call
            + self.copy_in_per_byte * bytes_in
            + self.copy_out_per_byte * bytes_out
        )


SGX_ECALL = BoundaryCosts(per_call=7.0e-6, copy_in_per_byte=1.00e-9, copy_out_per_byte=0.30e-9)
JNI_CALL = BoundaryCosts(per_call=3.0e-6, copy_in_per_byte=0.05e-9, copy_out_per_byte=0.05e-9)
NO_BOUNDARY = BoundaryCosts(per_call=0.0, copy_in_per_byte=0.0, copy_out_per_byte=0.0)

EPC_PAGING_COST_PER_PAGE = 20e-6  # encrypt + evict + load one 4 KB page


@dataclass
class EnclaveStats:
    """Observable counters for tests and ablation benchmarks."""

    ecalls: int = 0
    bytes_copied_in: int = 0
    bytes_copied_out: int = 0
    pages_swapped: int = 0
    reboots: int = 0


class EnclaveViolation(Exception):
    """The untrusted host attempted something the boundary forbids."""


class Enclave:
    """A trusted execution environment attached to one node.

    Trusted components (Troxy core, trusted counters) are *installed*
    into the enclave; the untrusted host may only reach them through
    ecalls declared in the interface table, paying the boundary cost.
    """

    def __init__(
        self,
        node: Node,
        name: str,
        code_identity: str,
        costs: BoundaryCosts = SGX_ECALL,
        epc_bytes: int = EPC_USABLE_BYTES,
        paging_cost_per_page: float = EPC_PAGING_COST_PER_PAGE,
    ):
        self.node = node
        self.name = name
        self.measurement = sha256(code_identity.encode("utf-8"))
        self.costs = costs
        # Boundary-cost scalars unpacked once: ecall() charges them on
        # every crossing and attribute-chasing the frozen dataclass per
        # call shows up in profiles (see docs/PERFORMANCE.md).
        self._per_call = costs.per_call
        self._copy_in_per_byte = costs.copy_in_per_byte
        self._copy_out_per_byte = costs.copy_out_per_byte
        self.epc_bytes = epc_bytes
        self.paging_cost_per_page = paging_cost_per_page
        self.stats = EnclaveStats()
        self._ecalls: dict[str, Callable] = {}
        self._resident_bytes = 0
        self._reboot_hooks: list[Callable[[], None]] = []
        # Observation hooks called with each ecall name before dispatch;
        # used by the fault-injection plane to attribute enclave activity
        # per scenario without wrapping the interface table.
        self.ecall_taps: list[Callable[[str], None]] = []
        # Optional observability plane (repro.obs); when attached it sees
        # the full ecall arguments and brackets each crossing with a span.
        self.obs = None

    # -- interface table -----------------------------------------------------

    def register_ecall(self, name: str, fn: Callable) -> None:
        """Declare an entry point; mirrors the prototype's 16-ecall table."""
        if name in self._ecalls:
            raise ValueError(f"duplicate ecall {name!r}")
        # Whether the entry point does trusted compute (is a generator
        # function) is static; deciding it here spares ecall() a hasattr
        # probe on every crossing.
        self._ecalls[name] = (fn, inspect.isgeneratorfunction(fn))

    @property
    def ecall_names(self) -> tuple[str, ...]:
        return tuple(self._ecalls)

    def ecall(self, name: str, *args, bytes_in: int = 0, bytes_out: int = 0):
        """Process generator: cross into the enclave and run ``name``.

        Charges the transition + copy cost on the node's CPU, then invokes
        the registered function. If the function is itself a generator
        (it does trusted compute via ``node.compute``), it is driven to
        completion; its return value is the ecall result.

        Usage::

            result = yield from enclave.ecall("verify_reply", reply,
                                              bytes_in=reply.wire_size)
        """
        entry = self._ecalls.get(name)
        if entry is None:
            raise EnclaveViolation(f"no such ecall: {name!r}")
        fn, isgen = entry
        for tap in self.ecall_taps:
            tap(name)
        stats = self.stats
        stats.ecalls += 1
        stats.bytes_copied_in += bytes_in
        stats.bytes_copied_out += bytes_out
        if bytes_in < 0 or bytes_out < 0:
            raise ValueError("negative buffer size")
        cost = (
            self._per_call
            + self._copy_in_per_byte * bytes_in
            + self._copy_out_per_byte * bytes_out
        )
        if self.obs is None:
            # Hot path: no span bracketing, no try/finally bookkeeping.
            if cost > 0:
                yield from self.node.compute(cost)
            result = fn(*args)
            if isgen or hasattr(result, "__next__"):
                result = yield from result
            return result
        span = self.obs.ecall_begin(self, name, args, bytes_in, bytes_out)
        try:
            if cost > 0:
                yield from self.node.compute(cost)
            result = fn(*args)
            if isgen or hasattr(result, "__next__"):
                result = yield from result
        finally:
            self.obs.ecall_end(span)
        return result

    # -- memory / paging ------------------------------------------------------

    @property
    def resident_bytes(self) -> int:
        return self._resident_bytes

    def allocate(self, nbytes: int) -> None:
        if nbytes < 0:
            raise ValueError("negative allocation")
        self._resident_bytes += nbytes

    def free(self, nbytes: int) -> None:
        self._resident_bytes = max(0, self._resident_bytes - nbytes)

    def touch(self, nbytes: int):
        """Process generator: charge EPC paging if the working set spills.

        A simple fractional model: when resident memory exceeds the EPC,
        the probability that a touched page is non-resident equals the
        spill fraction, and each such page costs one evict+load cycle.
        """
        if self._resident_bytes <= self.epc_bytes or nbytes <= 0:
            return
            yield  # pragma: no cover - generator marker
        spill_fraction = 1.0 - self.epc_bytes / self._resident_bytes
        pages = max(1, nbytes // PAGE_SIZE)
        swapped = max(1, int(pages * spill_fraction))
        self.stats.pages_swapped += swapped
        yield from self.node.compute(swapped * self.paging_cost_per_page)

    # -- lifecycle ------------------------------------------------------------

    def on_reboot(self, hook: Callable[[], None]) -> None:
        """Register a volatile-state reset hook (e.g. cache.clear)."""
        self._reboot_hooks.append(hook)

    def reboot(self) -> None:
        """Rollback attack / power cycle: volatile state is lost.

        Sealed state (see :mod:`repro.sgx.sealed`) survives by design,
        which is exactly why the paper's counter-based ordering stays safe
        while the fast-read cache simply starts cold (Section IV-B).
        """
        self.stats.reboots += 1
        self._resident_bytes = 0
        for hook in self._reboot_hooks:
            hook()


def null_enclave(node: Node, name: str) -> Enclave:
    """An 'enclave' with zero-cost boundary: plain in-process library."""
    return Enclave(node, name, code_identity=f"null:{name}", costs=NO_BOUNDARY)


def jni_enclave(node: Node, name: str, code_identity: str = "") -> Enclave:
    """Trusted code reached over JNI but outside SGX (the ctroxy setup)."""
    return Enclave(node, name, code_identity=code_identity or f"jni:{name}", costs=JNI_CALL)
