"""Remote attestation and key provisioning.

Before a Troxy enclave may hold cluster secrets, the operator must be
convinced it runs the expected code on a genuine platform. Intel's
attestation service signs a *quote* over the enclave measurement; the
verifier checks the signature and compares the measurement against the
expected value, then provisions secrets over the attested channel
(Section V-A). This module models that flow, including the failure
cases: unknown platforms and modified enclave code are rejected.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from ..crypto.keys import KeyRing
from ..crypto.primitives import MacKey, derive_key
from .enclave import Enclave


class AttestationError(Exception):
    """Quote verification failed."""


@dataclass(frozen=True)
class Quote:
    """A signed statement: enclave with ``measurement`` runs on ``platform``."""

    platform_id: str
    measurement: bytes
    nonce: int
    tag: bytes


class AttestationService:
    """Stand-in for the Intel Attestation Service (IAS)."""

    def __init__(self, service_secret: bytes):
        self._key = MacKey("ias", derive_key(service_secret, "ias"))
        self._platforms: set[str] = set()
        self._nonces = itertools.count(1)

    def register_platform(self, platform_id: str) -> None:
        """Enroll a genuine SGX-capable machine."""
        self._platforms.add(platform_id)

    def quote(self, platform_id: str, enclave: Enclave) -> Quote:
        """Produce a quote for an enclave on an enrolled platform."""
        if platform_id not in self._platforms:
            raise AttestationError(f"platform {platform_id!r} is not enrolled")
        nonce = next(self._nonces)
        tag = self._key.sign(self._auth_input(platform_id, enclave.measurement, nonce))
        return Quote(platform_id, enclave.measurement, nonce, tag)

    def verify(self, quote: Quote, expected_measurement: bytes) -> None:
        """Raise :class:`AttestationError` unless the quote is genuine
        and attests exactly the expected code identity."""
        if not self._key.verify(
            self._auth_input(quote.platform_id, quote.measurement, quote.nonce), quote.tag
        ):
            raise AttestationError("quote signature invalid")
        if quote.measurement != expected_measurement:
            raise AttestationError(
                "measurement mismatch: enclave code differs from expected identity"
            )

    @staticmethod
    def _auth_input(platform_id: str, measurement: bytes, nonce: int) -> bytes:
        return platform_id.encode() + b"|" + measurement + b"|" + nonce.to_bytes(8, "big")


def provision_keys(
    service: AttestationService,
    platform_id: str,
    enclave: Enclave,
    expected_measurement: bytes,
    keyring: KeyRing,
) -> KeyRing:
    """Attest ``enclave`` and hand it the cluster key ring.

    Returns the keyring the enclave now holds; raises on any verification
    failure, in which case no secret is released.
    """
    quote = service.quote(platform_id, enclave)
    service.verify(quote, expected_measurement)
    return keyring
