"""Simulated Intel SGX: enclaves, trusted counters, sealing, attestation.

The substitution rationale is documented in DESIGN.md: real SGX is a
hardware gate, so this package models the pieces of SGX that the paper's
results depend on — transition/copy/paging costs, the narrow ecall
interface, reboot semantics (volatile vs sealed state), monotonic
counters, and attestation-gated key provisioning.
"""

from .attestation import AttestationError, AttestationService, Quote, provision_keys
from .counters import CounterCertificate, CounterError, TrustedCounterSubsystem
from .enclave import (
    EPC_USABLE_BYTES,
    JNI_CALL,
    NO_BOUNDARY,
    PAGE_SIZE,
    SGX_ECALL,
    BoundaryCosts,
    Enclave,
    EnclaveStats,
    EnclaveViolation,
    jni_enclave,
    null_enclave,
)
from .sealed import SealedStorage, SealError

__all__ = [
    "AttestationError",
    "AttestationService",
    "BoundaryCosts",
    "CounterCertificate",
    "CounterError",
    "EPC_USABLE_BYTES",
    "Enclave",
    "EnclaveStats",
    "EnclaveViolation",
    "JNI_CALL",
    "NO_BOUNDARY",
    "PAGE_SIZE",
    "Quote",
    "SGX_ECALL",
    "SealError",
    "SealedStorage",
    "TrustedCounterSubsystem",
    "jni_enclave",
    "null_enclave",
    "provision_keys",
]
