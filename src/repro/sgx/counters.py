"""TrInc-style trusted monotonic counters.

Hybster's hybrid fault model rests on a tiny trusted subsystem that
binds each protocol message to a unique, monotonically increasing
counter value. A Byzantine replica can *stop* counting but can never
produce two different messages certified with the same counter value —
that is what lets the protocol run with 2f+1 replicas.

Certificates are real HMACs under a group key provisioned to every
replica's trusted subsystem (via attestation), so verification by other
replicas is genuine. Counter values are persisted through
:class:`repro.sgx.sealed.SealedStorage`, making them survive enclave
reboots (rollback protection).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..crypto.primitives import MAC_SIZE, MacKey
from .sealed import SealedStorage


class CounterError(Exception):
    """Monotonicity or authentication failure in the trusted subsystem."""


@dataclass(frozen=True)
class CounterCertificate:
    """Attestation that message ``digest`` owns counter slot ``value``."""

    subsystem_id: str
    counter_name: str
    value: int
    digest: bytes
    tag: bytes

    @property
    def wire_size(self) -> int:
        return len(self.subsystem_id) + len(self.counter_name) + 8 + len(self.digest) + len(self.tag)


def _auth_input(subsystem_id: str, counter_name: str, value: int, digest: bytes) -> bytes:
    return b"|".join(
        [subsystem_id.encode(), counter_name.encode(), value.to_bytes(8, "big"), digest]
    )


class TrustedCounterSubsystem:
    """The per-replica trusted counter service (lives in the enclave)."""

    def __init__(self, subsystem_id: str, group_key: MacKey, storage: Optional[SealedStorage] = None):
        self.subsystem_id = subsystem_id
        self._group_key = group_key
        self._storage = storage
        self._counters: dict[str, int] = {}
        if storage is not None:
            saved = storage.unseal("trusted-counters")
            if saved is not None:
                self._counters = _decode_counters(saved)

    def create(self, counter_name: str) -> None:
        """Create a fresh counter at value 0; recreating is forbidden."""
        if counter_name in self._counters:
            raise CounterError(f"counter {counter_name!r} already exists")
        self._counters[counter_name] = 0
        self._persist()

    def exists(self, counter_name: str) -> bool:
        return counter_name in self._counters

    def snapshot(self) -> dict[str, int]:
        """Current value of every counter.

        Rollback-protection checks compare snapshots taken around an
        enclave reboot: sealed counters must never move backwards.
        """
        return dict(self._counters)

    def current(self, counter_name: str) -> int:
        try:
            return self._counters[counter_name]
        except KeyError:
            raise CounterError(f"unknown counter {counter_name!r}") from None

    def certify_next(self, counter_name: str, digest: bytes) -> CounterCertificate:
        """Advance the counter by one and bind the new value to ``digest``."""
        value = self.current(counter_name) + 1
        return self._certify(counter_name, value, digest)

    def certify_at(self, counter_name: str, value: int, digest: bytes) -> CounterCertificate:
        """Advance the counter *to* ``value`` (must be strictly higher).

        Skipping values is allowed (TrInc semantics); certifying at or
        below the current value never is — that is the whole point.
        """
        if value <= self.current(counter_name):
            raise CounterError(
                f"counter {counter_name!r} cannot move from "
                f"{self.current(counter_name)} to {value}"
            )
        return self._certify(counter_name, value, digest)

    def _certify(self, counter_name: str, value: int, digest: bytes) -> CounterCertificate:
        self._counters[counter_name] = value
        self._persist()
        tag = self._group_key.sign(_auth_input(self.subsystem_id, counter_name, value, digest))
        return CounterCertificate(self.subsystem_id, counter_name, value, digest, tag)

    def verify(self, cert: CounterCertificate) -> bool:
        """Check a certificate produced by any subsystem in the group."""
        expected = _auth_input(cert.subsystem_id, cert.counter_name, cert.value, cert.digest)
        return self._group_key.verify(expected, cert.tag)

    def _persist(self) -> None:
        if self._storage is not None:
            self._storage.seal("trusted-counters", _encode_counters(self._counters))


def _encode_counters(counters: dict[str, int]) -> bytes:
    # Length-prefixed records: counter names may contain any characters.
    parts = []
    for name, value in sorted(counters.items()):
        name_bytes = name.encode("utf-8")
        parts.append(len(name_bytes).to_bytes(4, "big"))
        parts.append(name_bytes)
        parts.append(value.to_bytes(8, "big"))
    return b"".join(parts)


def _decode_counters(blob: bytes) -> dict[str, int]:
    out: dict[str, int] = {}
    offset = 0
    while offset < len(blob):
        name_len = int.from_bytes(blob[offset: offset + 4], "big")
        offset += 4
        name = blob[offset: offset + name_len].decode("utf-8")
        offset += name_len
        out[name] = int.from_bytes(blob[offset: offset + 8], "big")
        offset += 8
    return out


CERTIFICATE_WIRE_OVERHEAD = MAC_SIZE + 8  # tag + counter value

#: Sealed counter backing audit-ledger checkpoints (repro.obs.audit).
LEDGER_COUNTER = "audit-ledger"


def certify_ledger_checkpoint(
    subsystem: TrustedCounterSubsystem, seq: int, head: bytes
) -> CounterCertificate:
    """Trusted-side body of the ``certify_ledger`` ecall.

    Binds checkpoint number ``seq`` to the audit ledger's chain-head
    digest under the sealed ``audit-ledger`` counter. The counter is
    created on first use, and every later checkpoint must certify a
    strictly higher sequence number (TrInc fencing): the sealed value
    survives enclave reboots, so a host that rewinds or rewrites its
    ledger prefix can never re-certify an old checkpoint number — the
    gap itself becomes evidence.
    """
    if not subsystem.exists(LEDGER_COUNTER):
        subsystem.create(LEDGER_COUNTER)
    return subsystem.certify_at(LEDGER_COUNTER, seq, head)


#: Sealed counter fencing read-lease installs (repro.troxy.lease).
LEASE_COUNTER = "troxy-lease"


def certify_lease(
    subsystem: TrustedCounterSubsystem, epoch: int, digest: bytes
) -> CounterCertificate:
    """Trusted-side body of the ``install_lease`` ecall.

    Binds lease ``epoch`` to the grant digest under the sealed
    ``troxy-lease`` counter. Epochs are derived from the agreement
    sequence number that carried the grant, so they are strictly
    increasing in the order the enclave installs them; the sealed value
    survives enclave reboots, which is what makes lease reads safe
    against rollback: a power-cycled enclave loses its lease table, and
    a replayed grant certifies at or below the sealed value and is
    rejected (:class:`CounterError`) — a rolled-back Troxy can never
    resurrect a lease and serve a stale local read.
    """
    if not subsystem.exists(LEASE_COUNTER):
        subsystem.create(LEASE_COUNTER)
    return subsystem.certify_at(LEASE_COUNTER, epoch, digest)


def burn_lease_epoch(subsystem: TrustedCounterSubsystem, epoch: int) -> bool:
    """Fence off ``epoch`` without installing anything.

    Used when a revocation arrives for a grant the enclave never saw
    (lost, still in flight, or wiped by a reboot): burning the epoch
    guarantees the late grant can never install afterwards. Returns
    whether the counter actually moved — an epoch at or below the sealed
    value is already fenced and needs no burn.
    """
    if not subsystem.exists(LEASE_COUNTER):
        subsystem.create(LEASE_COUNTER)
    if epoch <= subsystem.current(LEASE_COUNTER):
        return False
    subsystem.certify_at(LEASE_COUNTER, epoch, b"lease-burn")
    return True
