"""Troxy (DSN 2018) reproduction: transparent access to BFT systems.

Quick start::

    from repro import build_troxy
    from repro.apps.kvstore import KvStore, get, put

    cluster = build_troxy(seed=7, app_factory=KvStore)
    client = cluster.new_client()          # an unmodified legacy client

    def scenario():
        yield from client.invoke(put("k", b"v"))
        outcome = yield from client.invoke(get("k"))
        assert outcome.result.content == b"v"

    cluster.env.process(scenario())
    cluster.env.run(until=10.0)

Package map (see DESIGN.md for the full inventory):

- :mod:`repro.sim`        deterministic discrete-event substrate
- :mod:`repro.crypto`     primitives, cost profiles, simulated TLS
- :mod:`repro.sgx`        simulated enclaves, counters, attestation
- :mod:`repro.hybster`    the hybrid BFT protocol + client-side library
- :mod:`repro.troxy`      the trusted proxy (the paper's contribution)
- :mod:`repro.baselines`  Prophecy middlebox, standalone server
- :mod:`repro.apps`       echo / KV store / HTTP page service
- :mod:`repro.workloads`  legacy clients and load generators
- :mod:`repro.analysis`   metrics and linearizability checking
- :mod:`repro.bench`      builders and paper-experiment runners
"""

from .bench.clusters import (
    build_baseline,
    build_prophecy,
    build_standalone,
    build_troxy,
)

__version__ = "1.0.0"

__all__ = [
    "build_baseline",
    "build_prophecy",
    "build_standalone",
    "build_troxy",
    "__version__",
]
