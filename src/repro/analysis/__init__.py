"""Measurement and verification utilities."""

from .history import HistoryRecorder
from .linearizability import (
    OpRecord,
    check_key_history,
    check_linearizable,
    find_violation,
    split_by_key,
)
from .metrics import Collector, Sample, Summary, percentile

__all__ = [
    "Collector",
    "HistoryRecorder",
    "OpRecord",
    "Sample",
    "Summary",
    "check_key_history",
    "check_linearizable",
    "find_violation",
    "percentile",
    "split_by_key",
]
