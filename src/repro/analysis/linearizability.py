"""Linearizability checking for key-value histories (Wing & Gong).

Troxy's headline consistency claim is that the fast-read cache preserves
linearizability. The integration tests exercise that claim end to end:
they record (start, end, operation, result) for every client invocation
and hand the history to this checker, which searches for a legal
sequential witness ordering consistent with real-time precedence.

Exponential in the worst case — use with bounded histories (the tests
keep them small and per-key, which is sound: linearizability is local,
i.e. a history is linearizable iff each per-key subhistory is).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class OpRecord:
    """One completed client operation."""

    client: str
    kind: str  # "put" or "get"
    key: str
    value: Optional[bytes]  # written value for put; observed value for get
    start: float
    end: float

    def __post_init__(self):
        if self.kind not in ("put", "get"):
            raise ValueError(f"unsupported kind: {self.kind!r}")
        if self.end < self.start:
            raise ValueError("end before start")


def split_by_key(history: list[OpRecord]) -> dict[str, list[OpRecord]]:
    """Locality: check each key's subhistory independently."""
    by_key: dict[str, list[OpRecord]] = {}
    for record in history:
        by_key.setdefault(record.key, []).append(record)
    return by_key


def check_key_history(
    history: list[OpRecord], initial: Optional[bytes] = None
) -> bool:
    """Is this single-key history linearizable w.r.t. a register spec?"""
    records = sorted(history, key=lambda r: (r.start, r.end))
    n = len(records)
    if n == 0:
        return True
    seen: set[tuple[frozenset, Optional[bytes]]] = set()

    def search(remaining: frozenset, state: Optional[bytes]) -> bool:
        if not remaining:
            return True
        memo_key = (remaining, state)
        if memo_key in seen:
            return False
        # An op may linearize next only if no other remaining op finished
        # before it started (real-time order must be respected).
        min_end = min(records[i].end for i in remaining)
        for i in sorted(remaining):
            record = records[i]
            if record.start > min_end:
                break  # sorted by start: no later op can be minimal
            if record.kind == "get" and record.value != state:
                continue
            next_state = record.value if record.kind == "put" else state
            if search(remaining - {i}, next_state):
                return True
        seen.add(memo_key)
        return False

    return search(frozenset(range(n)), initial)


def check_linearizable(
    history: list[OpRecord], initial: Optional[dict[str, bytes]] = None
) -> bool:
    """Check a multi-key history (per-key decomposition)."""
    initial = initial or {}
    return all(
        check_key_history(records, initial.get(key))
        for key, records in split_by_key(history).items()
    )


def find_violation(history: list[OpRecord]) -> Optional[str]:
    """Human-readable description of the first non-linearizable key."""
    for key, records in split_by_key(history).items():
        if not check_key_history(records):
            ops = "\n".join(
                f"  [{r.start:.6f}, {r.end:.6f}] {r.client} {r.kind}({key}) -> {r.value!r}"
                for r in sorted(records, key=lambda r: r.start)
            )
            return f"history for key {key!r} is not linearizable:\n{ops}"
    return None
