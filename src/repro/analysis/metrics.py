"""Latency/throughput collection and summarization."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional


@dataclass
class Sample:
    """One completed operation."""

    completed_at: float
    latency: float
    ordered: bool = True
    read: bool = False
    conflict: bool = False
    retries: int = 0


@dataclass(frozen=True)
class Summary:
    """Aggregated view of one measurement window."""

    count: int
    duration: float
    throughput: float  # operations per second
    mean_latency: float
    p50: float
    p95: float
    p99: float
    conflict_rate: float

    def __str__(self) -> str:
        return (
            f"{self.throughput:10.1f} op/s  "
            f"lat mean {self.mean_latency * 1000:8.3f} ms  "
            f"p50 {self.p50 * 1000:8.3f}  p95 {self.p95 * 1000:8.3f}  "
            f"conflicts {self.conflict_rate * 100:5.1f}%"
        )


def percentile(sorted_values: list[float], q: float) -> float:
    """q-th percentile (0..1) by linear interpolation; 0.0 on empty."""
    if not sorted_values:
        return 0.0
    if len(sorted_values) == 1:
        return sorted_values[0]
    position = q * (len(sorted_values) - 1)
    low = math.floor(position)
    high = math.ceil(position)
    if low == high:
        return sorted_values[low]
    weight = position - low
    return sorted_values[low] * (1 - weight) + sorted_values[high] * weight


class Collector:
    """Accumulates samples; summarizes a half-open [start, end) window."""

    def __init__(self):
        self.samples: list[Sample] = []

    def record(
        self,
        completed_at: float,
        latency: float,
        ordered: bool = True,
        read: bool = False,
        conflict: bool = False,
        retries: int = 0,
    ) -> None:
        self.samples.append(
            Sample(completed_at, latency, ordered, read, conflict, retries)
        )

    def window(self, start: float, end: float) -> list[Sample]:
        """Samples completing in the half-open interval [start, end).

        Half-open so that adjacent windows partition the timeline: a
        sample landing exactly on a boundary belongs to exactly one
        window instead of being double-counted by both.
        """
        return [s for s in self.samples if start <= s.completed_at < end]

    def summarize(self, start: float, end: float) -> Summary:
        if end <= start:
            raise ValueError(f"empty window [{start}, {end}]")
        samples = self.window(start, end)
        duration = end - start
        if not samples:
            return Summary(0, duration, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)
        latencies = sorted(s.latency for s in samples)
        conflicts = sum(1 for s in samples if s.conflict)
        return Summary(
            count=len(samples),
            duration=duration,
            throughput=len(samples) / duration,
            mean_latency=sum(latencies) / len(latencies),
            p50=percentile(latencies, 0.50),
            p95=percentile(latencies, 0.95),
            p99=percentile(latencies, 0.99),
            conflict_rate=conflicts / len(samples),
        )
