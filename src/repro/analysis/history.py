"""Recording client histories for linearizability checking.

Wraps any client exposing ``invoke(op)`` so every completed operation is
appended to a shared history as an :class:`OpRecord`, ready for
:func:`repro.analysis.linearizability.check_linearizable`. Used by the
consistency tests and the Table I benchmark; exposed as a library so
downstream users can check their own workloads.
"""

from __future__ import annotations

from typing import Optional

from ..apps.base import Operation
from .linearizability import OpRecord

#: KvStore's encoding of "no such key"; recorded as None (empty register).
MISSING = b"\x00missing"


class HistoryRecorder:
    """Collects OpRecords from one or many wrapped clients."""

    def __init__(self, env, epsilon: float = 1e-6):
        self.env = env
        self.records: list[OpRecord] = []
        # Consecutive ops of one client get an epsilon gap so their
        # intervals are disjoint (touching intervals count as concurrent
        # under real-time precedence, which would weaken the check).
        self.epsilon = epsilon

    def wrap(self, client):
        """Return a drop-in replacement for ``client`` whose kv-style
        get/put operations are recorded."""
        return _RecordingClient(self, client)

    def check(self, initial: Optional[dict[str, bytes]] = None) -> bool:
        from .linearizability import check_linearizable

        return check_linearizable(self.records, initial)

    def violation(self) -> Optional[str]:
        from .linearizability import find_violation

        return find_violation(self.records)


class _RecordingClient:
    """Proxy recording invoke() outcomes; other attributes pass through."""

    def __init__(self, recorder: HistoryRecorder, client):
        self._recorder = recorder
        self._client = client

    def __getattr__(self, name):
        return getattr(self._client, name)

    def invoke(self, op: Operation):
        recorder = self._recorder
        env = recorder.env
        start = env.now
        outcome = yield from self._client.invoke(op)
        record = self._to_record(op, outcome, start, env.now)
        if record is not None:
            recorder.records.append(record)
        yield env.timeout(recorder.epsilon)
        return outcome

    def _to_record(self, op: Operation, outcome, start: float, end: float):
        client_id = getattr(self._client, "client_id", "client")
        if op.name == "put":
            return OpRecord(client_id, "put", op.key, op.body.content, start, end)
        if op.name == "get":
            value = outcome.result.content
            observed = None if value == MISSING else value
            return OpRecord(client_id, "get", op.key, observed, start, end)
        return None  # unsupported shape: not part of the register history
