"""Replicated applications: the microbenchmark service, a KV store, and
the HTTP page service, all implementing :class:`repro.apps.base.Application`."""

from .base import EMPTY_PAYLOAD, Application, Operation, OpKind, Payload
from .echo import EchoService
from .kvstore import KvStore, delete, get, put

__all__ = [
    "Application",
    "EMPTY_PAYLOAD",
    "EchoService",
    "KvStore",
    "Operation",
    "OpKind",
    "Payload",
    "delete",
    "get",
    "put",
]
