"""A key-value store application.

Used by the examples and by the linearizability tests: unlike the echo
service, values written are the values read back, so histories can be
checked against the sequential KV specification.
"""

from __future__ import annotations

from .base import Application, Operation, OpKind, Payload


class KvStore(Application):
    """Replicated string-keyed byte store."""

    def __init__(self):
        self._data: dict[str, bytes] = {}

    def execute(self, op: Operation) -> Payload:
        if op.kind is OpKind.WRITE:
            if op.name == "put":
                self._data[op.key] = op.body.content
                return Payload(b"stored")
            if op.name == "delete":
                existed = op.key in self._data
                self._data.pop(op.key, None)
                return Payload(b"deleted" if existed else b"absent")
            raise ValueError(f"unknown write operation: {op.name!r}")
        if op.name == "get":
            value = self._data.get(op.key)
            if value is None:
                return Payload(b"\x00missing")
            return Payload(value)
        if op.name == "size":
            return Payload(str(len(self._data)).encode())
        raise ValueError(f"unknown read operation: {op.name!r}")

    def execution_cost(self, op: Operation) -> float:
        return 0.8e-6 + 0.1e-9 * op.body.size

    def snapshot(self) -> bytes:
        # Length-prefixed records: safe for arbitrary binary values.
        parts = []
        for key in sorted(self._data):
            key_bytes = key.encode()
            value = self._data[key]
            parts.append(len(key_bytes).to_bytes(4, "big"))
            parts.append(key_bytes)
            parts.append(len(value).to_bytes(4, "big"))
            parts.append(value)
        return b"".join(parts)

    def restore(self, snapshot: bytes) -> None:
        self._data = {}
        offset = 0
        while offset < len(snapshot):
            key_len = int.from_bytes(snapshot[offset: offset + 4], "big")
            offset += 4
            key = snapshot[offset: offset + key_len].decode()
            offset += key_len
            value_len = int.from_bytes(snapshot[offset: offset + 4], "big")
            offset += 4
            self._data[key] = snapshot[offset: offset + value_len]
            offset += value_len


def put(key: str, value: bytes) -> Operation:
    """Convenience constructor for a put operation."""
    return Operation(OpKind.WRITE, "put", key, Payload(value))


def get(key: str) -> Operation:
    """Convenience constructor for a get operation."""
    return Operation(OpKind.READ, "get", key)


def delete(key: str) -> Operation:
    """Convenience constructor for a delete operation."""
    return Operation(OpKind.WRITE, "delete", key)
