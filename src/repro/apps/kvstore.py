"""A key-value store application.

Used by the examples and by the linearizability tests: unlike the echo
service, values written are the values read back, so histories can be
checked against the sequential KV specification.
"""

from __future__ import annotations

from .base import Application, Operation, OpKind, Payload


class KvStore(Application):
    """Replicated string-keyed byte store."""

    def __init__(self):
        self._data: dict[str, bytes] = {}

    def execute(self, op: Operation) -> Payload:
        if op.kind is OpKind.WRITE:
            if op.name == "put":
                self._data[op.key] = op.body.content
                return Payload(b"stored")
            if op.name == "delete":
                existed = op.key in self._data
                self._data.pop(op.key, None)
                return Payload(b"deleted" if existed else b"absent")
            if op.name == "shard_install":
                # Bulk-apply migrated state (repro.shard): the body is a
                # length-prefixed record list, ordered like everything
                # else so all replicas apply it at the same slot.
                pairs = decode_kv_records(op.body.content)
                for key, value in pairs:
                    self._data[key] = value
                return Payload(b"installed:%d" % len(pairs))
            if op.name == "shard_retire":
                removed = 0
                for key in decode_key_list(op.body.content):
                    if self._data.pop(key, None) is not None:
                        removed += 1
                return Payload(b"retired:%d" % removed)
            raise ValueError(f"unknown write operation: {op.name!r}")
        if op.name == "get":
            value = self._data.get(op.key)
            if value is None:
                return Payload(b"\x00missing")
            return Payload(value)
        if op.name == "size":
            return Payload(str(len(self._data)).encode())
        raise ValueError(f"unknown read operation: {op.name!r}")

    def execution_cost(self, op: Operation) -> float:
        return 0.8e-6 + 0.1e-9 * op.body.size

    def snapshot(self) -> bytes:
        # Length-prefixed records: safe for arbitrary binary values.
        parts = []
        for key in sorted(self._data):
            key_bytes = key.encode()
            value = self._data[key]
            parts.append(len(key_bytes).to_bytes(4, "big"))
            parts.append(key_bytes)
            parts.append(len(value).to_bytes(4, "big"))
            parts.append(value)
        return b"".join(parts)

    def restore(self, snapshot: bytes) -> None:
        self._data = {}
        offset = 0
        while offset < len(snapshot):
            key_len = int.from_bytes(snapshot[offset: offset + 4], "big")
            offset += 4
            key = snapshot[offset: offset + key_len].decode()
            offset += key_len
            value_len = int.from_bytes(snapshot[offset: offset + 4], "big")
            offset += 4
            self._data[key] = snapshot[offset: offset + value_len]
            offset += value_len


def encode_kv_records(pairs) -> bytes:
    """Length-prefixed (key, value) records — the snapshot wire format."""
    parts = []
    for key, value in pairs:
        key_bytes = key.encode()
        parts.append(len(key_bytes).to_bytes(4, "big"))
        parts.append(key_bytes)
        parts.append(len(value).to_bytes(4, "big"))
        parts.append(value)
    return b"".join(parts)


def decode_kv_records(blob: bytes) -> list[tuple[str, bytes]]:
    """Inverse of :func:`encode_kv_records` / :meth:`KvStore.snapshot`."""
    pairs = []
    offset = 0
    while offset < len(blob):
        key_len = int.from_bytes(blob[offset: offset + 4], "big")
        offset += 4
        key = blob[offset: offset + key_len].decode()
        offset += key_len
        value_len = int.from_bytes(blob[offset: offset + 4], "big")
        offset += 4
        pairs.append((key, blob[offset: offset + value_len]))
        offset += value_len
    return pairs


def encode_key_list(keys) -> bytes:
    parts = []
    for key in keys:
        key_bytes = key.encode()
        parts.append(len(key_bytes).to_bytes(4, "big"))
        parts.append(key_bytes)
    return b"".join(parts)


def decode_key_list(blob: bytes) -> list[str]:
    keys = []
    offset = 0
    while offset < len(blob):
        key_len = int.from_bytes(blob[offset: offset + 4], "big")
        offset += 4
        keys.append(blob[offset: offset + key_len].decode())
        offset += key_len
    return keys


def shard_install(control_key: str, pairs) -> Operation:
    """Ordered bulk state install at a migration destination group.

    ``control_key`` must be pinned to the destination group (``__g{N}/``
    namespace) so the router never forwards or freezes it.
    """
    return Operation(OpKind.WRITE, "shard_install", control_key, Payload(encode_kv_records(pairs)))


def shard_retire(control_key: str, keys) -> Operation:
    """Ordered deletion of migrated-away keys at the source group."""
    return Operation(OpKind.WRITE, "shard_retire", control_key, Payload(encode_key_list(keys)))


def put(key: str, value: bytes) -> Operation:
    """Convenience constructor for a put operation."""
    return Operation(OpKind.WRITE, "put", key, Payload(value))


def get(key: str) -> Operation:
    """Convenience constructor for a get operation."""
    return Operation(OpKind.READ, "get", key)


def delete(key: str) -> Operation:
    """Convenience constructor for a delete operation."""
    return Operation(OpKind.WRITE, "delete", key)
