"""Replicated-application interface and common value types.

Every service replicated by Hybster (with or without Troxy) implements
:class:`Application`. Following the paper's fast-read assumptions
(Section IV-A), the interface lets the framework (1) distinguish read
from write requests *before* execution and (2) determine which part of
the state a request touches (``keys_accessed``) — both are required for
the managed cache.

Payloads carry real content bytes (so digests and votes are genuine)
plus a ``padded_size`` so benchmarks can model 4 KB replies without
materializing 4 KB of RAM per message.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from ..crypto.primitives import digest_of, intern_digest


class OpKind(enum.Enum):
    READ = "read"
    WRITE = "write"


@dataclass(frozen=True)
class Payload:
    """Message body: semantic content plus modelled wire size."""

    content: bytes
    padded_size: int = 0

    # Modelled on-the-wire size in bytes; precomputed at construction
    # because cost models read it on every hop of every message.
    size: int = field(init=False, compare=False, repr=False)

    def __post_init__(self):
        if self.padded_size and self.padded_size < len(self.content):
            raise ValueError(
                f"padded_size {self.padded_size} smaller than content "
                f"({len(self.content)} bytes)"
            )
        object.__setattr__(self, "size", self.padded_size or len(self.content))

    def digest(self) -> bytes:
        # Interned rather than per-instance: every replica materializes
        # its own Payload for the same reply content, and voters hash
        # all of them (see docs/PERFORMANCE.md). try/except cache: the
        # hit path is a plain attribute load, no dict.get call.
        try:
            return self._digest
        except AttributeError:
            cached = intern_digest(self.content, self.size.to_bytes(8, "big"))
            object.__setattr__(self, "_digest", cached)
            return cached


EMPTY_PAYLOAD = Payload(b"", 0)


@dataclass(frozen=True)
class Operation:
    """One application-level command."""

    kind: OpKind
    name: str  # e.g. "get", "put", "echo"
    key: str = ""
    body: Payload = EMPTY_PAYLOAD
    size: int = field(init=False, compare=False, repr=False)
    is_read: bool = field(init=False, compare=False, repr=False)

    def __post_init__(self):
        object.__setattr__(
            self, "size", len(self.name) + len(self.key) + self.body.size + 2
        )
        object.__setattr__(self, "is_read", self.kind is OpKind.READ)

    def digest(self) -> bytes:
        try:
            return self._digest
        except AttributeError:
            cached = digest_of(
                self.kind.value.encode(), self.name.encode(), self.key.encode(),
                self.body.digest(),
            )
            object.__setattr__(self, "_digest", cached)
        return cached


class Application:
    """Deterministic state machine replicated by the BFT protocol."""

    def execute(self, op: Operation) -> Payload:
        """Apply ``op`` and return the reply payload. Must be deterministic."""
        raise NotImplementedError

    def execute_read(self, op: Operation) -> Payload:
        """Execute a read against current state without ordering it.

        Used by the PBFT-like read optimization. Default: same as execute
        (reads must not mutate state).
        """
        if not op.is_read:
            raise ValueError(f"execute_read on a write operation: {op}")
        return self.execute(op)

    def keys_accessed(self, op: Operation) -> tuple[str, ...]:
        """State partitions this operation reads or writes."""
        return (op.key,)

    def execution_cost(self, op: Operation) -> float:
        """Simulated CPU seconds to execute ``op``."""
        return 1.0e-6 + 0.1e-9 * op.body.size

    def snapshot(self) -> bytes:
        """Serialized state for checkpoints / state transfer."""
        raise NotImplementedError

    def restore(self, snapshot: bytes) -> None:
        raise NotImplementedError
