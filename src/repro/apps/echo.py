"""The microbenchmark service (Section VI-C).

"We created a simple service that accepts requests and generates a reply
message of configurable size. Read and write requests can be
distinguished by their operation types."

Writes bump a per-key version counter (so concurrent writes genuinely
change the state reads observe); reads return the current version padded
to the configured reply size. Determinism: the reply content depends
only on the sequence of executed operations.
"""

from __future__ import annotations

from .base import Application, Operation, OpKind, Payload


class EchoService(Application):
    """Configurable-reply-size echo/counter service."""

    def __init__(self, reply_size: int = 10):
        if reply_size < 1:
            raise ValueError(f"reply_size must be positive: {reply_size}")
        self.reply_size = reply_size
        self._versions: dict[str, int] = {}

    def execute(self, op: Operation) -> Payload:
        if op.kind is OpKind.WRITE:
            self._versions[op.key] = self._versions.get(op.key, 0) + 1
            # Writes get the paper's fixed 10 B acknowledgement.
            content = f"ok:{self._versions[op.key]}".encode()
            return Payload(content, padded_size=max(10, len(content)))
        version = self._versions.get(op.key, 0)
        content = f"{op.key}@{version}".encode()
        return Payload(content, padded_size=max(self.reply_size, len(content)))

    def snapshot(self) -> bytes:
        return ";".join(
            f"{key}={version}" for key, version in sorted(self._versions.items())
        ).encode()

    def restore(self, snapshot: bytes) -> None:
        self._versions = {}
        if not snapshot:
            return
        for entry in snapshot.decode().split(";"):
            key, version = entry.rsplit("=", 1)
            self._versions[key] = int(version)
