"""The replicated HTTP page service (Section VI-D).

"We created a simple, replicated HTTP service that handles HTTP GET and
POST requests and returns the queried or modified pages as responses."

Pages are initialized with sizes between 4 KB and 18 KB; GET/POST
requests carry ~200 B payloads. The service implements
:class:`Application`, so the same code runs under the baseline,
Prophecy, Troxy, and standalone deployments.
"""

from __future__ import annotations

from typing import Iterable, Optional

from ..base import Application, Operation, OpKind, Payload
from .codec import HttpRequest, HttpResponse, parse_request

DEFAULT_PAGE_SIZES = (4096, 6144, 8192, 10240, 12288, 14336, 16384, 18432)


def seed_pages(count: int = 32, sizes: Iterable[int] = DEFAULT_PAGE_SIZES) -> dict[str, bytes]:
    """Generate the initial page set (deterministic)."""
    sizes = tuple(sizes)
    pages = {}
    for i in range(count):
        size = sizes[i % len(sizes)]
        content = (f"<page {i}>".encode() * (size // 8 + 1))[:size]
        pages[f"/page/{i}"] = content
    return pages


def http_operation(request: HttpRequest) -> Operation:
    """Wrap an HTTP request into a replicated-state-machine operation.

    GET maps to a read on the path's state partition; POST to a write.
    The raw HTTP bytes ride along as the operation body, so replicas
    parse and answer exactly what the client sent.
    """
    kind = OpKind.READ if request.method == "GET" else OpKind.WRITE
    encoded = request.encode()
    return Operation(kind, name="http", key=request.path, body=Payload(encoded))


def get_operation(path: str, extra_payload: int = 0) -> Operation:
    """Convenience: a GET with an optional padding payload (headers)."""
    headers = ()
    if extra_payload:
        headers = (("X-Padding", "x" * extra_payload),)
    return http_operation(HttpRequest("GET", path, headers))


def post_operation(path: str, body: bytes) -> Operation:
    return http_operation(HttpRequest("POST", path, (), body))


class HttpPageService(Application):
    """Deterministic page store behind an HTTP facade."""

    def __init__(self, pages: Optional[dict[str, bytes]] = None):
        self._pages: dict[str, bytes] = dict(pages if pages is not None else seed_pages())

    def execute(self, op: Operation) -> Payload:
        if op.name != "http":
            raise ValueError(f"not an HTTP operation: {op.name!r}")
        request = parse_request(op.body.content)
        if request.method == "GET":
            page = self._pages.get(request.path)
            if page is None:
                response = HttpResponse(404, body=b"not found")
            else:
                response = HttpResponse(200, body=page)
        elif request.method == "POST":
            existing = self._pages.get(request.path, b"")
            updated = self._apply_post(existing, request.body)
            self._pages[request.path] = updated
            response = HttpResponse(200, body=updated)
        else:
            response = HttpResponse(405, reason="Method Not Allowed", body=b"")
        return Payload(response.encode())

    @staticmethod
    def _apply_post(existing: bytes, posted: bytes) -> bytes:
        """Deterministic page modification: splice the posted fragment in
        front and keep the page size stable."""
        if not existing:
            return posted
        combined = posted + existing
        return combined[: len(existing)]

    def execution_cost(self, op: Operation) -> float:
        # Parsing + page handling, proportional to bytes touched.
        return 2.0e-6 + 0.2e-9 * op.body.size

    def keys_accessed(self, op: Operation) -> tuple[str, ...]:
        return (op.key,)

    def snapshot(self) -> bytes:
        # Length-prefixed records: safe for arbitrary binary page bodies.
        parts = []
        for path in sorted(self._pages):
            path_bytes = path.encode()
            content = self._pages[path]
            parts.append(len(path_bytes).to_bytes(4, "big"))
            parts.append(path_bytes)
            parts.append(len(content).to_bytes(4, "big"))
            parts.append(content)
        return b"".join(parts)

    def restore(self, snapshot: bytes) -> None:
        self._pages = {}
        offset = 0
        while offset < len(snapshot):
            path_len = int.from_bytes(snapshot[offset: offset + 4], "big")
            offset += 4
            path = snapshot[offset: offset + path_len].decode()
            offset += path_len
            content_len = int.from_bytes(snapshot[offset: offset + 4], "big")
            offset += 4
            self._pages[path] = snapshot[offset: offset + content_len]
            offset += content_len
