"""HTTP substrate: HTTP/1.1 codec and the replicated page service."""

from .codec import (
    HttpError,
    HttpRequest,
    HttpResponse,
    frame_length,
    parse_request,
    parse_response,
)
from .service import (
    DEFAULT_PAGE_SIZES,
    HttpPageService,
    get_operation,
    http_operation,
    post_operation,
    seed_pages,
)

__all__ = [
    "DEFAULT_PAGE_SIZES",
    "HttpError",
    "HttpPageService",
    "HttpRequest",
    "HttpResponse",
    "frame_length",
    "get_operation",
    "http_operation",
    "parse_request",
    "parse_response",
    "post_operation",
    "seed_pages",
]
