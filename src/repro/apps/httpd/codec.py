"""Minimal HTTP/1.1 message codec.

Troxy does not need to *understand* HTTP — "it is sufficient for the
Troxy to identify request boundaries ... for many communication
protocols, including HTTP, identifying message boundaries is
straightforward due to messages carrying information about their own
length" (Section III-E). This codec provides exactly that: encode,
parse, and a :func:`frame_length` that finds message boundaries from
the Content-Length header.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

CRLF = b"\r\n"
HEADER_END = b"\r\n\r\n"


class HttpError(Exception):
    """Malformed HTTP message."""


@dataclass(frozen=True)
class HttpRequest:
    """One HTTP/1.1 request."""

    method: str
    path: str
    headers: tuple[tuple[str, str], ...] = ()
    body: bytes = b""

    def header(self, name: str) -> Optional[str]:
        lowered = name.lower()
        for key, value in self.headers:
            if key.lower() == lowered:
                return value
        return None

    def encode(self) -> bytes:
        # Framing is the codec's job: caller-supplied Content-Length
        # headers (any capitalisation) are dropped and replaced with the
        # actual body length, else parsing could mis-frame the message.
        headers = _strip_content_length(self.headers)
        if self.body:
            headers.append(("Content-Length", str(len(self.body))))
        # HTTP/1.1 header fields are latin-1 on the wire (RFC 7230).
        lines = [f"{self.method} {self.path} HTTP/1.1".encode("latin-1")]
        lines += [f"{k}: {v}".encode("latin-1") for k, v in headers]
        return CRLF.join(lines) + HEADER_END + self.body


@dataclass(frozen=True)
class HttpResponse:
    """One HTTP/1.1 response."""

    status: int
    reason: str = ""
    headers: tuple[tuple[str, str], ...] = ()
    body: bytes = b""

    def header(self, name: str) -> Optional[str]:
        lowered = name.lower()
        for key, value in self.headers:
            if key.lower() == lowered:
                return value
        return None

    def encode(self) -> bytes:
        reason = self.reason or {200: "OK", 201: "Created", 404: "Not Found"}.get(
            self.status, ""
        )
        headers = _strip_content_length(self.headers)
        headers.append(("Content-Length", str(len(self.body))))
        lines = [f"HTTP/1.1 {self.status} {reason}".encode("latin-1")]
        lines += [f"{k}: {v}".encode("latin-1") for k, v in headers]
        return CRLF.join(lines) + HEADER_END + self.body


def _strip_content_length(headers: tuple[tuple[str, str], ...]) -> list[tuple[str, str]]:
    return [(k, v) for k, v in headers if k.lower() != "content-length"]


def _parse_headers(block: bytes) -> tuple[tuple[str, str], ...]:
    headers = []
    for line in block.split(CRLF):
        if not line:
            continue
        if b":" not in line:
            raise HttpError(f"malformed header line: {line!r}")
        name, _, value = line.partition(b":")
        headers.append((name.decode("latin-1").strip(), value.decode("latin-1").strip()))
    return tuple(headers)


def frame_length(data: bytes) -> Optional[int]:
    """Total length of the first complete message in ``data``.

    Returns None while the message is still incomplete. This is the only
    protocol knowledge the Troxy needs about HTTP.
    """
    end = data.find(HEADER_END)
    if end < 0:
        return None
    header_block = data[:end]
    content_length = 0
    for line in header_block.split(CRLF)[1:]:
        name, _, value = line.partition(b":")
        if name.decode("latin-1").strip().lower() == "content-length":
            try:
                content_length = int(value.strip())
            except ValueError:
                raise HttpError(f"bad Content-Length: {value!r}") from None
    total = end + len(HEADER_END) + content_length
    return total if len(data) >= total else None


def _split_message(data: bytes) -> tuple[bytes, bytes, bytes]:
    """(first line, header block, body) of the first complete message."""
    total = frame_length(data)
    if total is None:
        raise HttpError("incomplete message")
    end = data.find(HEADER_END)
    head = data[:end]
    body = data[end + len(HEADER_END): total]
    first_line, _, header_block = head.partition(CRLF)
    return first_line, header_block, body


def parse_request(data: bytes) -> HttpRequest:
    """Parse one complete request (raises on malformed/incomplete)."""
    request_line, header_block, body = _split_message(data)
    parts = request_line.decode("latin-1").split(" ")
    if len(parts) != 3 or not parts[2].startswith("HTTP/"):
        raise HttpError(f"malformed request line: {request_line!r}")
    method, path, _version = parts
    return HttpRequest(method, path, _parse_headers(header_block), body)


def parse_response(data: bytes) -> HttpResponse:
    """Parse one complete response."""
    status_line, header_block, body = _split_message(data)
    parts = status_line.decode("latin-1").split(" ", 2)
    if len(parts) < 2 or not parts[0].startswith("HTTP/"):
        raise HttpError(f"malformed status line: {status_line!r}")
    try:
        status = int(parts[1])
    except ValueError:
        raise HttpError(f"bad status code: {parts[1]!r}") from None
    reason = parts[2] if len(parts) == 3 else ""
    return HttpResponse(status, reason, _parse_headers(header_block), body)
