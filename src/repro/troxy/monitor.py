"""Conflict-rate monitoring and the adaptive total-order switch.

Section IV-B / VI-C3: the Troxy measures the fast-read miss/conflict
rate inside the enclave; when it exceeds a configurable threshold, the
Troxy "automatically switch[es] to the total-order mode where all
requests will be ordered", guaranteeing the lower-bound performance
under write contention or performance attacks. While in total-order
mode it keeps *sampling* the fast path to learn when conflicts subside.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass


@dataclass
class MonitorStats:
    fast_successes: int = 0
    conflicts: int = 0
    misses: int = 0
    switches_to_total_order: int = 0
    switches_to_fast_read: int = 0
    probes: int = 0


class ConflictMonitor:
    """Sliding-window conflict-rate tracker with hysteresis."""

    def __init__(
        self,
        window: int = 64,
        threshold: float = 0.30,
        probe_interval: int = 32,
        recovery_successes: int = 8,
        min_samples: int = 16,
        count_misses: bool = False,
    ):
        if not 0.0 < threshold <= 1.0:
            raise ValueError(f"threshold must be in (0, 1]: {threshold}")
        if window < min_samples:
            raise ValueError("window must be >= min_samples")
        self.window = window
        self.threshold = threshold
        self.probe_interval = probe_interval
        self.recovery_successes = recovery_successes
        self.min_samples = min_samples
        self.count_misses = count_misses
        self.stats = MonitorStats()
        # Called with "total_order" / "fast_read" whenever the adaptive
        # switch flips; observability and tests hook in here.
        self.switch_hooks: list = []
        self._outcomes: deque[bool] = deque(maxlen=window)  # True = conflict
        self._total_order = False
        self._reads_since_probe = 0
        self._consecutive_probe_successes = 0

    @property
    def total_order_mode(self) -> bool:
        return self._total_order

    @property
    def conflict_rate(self) -> float:
        if not self._outcomes:
            return 0.0
        return sum(self._outcomes) / len(self._outcomes)

    def should_try_fast_read(self) -> bool:
        """Gate for the fast path: always in fast-read mode; only every
        ``probe_interval``-th read while in total-order mode."""
        if not self._total_order:
            return True
        self._reads_since_probe += 1
        if self._reads_since_probe >= self.probe_interval:
            self._reads_since_probe = 0
            self.stats.probes += 1
            return True
        return False

    def record_fast_success(self) -> None:
        self.stats.fast_successes += 1
        self._record(False)
        if self._total_order:
            self._consecutive_probe_successes += 1
            if self._consecutive_probe_successes >= self.recovery_successes:
                self._total_order = False
                self.stats.switches_to_fast_read += 1
                self._outcomes.clear()
                for hook in self.switch_hooks:
                    hook("fast_read")

    def record_conflict(self) -> None:
        """A fast read failed: remote mismatch or invalidated entry."""
        self.stats.conflicts += 1
        self._record(True)
        self._consecutive_probe_successes = 0

    def record_miss(self) -> None:
        """Cold miss: nothing cached. By default not counted against the
        threshold — a cold cache must not keep the switch latched. With
        ``count_misses`` the miss *is* sampled: under sustained write
        contention every read misses on a freshly invalidated entry, and
        the paper's monitor reacts to the combined miss/conflict rate
        (Section VI-C3)."""
        self.stats.misses += 1
        if self.count_misses:
            self._record(True)
            self._consecutive_probe_successes = 0

    def _record(self, conflict: bool) -> None:
        self._outcomes.append(conflict)
        if (
            not self._total_order
            and len(self._outcomes) >= self.min_samples
            and self.conflict_rate >= self.threshold
        ):
            self._total_order = True
            self.stats.switches_to_total_order += 1
            self._reads_since_probe = 0
            self._consecutive_probe_successes = 0
            for hook in self.switch_hooks:
                hook("total_order")
