"""Troxy: the trusted proxy that makes BFT transparent to legacy clients.

* :mod:`repro.troxy.core` — trusted logic (runs inside the enclave).
* :mod:`repro.troxy.host` — untrusted message pump around it.
* :mod:`repro.troxy.cache` — the managed fast-read cache.
* :mod:`repro.troxy.monitor` — conflict-rate monitor + adaptive switch.
* :mod:`repro.troxy.messages` — Troxy-to-Troxy cache protocol.
"""

from .cache import CacheEntry, CacheStats, FastReadCache
from .core import Action, TroxyCore, TroxyStats
from .host import TROXY_ECALLS, TroxyHost
from .messages import CacheEntryReply, CacheQuery
from .monitor import ConflictMonitor, MonitorStats

__all__ = [
    "Action",
    "CacheEntry",
    "CacheEntryReply",
    "CacheQuery",
    "CacheStats",
    "ConflictMonitor",
    "FastReadCache",
    "MonitorStats",
    "TROXY_ECALLS",
    "TroxyCore",
    "TroxyHost",
    "TroxyStats",
]
