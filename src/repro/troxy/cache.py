"""The managed fast-read cache (Section IV).

Entries are keyed by the *request identity* (digest of the canonical
read request, the paper's ``id(req)``) and indexed by the application
state keys they depend on, so a write can invalidate exactly the
entries it outdates — before the write's reply becomes visible.

Writes never *update* the cache ("a faulty replica should not be able
to pollute the cache", Section IV-B); entries are only installed from
voted results of ordered reads, and only removed by write invalidation,
capacity eviction, or enclave reboot.

Memory accounting: with ``store_outside`` (the paper's optimization) a
cached reply body lives encrypted in untrusted memory and only its
digest occupies EPC; otherwise the full entry counts against the EPC.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Optional

from ..crypto.primitives import DIGEST_SIZE
from ..hybster.messages import Reply
from ..sgx.enclave import Enclave


@dataclass
class CacheEntry:
    """One cached read result.

    ``voted`` marks entries corroborated by f+1 distinct Troxies (a
    completed reply vote or a successful fast-read quorum); entries
    installed from the local replica's execution alone stay unvoted.
    The lease read path (docs/READS.md) serves only voted entries — a
    lease removes the per-read quorum, so the entry itself must already
    carry f+1 trust.
    """

    request_digest: bytes
    reply: Reply
    keys: tuple[str, ...]
    voted: bool = False

    @property
    def enclave_bytes(self) -> int:
        return DIGEST_SIZE * 2 + sum(len(k) for k in self.keys) + 16


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    installs: int = 0
    invalidations: int = 0
    evictions: int = 0
    clears: int = 0
    batch_sweeps: int = 0  # up-front whole-batch invalidation passes


class FastReadCache:
    """LRU cache of read results with write invalidation."""

    def __init__(
        self,
        enclave: Optional[Enclave] = None,
        max_entries: int = 65536,
        store_outside: bool = True,
    ):
        if max_entries < 1:
            raise ValueError("max_entries must be positive")
        self.enclave = enclave
        self.max_entries = max_entries
        self.store_outside = store_outside
        self.stats = CacheStats()
        self._entries: OrderedDict[bytes, CacheEntry] = OrderedDict()
        self._key_index: dict[str, set[bytes]] = {}
        # Per-key invalidation epochs: bumped on every write invalidation
        # (whether or not an entry existed), so the voter can tell that a
        # read result crossed a write and must not be (re-)installed —
        # see key_epoch() and TroxyCore._vote.
        self._epoch = 0
        self._key_epoch: dict[str, int] = {}
        if enclave is not None:
            enclave.on_reboot(self.clear)

    def __len__(self) -> int:
        return len(self._entries)

    def _entry_footprint(self, entry: CacheEntry) -> int:
        if self.store_outside:
            return entry.enclave_bytes
        return entry.enclave_bytes + entry.reply.result.size

    def get(self, request_digest: bytes) -> Optional[Reply]:
        """Look up the cached reply for a read request; counts hit/miss."""
        entry = self._entries.get(request_digest)
        if entry is None:
            self.stats.misses += 1
            return None
        self._entries.move_to_end(request_digest)
        self.stats.hits += 1
        return entry.reply

    def get_voted(self, request_digest: bytes) -> Optional[Reply]:
        """Like :meth:`get`, but only returns f+1-corroborated entries
        (the lease serve path must not trust the local replica alone)."""
        entry = self._entries.get(request_digest)
        if entry is None or not entry.voted:
            self.stats.misses += 1
            return None
        self._entries.move_to_end(request_digest)
        self.stats.hits += 1
        return entry.reply

    def promote(self, request_digest: bytes) -> bool:
        """Mark an entry voted after an f+1 corroboration (a completed
        fast-read quorum counts: f remote caches matched the local one)."""
        entry = self._entries.get(request_digest)
        if entry is None:
            return False
        entry.voted = True
        return True

    def peek(self, request_digest: bytes) -> Optional[Reply]:
        """Look up without touching hit/miss statistics or LRU order."""
        entry = self._entries.get(request_digest)
        return None if entry is None else entry.reply

    def install(
        self,
        request_digest: bytes,
        reply: Reply,
        keys: tuple[str, ...],
        voted: bool = False,
    ) -> None:
        """Install an ordered-read result (``voted`` when it carries an
        f+1 reply quorum rather than just the local replica's word)."""
        self.remove(request_digest)
        entry = CacheEntry(request_digest, reply, keys, voted=voted)
        self._entries[request_digest] = entry
        for key in keys:
            self._key_index.setdefault(key, set()).add(request_digest)
        if self.enclave is not None:
            self.enclave.allocate(self._entry_footprint(entry))
        self.stats.installs += 1
        while len(self._entries) > self.max_entries:
            oldest_digest = next(iter(self._entries))
            self.remove(oldest_digest)
            self.stats.evictions += 1

    def remove(self, request_digest: bytes) -> bool:
        entry = self._entries.pop(request_digest, None)
        if entry is None:
            return False
        for key in entry.keys:
            digests = self._key_index.get(key)
            if digests is not None:
                digests.discard(request_digest)
                if not digests:
                    del self._key_index[key]
        if self.enclave is not None:
            self.enclave.free(self._entry_footprint(entry))
        return True

    def invalidate_keys(self, keys) -> int:
        """Remove every entry depending on any of ``keys``.

        Called while processing a write, *before* the write's reply is
        authenticated — the ordering that makes fast reads linearizable.

        The per-key epoch is bumped even when no entry exists: the point
        is to fence *in-flight* read results (a voted read completing
        after this write must not install a pre-write value).
        """
        removed = 0
        self._epoch += 1
        for key in keys:
            self._key_epoch[key] = self._epoch
            for digest in list(self._key_index.get(key, ())):
                if self.remove(digest):
                    removed += 1
        self.stats.invalidations += removed
        return removed

    def key_epoch(self, keys) -> int:
        """Latest invalidation epoch across ``keys`` (0 = never written).

        The voter snapshots this when an ordered read enters the vote and
        compares it again before installing the voted result: if any of
        the read's keys were invalidated in between, a write overtook the
        read in real time and installing the result would resurrect a
        stale entry that the write already purged.
        """
        return max((self._key_epoch.get(key, 0) for key in keys), default=0)

    def invalidate_batch(self, keys) -> int:
        """One up-front sweep over the union of a batch's written keys.

        Called before *any* reply of a batched slot is authenticated, so
        no reply in the batch can become visible while an entry it
        outdates is still servable (docs/BATCHING.md). Each key in the
        union is visited once even when several writes in the batch
        touch it.
        """
        self.stats.batch_sweeps += 1
        return self.invalidate_keys(keys)

    def clear(self) -> None:
        """Drop everything (enclave reboot: volatile state is lost)."""
        if self.enclave is not None:
            for entry in self._entries.values():
                self.enclave.free(self._entry_footprint(entry))
        self._entries.clear()
        self._key_index.clear()
        self.stats.clears += 1
