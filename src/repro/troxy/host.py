"""The untrusted replica-side part of Troxy.

Owns the node's network endpoint: accepts client connections, shuttles
buffers across the enclave boundary, transmits whatever the trusted
core tells it to, and hands protocol traffic to the co-located Hybster
replica. It *cannot* read session keys, forge Troxy authentications, or
alter sealed replies — the fault-injection tests exercise exactly that.
"""

from __future__ import annotations

from typing import Optional

from ..crypto.tls import TlsEndpoint
from ..hybster.messages import Reply, Request
from ..hybster.replica import Replica
from ..hybster.secure import SecureEnvelope
from ..sgx.enclave import Enclave
from ..sim.engine import Environment, Process
from ..sim.network import Network, Node
from .core import Action, TroxyCore
from .messages import (
    BatchedReply,
    CacheEntryReply,
    CacheQuery,
    ForwardedRequest,
    LeaseRequest,
    LeaseRevoke,
    LeaseRevokeAck,
    ShardFastReply,
)

#: ecalls the host registers on the enclave; together with Hybster's
#: three trusted-subsystem certify calls this fills the prototype's
#: 16-entry interface (16 in total).
TROXY_ECALLS = (
    "install_session",
    "handle_client_envelope",
    "answer_cache_query",
    "handle_cache_entry_reply",
    "fast_read_timeout",
    "authenticate_local_reply",
    "authenticate_batch_replies",
    "handle_replica_reply",
    "handle_replica_reply_batch",
    "handle_forwarded_request",
    "handle_shard_fast_reply",
    "install_leases",
    "handle_lease_revoke",
)


class TroxyHost:
    """Untrusted message pump around one TroxyCore."""

    def __init__(
        self,
        env: Environment,
        net: Network,
        node: Node,
        replica: Replica,
        core: TroxyCore,
        enclave: Enclave,
        query_timeout: float = 0.1,
    ):
        self.env = env
        self.net = net
        self.node = node
        self.replica = replica
        self.core = core
        self.enclave = enclave
        self.query_timeout = query_timeout
        # Optional observability plane (repro.obs): brackets each pumped
        # message with a troxy.host span.
        self.obs = None
        for name in TROXY_ECALLS:
            enclave.register_ecall(name, getattr(core, name))
        replica.reply_sink = self._local_reply_sink
        replica.batch_reply_sink = self._local_batch_reply_sink
        if core.leases_enabled:
            # Executed slots hand their lease grants to the enclave, and
            # a leader revoking its own co-located Troxy's lease calls
            # straight into the ecall instead of sending to itself.
            replica.lease_sink = self._lease_sink
            replica.lease_revoke_sink = self._lease_revoke_local
        self._stopped = False
        # Process names are precomputed: one handler process is spawned
        # per inbound message, and building the f-string each time shows
        # up on the message-pump hot path.
        self._handle_name = f"{node.name}:troxy-handle"
        self._qtimer_name = f"{node.name}:qtimer"
        env.process(self._loop(), name=f"{node.name}:troxy-host")

    @property
    def replica_id(self) -> str:
        return self.replica.replica_id

    def stop(self) -> None:
        """Crash the whole server (replica + Troxy)."""
        self._stopped = True
        self.replica.stop()

    def restart(self) -> None:
        """Bring a crashed server back (fault-injection recovery path).

        The co-located replica rejoins via state transfer; the Troxy
        resumes pumping messages. Client TLS sessions installed in the
        enclave survive unless the enclave itself was rebooted.
        """
        self._stopped = False
        self.replica.restart()

    def install_client_session(self, client_id: str, endpoint: TlsEndpoint):
        """Process generator: hand a negotiated session key to the core."""
        yield from self.enclave.ecall(
            "install_session", client_id, endpoint, bytes_in=64
        )

    # -- message pump ----------------------------------------------------------

    def _loop(self):
        inbox = self.node.inbox
        env = self.env
        name = self._handle_name
        while True:
            msg = yield inbox.get()
            if self._stopped:
                continue
            # Without an obs plane the span wrapper is a dead generator
            # frame on every hop; dispatch straight into the handler.
            if self.obs is None:
                Process(env, self._handle_inner(msg.payload, msg.src), name=name)
            else:
                Process(env, self._handle(msg.payload, msg.src), name=name)

    def _handle(self, payload, src: str):
        span = None
        if self.obs is not None:
            span = self.obs.host_begin(self, payload, src)
        try:
            yield from self._handle_inner(payload, src)
        finally:
            if span is not None:
                self.obs.host_end(span)

    def _handle_inner(self, payload, src: str):
        if isinstance(payload, SecureEnvelope) and isinstance(payload.body, Request):
            action = yield from self.enclave.ecall(
                "handle_client_envelope", payload, src,
                bytes_in=payload.wire_size,
            )
            yield from self._act(action)
        elif isinstance(payload, CacheQuery):
            action = yield from self.enclave.ecall(
                "answer_cache_query", payload, bytes_in=payload.wire_size
            )
            yield from self._act(action)
        elif isinstance(payload, CacheEntryReply):
            action = yield from self.enclave.ecall(
                "handle_cache_entry_reply", payload, bytes_in=payload.wire_size
            )
            yield from self._act(action)
        elif isinstance(payload, Reply):
            action = yield from self.enclave.ecall(
                "handle_replica_reply", payload, bytes_in=payload.wire_size
            )
            yield from self._act(action)
        elif isinstance(payload, BatchedReply):
            actions = yield from self.enclave.ecall(
                "handle_replica_reply_batch", payload, bytes_in=payload.wire_size
            )
            for action in actions:
                yield from self._act(action)
        elif isinstance(payload, ForwardedRequest):
            action = yield from self.enclave.ecall(
                "handle_forwarded_request", payload, bytes_in=payload.wire_size
            )
            yield from self._act(action)
        elif isinstance(payload, ShardFastReply):
            action = yield from self.enclave.ecall(
                "handle_shard_fast_reply", payload, bytes_in=payload.wire_size
            )
            yield from self._act(action)
        elif isinstance(payload, LeaseRequest):
            yield from self.replica.handle_lease_request(payload)
        elif isinstance(payload, LeaseRevoke):
            action = yield from self.enclave.ecall(
                "handle_lease_revoke", payload, bytes_in=payload.wire_size
            )
            yield from self._act(action)
        elif isinstance(payload, LeaseRevokeAck):
            yield from self.replica.handle_lease_ack(payload)
        else:
            self.replica.dispatch(payload)

    def _act(self, action: Optional[Action]):
        if action is None:
            return
            yield  # pragma: no cover - generator marker
        if action.lease is not None:
            # Fire-and-forget lease (renewal) request piggybacked on the
            # main action: route it to the current group leader.
            leader = self.replica.leader_id
            if leader == self.replica_id:
                yield from self.replica.handle_lease_request(action.lease)
            else:
                self.net.send(self.node.name, leader, action.lease)
        if action.kind in ("wait", "drop"):
            return
        if action.kind == "reply":
            self.net.send(
                self.node.name, action.dst, action.envelope,
                stream=action.envelope.body.client_id,
            )
        elif action.kind == "order":
            yield from self.replica.submit(action.request)
        elif action.kind == "query":
            for replica_id, query in action.queries:
                self.net.send(self.node.name, replica_id, query)
            self.env.process(self._query_timer(action.nonce), name=self._qtimer_name)
        elif action.kind == "send_cache_reply":
            self.net.send(self.node.name, action.dst, action.queries[0])
        elif action.kind == "send_reply":
            self.net.send(self.node.name, action.dst, action.reply)
        elif action.kind == "send_reply_batch":
            self.net.send(self.node.name, action.dst, action.batch)
        elif action.kind == "forward":
            self.net.send(self.node.name, action.dst, action.forward)
        elif action.kind == "send_shard_reply":
            self.net.send(self.node.name, action.dst, action.shard_reply)
        elif action.kind == "send_lease_ack":
            if action.dst == self.replica_id:
                # Revoking leader is this very replica: deliver locally.
                yield from self.replica.handle_lease_ack(action.lease_ack)
            else:
                self.net.send(self.node.name, action.dst, action.lease_ack)
        elif action.kind == "deliver_local":
            follow_up = yield from self.enclave.ecall(
                "handle_replica_reply", action.reply, bytes_in=action.reply.wire_size
            )
            yield from self._act(follow_up)
        else:
            raise ValueError(f"unknown action kind: {action.kind!r}")

    def _query_timer(self, nonce: int):
        yield self.env.timeout(self.query_timeout)
        if self._stopped:
            return
        action = yield from self.enclave.ecall("fast_read_timeout", nonce)
        yield from self._act(action)

    def _local_reply_sink(self, request: Request, reply: Reply, fresh: bool = True):
        """Installed as the co-located replica's reply sink."""
        action = yield from self.enclave.ecall(
            "authenticate_local_reply", request, reply, fresh,
            bytes_in=reply.wire_size,
        )
        yield from self._act(action)

    def _local_batch_reply_sink(self, pairs):
        """Installed as the co-located replica's batched reply sink: one
        enclave crossing invalidates and authenticates the whole batch."""
        actions = yield from self.enclave.ecall(
            "authenticate_batch_replies", pairs, True,
            bytes_in=sum(reply.wire_size for _request, reply in pairs),
        )
        for action in actions:
            yield from self._act(action)

    # -- lease plumbing (docs/READS.md) -----------------------------------------

    def _lease_sink(self, grants):
        """Installed as the replica's lease sink: an executed slot
        carried grants, hand the ones addressed to this Troxy to the
        enclave (one crossing for the whole slot)."""
        mine = tuple(g for g in grants if g.holder == self.replica_id)
        if not mine:
            return
            yield  # pragma: no cover - generator marker
        action = yield from self.enclave.ecall(
            "install_leases", mine,
            bytes_in=sum(grant.wire_size for grant in mine),
        )
        yield from self._act(action)

    def _lease_revoke_local(self, revoke: LeaseRevoke):
        """Installed as the replica's local revoke sink: the leader is
        revoking its own co-located Troxy's lease — no network hop."""
        action = yield from self.enclave.ecall(
            "handle_lease_revoke", revoke, bytes_in=revoke.wire_size
        )
        yield from self._act(action)
