"""The trusted Troxy core (the code that runs inside the enclave).

This is the relocated client-side BFT library plus the fast-read cache:

* terminates the clients' TLS sessions (session keys never leave the
  enclave);
* translates decrypted client requests into authenticated BFT requests
  (atomically, so the untrusted replica part cannot alter them);
* votes over Troxy-authenticated replies from f+1 replicas;
* runs the fast-read protocol of Fig. 4 with the conflict monitor's
  adaptive total-order switch.

Every public method here is the body of one *ecall*; the untrusted host
(:mod:`repro.troxy.host`) invokes them through the enclave boundary and
acts on the returned :class:`Action` values. The core never touches the
network itself — the prototype's "no ocalls" property.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace
from typing import Callable, Optional

from ..apps.base import Operation
from ..crypto.costs import RuntimeProfile, profile as cost_profile
from ..crypto.keys import KeyRing
from ..crypto.primitives import DIGEST_SIZE
from ..crypto.tls import TlsEndpoint, TlsError
from ..hybster.config import ClusterConfig
from ..hybster.messages import Reply, Request
from ..hybster.secure import SecureEnvelope, open_body, seal_body
from ..sgx.enclave import Enclave
from ..sim.network import Node
from .cache import FastReadCache
from .lease import LeaseTable
from .messages import (
    BatchedReply,
    CacheEntryReply,
    CacheQuery,
    ForwardedRequest,
    LeaseGrant,
    LeaseRequest,
    LeaseRevoke,
    LeaseRevokeAck,
    ShardFastReply,
)
from .monitor import ConflictMonitor


@dataclass(frozen=True)
class Action:
    """What the untrusted host must do after an ecall returns.

    kind is one of:
      "reply"  — send ``envelope`` to ``dst`` (the client's machine);
      "order"  — submit ``request`` to the local replication logic;
      "query"  — send each (replica_id, CacheQuery) in ``queries`` and
                 arm a timeout for ``nonce``;
      "send_reply" — send the authenticated ``reply`` to replica ``dst``;
      "send_reply_batch" — send ``batch`` (a BatchedReply) to replica ``dst``;
      "deliver_local" — feed ``reply`` to the local voter;
      "forward" — send ``forward`` (a ForwardedRequest) to replica ``dst``
                  in the key's owning group (docs/SHARDING.md);
      "send_shard_reply" — send ``shard_reply`` (a ShardFastReply) to the
                  fronting replica ``dst``;
      "send_lease_ack" — send ``lease_ack`` (a LeaseRevokeAck) to the
                  revoking leader ``dst`` (docs/READS.md);
      "wait"   — nothing yet;
      "drop"   — discard (failed authentication etc.).

    ``lease`` optionally piggybacks a LeaseRequest on any action: the
    host forwards it to the current group leader in addition to acting
    on the main kind (fire-and-forget lease acquisition/renewal).
    """

    kind: str
    dst: str = ""
    envelope: Optional[SecureEnvelope] = None
    request: Optional[Request] = None
    reply: Optional[Reply] = None
    batch: Optional[BatchedReply] = None
    queries: tuple = ()
    nonce: int = 0
    reason: str = ""
    forward: Optional[ForwardedRequest] = None
    shard_reply: Optional[ShardFastReply] = None
    lease: Optional[LeaseRequest] = None
    lease_ack: Optional[LeaseRevokeAck] = None


@dataclass
class _Pending:
    """Voter state for one in-flight client request."""

    client_request: Request
    bft_request: Request
    client_machine: str
    votes: dict[str, Reply] = field(default_factory=dict)
    done: bool = False
    #: cache invalidation epoch of the read's keys when the request
    #: entered the voter; a higher epoch at quorum time means a write
    #: overtook this read and its result must not be installed.
    install_epoch: int = 0
    #: the key lives in another shard group (docs/SHARDING.md): votes
    #: still converge here, but the result is never installed into the
    #: local cache — a key's cache entries and invalidation epochs stay
    #: confined to its owning group.
    foreign: bool = False


@dataclass
class _FastRead:
    """State of one outstanding fast-read quorum check."""

    client_request: Request
    bft_request: Request
    client_machine: str
    local_reply: Reply
    expected: set[str] = field(default_factory=set)
    failed: bool = False
    #: non-empty for a *forwarded* read resolved on behalf of another
    #: group's fronting Troxy: on quorum success the verdict travels
    #: back as a ShardFastReply instead of a sealed client reply, and on
    #: conflict/timeout the fallback is plain ordering (the voter state
    #: lives at the fronting Troxy, not here).
    origin: str = ""


@dataclass
class TroxyStats:
    client_requests: int = 0
    fast_read_attempts: int = 0
    fast_read_hits: int = 0
    fast_read_conflicts: int = 0
    fast_read_timeouts: int = 0
    ordered_requests: int = 0
    replies_voted: int = 0
    invalid_messages: int = 0
    cache_queries_answered: int = 0
    pending_evicted: int = 0
    # Batched agreement (docs/BATCHING.md): whole-batch authenticate
    # ecalls and the replies carried by them, plus inbound vote bundles
    # verified with one aggregate MAC.
    reply_batches: int = 0
    batched_replies: int = 0
    vote_batches: int = 0
    batched_votes: int = 0
    #: voted read results discarded instead of installed because a write
    #: invalidated their keys while the vote was in flight.
    stale_installs_skipped: int = 0
    replay_installs_skipped: int = 0
    # Sharded routing (docs/SHARDING.md): requests handed to / received
    # from other groups' Troxies, post-cut-over stragglers passed along,
    # writes rejected during a migration freeze, and fast-read verdicts
    # attested across groups.
    forwarded_out: int = 0
    forwarded_in: int = 0
    reforwards: int = 0
    frozen_rejects: int = 0
    shard_fast_replies_sent: int = 0
    shard_fast_replies_accepted: int = 0
    # Lease reads (docs/READS.md): local serves under a valid lease,
    # reads that held a lease but lacked an f+1-corroborated entry
    # (ordered instead), requests/renewals sent to the leader, grant
    # install outcomes at this holder, and revocations processed. A
    # "fenced" grant is one the sealed lease counter refused — the
    # rollback/replay case the counter exists to kill.
    lease_read_hits: int = 0
    lease_read_uncorroborated: int = 0
    lease_requests_sent: int = 0
    lease_grants_installed: int = 0
    lease_grants_rejected: int = 0
    lease_grants_fenced: int = 0
    lease_revocations: int = 0


class TroxyCore:
    """Trusted proxy logic for one replica."""

    def __init__(
        self,
        node: Node,
        enclave: Enclave,
        replica_id: str,
        config: ClusterConfig,
        keyring: KeyRing,
        rng,
        runtime: str = "cpp_sgx",
        fast_reads: bool = True,
        cache: Optional[FastReadCache] = None,
        monitor: Optional[ConflictMonitor] = None,
        keys_fn: Optional[Callable[[Operation], tuple]] = None,
        router=None,
        counters=None,
    ):
        self.node = node
        self.enclave = enclave
        self.replica_id = replica_id
        self.config = config
        self.keyring = keyring
        self.rng = rng
        self.profile: RuntimeProfile = cost_profile(runtime)
        self.fast_reads = fast_reads
        self.cache = cache if cache is not None else FastReadCache(enclave)
        self.monitor = monitor or ConflictMonitor()
        self.keys_fn = keys_fn or (lambda op: (op.key,))
        # Shared ShardRouter in sharded deployments (docs/SHARDING.md);
        # None means unsharded: every key is local and no routing
        # decision is ever consulted.
        self.router = router
        # Hot-path cost scalars: every client request charges several of
        # these, and chasing profile -> OpCost -> cost() per charge is
        # measurable (see docs/PERFORMANCE.md). Inlined expressions keep
        # the exact float-operation order of OpCost.cost().
        prof = self.profile
        self._hash_base = prof.hash.base
        self._hash_per_byte = prof.hash.per_byte
        self._aead_base = prof.aead.base
        self._aead_per_byte = prof.aead.per_byte
        self._mac_base = prof.mac.base
        self._mac_per_byte = prof.mac.per_byte
        self._mac_cost_digest = prof.mac.cost(DIGEST_SIZE)
        self._hash_cost_64 = prof.hash.cost(64)
        self.stats = TroxyStats()
        # Optional observability plane (repro.obs): cache/vote spans and
        # fast-read outcome events.
        self.obs = None
        self._sessions: dict[str, TlsEndpoint] = {}
        self._pending: dict[tuple[str, int], _Pending] = {}
        self._fast_reads: dict[int, _FastRead] = {}
        self._nonces = itertools.count(1)
        self._instance_key = keyring.troxy_instance(replica_id)
        # Read leases (docs/READS.md): the lease table lives inside the
        # enclave and fences installs with the sealed ``troxy-lease``
        # counter; ``counters`` is this enclave's trusted counter
        # subsystem. Leases engage only when both the config enables
        # them and a counter subsystem is wired — otherwise the path is
        # dormant and the wire format is byte-identical to pre-lease.
        self.counters = counters
        self.leases_enabled = bool(config.leases.enabled and counters is not None)
        self.lease_table = LeaseTable(counters) if self.leases_enabled else None
        #: per-key timestamp of the last LeaseRequest, for backoff.
        self._lease_requested: dict[str, float] = {}
        enclave.on_reboot(self._on_reboot)

    def _on_reboot(self) -> None:
        # Volatile state is lost; clients re-establish sessions and
        # retransmit. (The cache registers its own reboot hook.) The
        # lease table dies with the enclave while its sealed counter
        # survives — rollback can never resurrect a lease.
        self._sessions.clear()
        self._pending.clear()
        self._fast_reads.clear()
        self._lease_requested.clear()
        if self.lease_table is not None:
            self.lease_table.clear()

    # -- ecall: session management ------------------------------------------------

    def install_session(self, client_id: str, endpoint: TlsEndpoint) -> None:
        """Store a freshly negotiated session key (ecall #1)."""
        self._sessions[client_id] = endpoint

    # -- ecall: client request intake ------------------------------------------------

    def handle_client_envelope(self, envelope: SecureEnvelope, client_machine: str):
        """Decrypt, verify, and route one client request (ecall #2)."""
        self.stats.client_requests += 1
        body = envelope.body
        if not isinstance(body, Request):
            self.stats.invalid_messages += 1
            return Action("drop", reason="not a request")
        endpoint = self._sessions.get(body.client_id)
        if endpoint is None:
            self.stats.invalid_messages += 1
            return Action("drop", reason="no session")
        yield from self.node.compute(self._aead_base + self._aead_per_byte * envelope.wire_size)
        try:
            open_body(endpoint, envelope)
        except TlsError:
            self.stats.invalid_messages += 1
            return Action("drop", reason="bad record")
        # Atomically translate into an authenticated BFT request with this
        # replica as the reply convergence point.
        bft_request = Request(
            client_id=body.client_id,
            request_id=body.request_id,
            op=body.op,
            origin=self.replica_id,
            unordered=False,
        )
        yield from self.node.charge(
            self._hash_base + self._hash_per_byte * bft_request.wire_size,
            self._mac_cost_digest,
        )
        if self.router is not None:
            decision = self.router.route(bft_request.op, self.replica_id)
            if decision.kind == "frozen":
                # The key's ring slice is mid-migration: reject the write
                # and let the legacy client's retransmission land it
                # after the cut-over (docs/SHARDING.md).
                self.stats.frozen_rejects += 1
                return Action("drop", reason="key frozen for shard migration")
            if decision.kind == "forward":
                return (
                    yield from self._forward(
                        body, bft_request, client_machine, decision.target
                    )
                )
        lease_request = None
        if self.leases_enabled and bft_request.op.is_read:
            served = yield from self._try_lease_read(body, bft_request, client_machine)
            if served is not None:
                return served
            lease_request = yield from self._maybe_lease_request(bft_request.op)
        if (
            self.fast_reads
            and bft_request.op.is_read
            and self.monitor.should_try_fast_read()
        ):
            action = yield from self._try_fast_read(body, bft_request, client_machine)
            if action is not None:
                return self._with_lease_request(action, lease_request)
        return self._with_lease_request(
            self._order(body, bft_request, client_machine), lease_request
        )

    def _forward(
        self,
        client_request: Request,
        bft_request: Request,
        client_machine: str,
        target: str,
    ):
        """Hand a foreign-key request to its owning group while staying
        the reply convergence point (docs/SHARDING.md). The voter state
        is registered exactly as for a local ordering — replies from the
        owning group's replicas converge on ``origin`` (this replica) —
        but flagged foreign so the result is never installed locally."""
        self.stats.forwarded_out += 1
        key = (bft_request.client_id, bft_request.request_id)
        self._pending[key] = _Pending(
            client_request, bft_request, client_machine, foreign=True
        )
        while len(self._pending) > self.MAX_PENDING:
            self._pending.pop(next(iter(self._pending)))
            self.stats.pending_evicted += 1
        yield from self.node.compute(self._mac_cost_digest)
        tag = self._instance_key.sign(
            ForwardedRequest.auth_input(bft_request, self.replica_id)
        )
        if self.obs is not None:
            self.obs.forward_begin(self, bft_request, target)
        return Action(
            "forward",
            dst=target,
            forward=ForwardedRequest(bft_request, self.replica_id, tag),
        )

    #: upper bound on in-flight voter records; abandoned entries (e.g.
    #: clients that failed over elsewhere) are evicted oldest-first.
    MAX_PENDING = 100_000

    def _order(self, client_request: Request, bft_request: Request, client_machine: str) -> Action:
        self.stats.ordered_requests += 1
        key = (bft_request.client_id, bft_request.request_id)
        pending = _Pending(client_request, bft_request, client_machine)
        if self.fast_reads and bft_request.op.is_read:
            pending.install_epoch = self.cache.key_epoch(
                self.keys_fn(bft_request.op)
            )
        self._pending[key] = pending
        while len(self._pending) > self.MAX_PENDING:
            self._pending.pop(next(iter(self._pending)))
            self.stats.pending_evicted += 1
        return Action("order", request=bft_request)

    def _cache_key(self, op: Operation) -> bytes:
        # Cache identity is the *operation*, shared across clients.
        return op.digest()

    # -- lease read path (docs/READS.md) ---------------------------------------------

    @staticmethod
    def _with_lease_request(action: Action, lease_request) -> Action:
        """Piggyback a fire-and-forget LeaseRequest on an action."""
        if lease_request is None:
            return action
        return replace(action, lease=lease_request)

    def _try_lease_read(
        self,
        client_request: Request,
        bft_request: Request,
        client_machine: str,
        origin: str = "",
    ):
        """Serve a read locally under a valid lease, with no probe round.

        Returns a final Action when the lease covers the read: either
        the served result (cache hit on an f+1-corroborated entry) or an
        ordering action (entry missing or uncorroborated — the ordered
        read warms the cache to voted status). Returns None when the
        keys are not all leased; the caller then takes the normal voted
        path and piggybacks a lease acquisition request.

        Safety: the grant activated at this enclave only when the
        carrying slot *executed*, after every earlier write to the key
        had already invalidated the cache; the leader parks any later
        write until this lease is revoked-and-acked or has expired on
        the shared clock. A surviving voted entry therefore reflects the
        last committed write for as long as the lease is valid.
        """
        keys = self.keys_fn(bft_request.op)
        now = self.node.env.now
        if not self.lease_table.covers(keys, now):
            return None
        yield from self.node.compute(
            self._hash_base + self._hash_per_byte * bft_request.op.size
        )
        cached = self.cache.get_voted(self._cache_key(bft_request.op))
        renewal = yield from self._maybe_lease_request(bft_request.op)
        if cached is None:
            # Leased but nothing trustworthy to serve: order the read.
            # Never serve a result only the local replica vouches for —
            # the lease removes the per-read quorum, so the entry itself
            # must already carry f+1 trust (vote install or promotion).
            self.stats.lease_read_uncorroborated += 1
            if self.obs is not None:
                self.obs.lease_result(self, client_request, "cold")
            if origin:
                self.stats.ordered_requests += 1
                return self._with_lease_request(
                    Action("order", request=bft_request), renewal
                )
            return self._with_lease_request(
                self._order(client_request, bft_request, client_machine), renewal
            )
        if self.cache.store_outside:
            yield from self.node.compute(
                self._hash_base + self._hash_per_byte * cached.result.size
            )
        else:
            yield from self.enclave.touch(cached.result.size)
        self.stats.lease_read_hits += 1
        if self.obs is not None:
            self.obs.lease_result(self, client_request, "hit")
        if origin:
            action = yield from self._attest_lease_shard_reply(
                bft_request, cached, origin
            )
            return self._with_lease_request(action, renewal)
        envelope = yield from self._seal_client_reply(
            client_request, cached.result, cached.request_digest
        )
        if envelope is None:
            return Action("drop", reason="no client session")
        return self._with_lease_request(
            Action("reply", dst=client_machine, envelope=envelope), renewal
        )

    def _maybe_lease_request(self, op: Operation):
        """Build one LeaseRequest if any of the op's keys needs a lease
        (missing, or within the renewal margin of expiry) and its
        per-key backoff allows it. Fire-and-forget: the host relays it
        to the current group leader."""
        now = self.node.env.now
        cfg = self.config.leases
        for key in self.keys_fn(op):
            lease = self.lease_table.get(key)
            if lease is not None and lease.expiry - now > cfg.renew_margin:
                continue  # comfortably covered
            last = self._lease_requested.get(key)
            if last is not None and now - last < cfg.request_backoff:
                continue
            self._lease_requested[key] = now
            yield from self.node.compute(self._mac_cost_digest)
            tag = self._instance_key.sign(
                LeaseRequest.auth_input(key, self.replica_id)
            )
            self.stats.lease_requests_sent += 1
            return LeaseRequest(key, self.replica_id, tag)
        return None

    def _attest_lease_shard_reply(self, bft_request: Request, cached, origin: str):
        """Lease-serve a *forwarded* read: this enclave vouches for the
        leased result to the fronting Troxy, exactly like a completed
        fast-read quorum (the lease carries the same f+1 trust)."""
        reply = Reply(
            replica_id=self.replica_id,
            client_id=bft_request.client_id,
            request_id=bft_request.request_id,
            result=cached.result,
            request_digest=cached.request_digest,
        )
        yield from self.node.compute(self._mac_base + self._mac_per_byte * reply.wire_size)
        tag = self._instance_key.sign(
            ShardFastReply.auth_input(reply, self.replica_id)
        )
        self.stats.shard_fast_replies_sent += 1
        return Action(
            "send_shard_reply",
            dst=origin,
            shard_reply=ShardFastReply(reply, self.replica_id, tag),
        )

    # -- ecall: lease maintenance (docs/READS.md) -------------------------------------

    def install_leases(self, grants):
        """Adopt the grants an executed slot carried for this Troxy
        (ecall #12). Called by the host's lease sink *after* the slot's
        execution — every earlier write has already invalidated the
        cache — and each install is fenced by the sealed lease counter,
        so a rebooted (rolled-back) enclave rejects replayed grants."""
        if self.lease_table is None:
            return None
        now = self.node.env.now
        for grant in grants:
            yield from self.node.compute(self._mac_cost_digest)
            granter_key = self.keyring.troxy_instance(grant.granter)
            if not granter_key.verify(
                LeaseGrant.auth_input(
                    grant.key, grant.holder, grant.granter, grant.epoch, grant.expiry
                ),
                grant.tag,
            ):
                self.stats.invalid_messages += 1
                continue
            outcome = self.lease_table.install(grant, now)
            if outcome == "installed":
                self.stats.lease_grants_installed += 1
                self._lease_requested.pop(grant.key, None)
            elif outcome == "fenced":
                self.stats.lease_grants_fenced += 1
            else:
                self.stats.lease_grants_rejected += 1
            if self.obs is not None:
                self.obs.lease_install(self, grant, outcome)
        return None

    def handle_lease_revoke(self, revoke: LeaseRevoke):
        """A leader wants to write under our lease (ecall #13): drop the
        lease, fence its epoch, bump the key's invalidation epoch, and
        acknowledge so the parked write can be ordered.

        The invalidation epoch bump is the shared-epoch fix: lease
        revocation and write invalidation use the *same* per-key epoch
        source, so a voted read that entered the vote before this revoke
        can no longer install its result afterwards — otherwise a
        lagging vote could resurrect the entry the revoke retired just
        as the parked write commits."""
        yield from self.node.compute(self._mac_cost_digest)
        sender_key = self.keyring.troxy_instance(revoke.sender)
        if not sender_key.verify(
            LeaseRevoke.auth_input(revoke.key, revoke.epoch, revoke.holder, revoke.sender),
            revoke.tag,
        ):
            self.stats.invalid_messages += 1
            return Action("drop", reason="bad lease revoke tag")
        if revoke.holder != self.replica_id:
            self.stats.invalid_messages += 1
            return Action("drop", reason="lease revoke for another holder")
        self.stats.lease_revocations += 1
        if self.lease_table is not None:
            self.lease_table.revoke(revoke.key, revoke.epoch)
        self.cache.invalidate_keys((revoke.key,))
        if self.obs is not None:
            self.obs.lease_revoked(self, revoke.key)
        yield from self.node.compute(self._mac_cost_digest)
        tag = self._instance_key.sign(
            LeaseRevokeAck.auth_input(revoke.key, revoke.epoch, self.replica_id)
        )
        return Action(
            "send_lease_ack",
            dst=revoke.sender,
            lease_ack=LeaseRevokeAck(revoke.key, revoke.epoch, self.replica_id, tag),
        )

    def _try_fast_read(
        self,
        client_request: Request,
        bft_request: Request,
        client_machine: str,
        origin: str = "",
    ):
        """Fig. 4, check_cache: local lookup then f remote probes.

        ``origin`` is set for forwarded reads resolved on behalf of
        another group's fronting Troxy (docs/SHARDING.md): the probes and
        quorum comparison are identical, only the outcome delivery
        differs (ShardFastReply / plain ordering instead of a sealed
        client reply / local voter registration)."""
        self.stats.fast_read_attempts += 1
        span = None
        if self.obs is not None:
            span = self.obs.cache_begin(self, client_request)
        outcome = "miss"
        try:
            yield from self.node.compute(self._hash_base + self._hash_per_byte * bft_request.op.size)
            cached = self.cache.get(self._cache_key(bft_request.op))
            if cached is None:
                self.monitor.record_miss()
                return None  # cache miss: order as any other request
            if self.cache.store_outside:
                # The reply body lives encrypted in untrusted memory; validate
                # it against the digest kept inside the enclave (Section V-A).
                yield from self.node.compute(self._hash_base + self._hash_per_byte * cached.result.size)
            else:
                # Stored in enclave memory: touching it may page against the
                # EPC limit.
                yield from self.enclave.touch(cached.result.size)
            nonce = next(self._nonces)
            replicas = [r for r in self.config.replica_ids if r != self.replica_id]
            chosen = self.rng.sample(replicas, self.config.f)
            queries = []
            request_digest = self._cache_key(bft_request.op)
            for replica_id in chosen:
                yield from self.node.compute(self._mac_cost_digest)
                tag = self._instance_key.sign(
                    CacheQuery.auth_input(request_digest, self.replica_id, nonce)
                )
                queries.append(
                    (replica_id, CacheQuery(request_digest, self.replica_id, nonce, tag))
                )
            self._fast_reads[nonce] = _FastRead(
                client_request, bft_request, client_machine, cached,
                expected=set(chosen), origin=origin,
            )
            outcome = "probe"
            return Action("query", queries=tuple(queries), nonce=nonce)
        finally:
            if span is not None:
                self.obs.cache_end(span, outcome)

    # -- ecall: remote cache protocol ---------------------------------------------------

    def answer_cache_query(self, query: CacheQuery):
        """Fig. 4, get_remote_cache_entry (ecall #3)."""
        yield from self.node.compute(self._mac_cost_digest)
        asker_key = self.keyring.troxy_instance(query.asker)
        if not asker_key.verify(
            CacheQuery.auth_input(query.request_digest, query.asker, query.nonce), query.tag
        ):
            self.stats.invalid_messages += 1
            return Action("drop", reason="bad cache query tag")
        self.stats.cache_queries_answered += 1
        cached = self.cache.peek(query.request_digest)
        reply_digest = None if cached is None else cached.result_digest()
        yield from self.node.compute(self._mac_cost_digest)
        tag = self._instance_key.sign(
            CacheEntryReply.auth_input(
                query.request_digest, reply_digest, self.replica_id, query.nonce
            )
        )
        answer = CacheEntryReply(
            query.request_digest, reply_digest, self.replica_id, query.nonce, tag
        )
        return Action("send_cache_reply", dst=query.asker, reply=None, queries=(answer,))

    def handle_cache_entry_reply(self, answer: CacheEntryReply):
        """Fig. 4, the quorum comparison at the voting Troxy (ecall #4)."""
        state = self._fast_reads.get(answer.nonce)
        if state is None:
            return Action("wait")  # late or replayed: nothing outstanding
        yield from self.node.compute(self._mac_cost_digest)
        responder_key = self.keyring.troxy_instance(answer.responder)
        if not responder_key.verify(
            CacheEntryReply.auth_input(
                answer.request_digest, answer.reply_digest, answer.responder, answer.nonce
            ),
            answer.tag,
        ):
            self.stats.invalid_messages += 1
            return Action("drop", reason="bad cache reply tag")
        if answer.responder not in state.expected:
            return Action("wait")
        state.expected.discard(answer.responder)
        local_digest = state.local_reply.result_digest()
        matches = (
            answer.request_digest == self._cache_key(state.bft_request.op)
            and answer.reply_digest == local_digest
        )
        if not matches:
            state.failed = True
            del self._fast_reads[answer.nonce]
            self.monitor.record_conflict()
            self.stats.fast_read_conflicts += 1
            if self.obs is not None:
                self.obs.fast_read_result(self, state.client_request, "conflict")
            # Entry may be outdated: drop it and order the read instead.
            self.cache.remove(self._cache_key(state.bft_request.op))
            return self._fast_read_fallback(state)
        if state.expected:
            return Action("wait")
        # All f remote caches match the local one: fast read succeeds.
        del self._fast_reads[answer.nonce]
        self.monitor.record_fast_success()
        self.stats.fast_read_hits += 1
        # f remote caches corroborated the local entry — that is an f+1
        # agreement, so the entry now carries enough trust for the lease
        # serve path (docs/READS.md).
        self.cache.promote(self._cache_key(state.bft_request.op))
        if self.obs is not None:
            self.obs.fast_read_result(self, state.client_request, "hit")
        if state.origin:
            return (yield from self._attest_shard_fast_reply(state))
        envelope = yield from self._seal_client_reply(
            state.client_request, state.local_reply.result, state.local_reply.request_digest
        )
        if envelope is None:
            return Action("drop", reason="no client session")
        return Action("reply", dst=state.client_machine, envelope=envelope)

    def fast_read_timeout(self, nonce: int):
        """Unresponsive remote Troxy: fall back to ordering (ecall #5)."""
        state = self._fast_reads.pop(nonce, None)
        if state is None or state.failed:
            return Action("wait")
        self.monitor.record_conflict()
        self.stats.fast_read_timeouts += 1
        if self.obs is not None:
            self.obs.fast_read_result(self, state.client_request, "timeout")
        return self._fast_read_fallback(state)

    def _fast_read_fallback(self, state: _FastRead) -> Action:
        """Order the read after a failed fast path. For a forwarded read
        the voter state lives at the fronting Troxy (the request's
        ``origin``), so there is nothing to register here — the replicas'
        replies converge there through the normal reply path."""
        if state.origin:
            self.stats.ordered_requests += 1
            return Action("order", request=state.bft_request)
        return self._order(state.client_request, state.bft_request, state.client_machine)

    def _attest_shard_fast_reply(self, state: _FastRead):
        """Package a completed fast-read quorum for the fronting Troxy
        (docs/SHARDING.md): this enclave vouches that f+1 caches of the
        owning group agreed on the result."""
        reply = Reply(
            replica_id=self.replica_id,
            client_id=state.bft_request.client_id,
            request_id=state.bft_request.request_id,
            result=state.local_reply.result,
            request_digest=state.local_reply.request_digest,
        )
        yield from self.node.compute(self._mac_base + self._mac_per_byte * reply.wire_size)
        tag = self._instance_key.sign(
            ShardFastReply.auth_input(reply, self.replica_id)
        )
        self.stats.shard_fast_replies_sent += 1
        return Action(
            "send_shard_reply",
            dst=state.origin,
            shard_reply=ShardFastReply(reply, self.replica_id, tag),
        )

    # -- ecall: cross-shard routing (docs/SHARDING.md) --------------------------------

    def handle_forwarded_request(self, fwd: ForwardedRequest):
        """A fronting Troxy handed us a request whose key this group
        owns (ecall #10). Verify the forwarder's Troxy authentication,
        then treat the request like a locally translated one — fast-read
        attempt for reads, ordering otherwise — except that the voter
        state stays at the fronting Troxy (the request's ``origin``)."""
        request = fwd.request
        if not isinstance(request, Request):
            self.stats.invalid_messages += 1
            return Action("drop", reason="not a forwarded request")
        yield from self.node.compute(self._mac_cost_digest)
        forwarder_key = self.keyring.troxy_instance(fwd.forwarder)
        if not forwarder_key.verify(
            ForwardedRequest.auth_input(request, fwd.forwarder), fwd.tag
        ):
            self.stats.invalid_messages += 1
            return Action("drop", reason="bad forward tag")
        self.stats.forwarded_in += 1
        if self.obs is not None:
            self.obs.forward_received(self, request)
        if self.router is not None:
            decision = self.router.route(request.op, self.replica_id)
            if decision.kind == "frozen":
                self.stats.frozen_rejects += 1
                return Action("drop", reason="key frozen for shard migration")
            if decision.kind == "forward":
                # Straggler that crossed a ring cut-over in flight: pass
                # it to the new owner. The original origin is preserved,
                # so the vote stream still converges at the fronting
                # Troxy wherever the request finally orders.
                self.stats.reforwards += 1
                yield from self.node.compute(self._mac_cost_digest)
                tag = self._instance_key.sign(
                    ForwardedRequest.auth_input(request, self.replica_id)
                )
                if self.obs is not None:
                    self.obs.forward_begin(self, request, decision.target)
                return Action(
                    "forward",
                    dst=decision.target,
                    forward=ForwardedRequest(request, self.replica_id, tag),
                )
        lease_request = None
        if self.leases_enabled and request.op.is_read:
            served = yield from self._try_lease_read(
                request, request, "", origin=request.origin
            )
            if served is not None:
                return served
            lease_request = yield from self._maybe_lease_request(request.op)
        if (
            self.fast_reads
            and request.op.is_read
            and self.monitor.should_try_fast_read()
        ):
            action = yield from self._try_fast_read(
                request, request, "", origin=request.origin
            )
            if action is not None:
                return self._with_lease_request(action, lease_request)
        self.stats.ordered_requests += 1
        return self._with_lease_request(Action("order", request=request), lease_request)

    def handle_shard_fast_reply(self, sfr: ShardFastReply):
        """The owning group's attested fast-read verdict for a request
        we forwarded (ecall #11). One Troxy enclave vouching for a
        completed f+1 cache agreement carries the same trust as a
        CacheEntryReply — mutually attested enclaves under the group
        secret — so the verdict is final: seal it for the client."""
        reply = sfr.reply
        if not isinstance(reply, Reply):
            self.stats.invalid_messages += 1
            return Action("drop", reason="not a shard fast reply")
        yield from self.node.compute(self._mac_base + self._mac_per_byte * reply.wire_size)
        responder_key = self.keyring.troxy_instance(sfr.responder)
        if not responder_key.verify(
            ShardFastReply.auth_input(reply, sfr.responder), sfr.tag
        ):
            self.stats.invalid_messages += 1
            return Action("drop", reason="bad shard fast reply tag")
        key = (reply.client_id, reply.request_id)
        pending = self._pending.get(key)
        if pending is None or pending.done or not pending.foreign:
            return Action("wait")  # late, replayed, or fallback already voted
        pending.done = True
        del self._pending[key]
        self.stats.shard_fast_replies_accepted += 1
        # Foreign key: never installed into the local cache — its cache
        # entries and invalidation epochs live in the owning group only.
        envelope = yield from self._seal_client_reply(
            pending.client_request, reply.result, reply.request_digest
        )
        if envelope is None:
            return Action("drop", reason="no client session")
        return Action("reply", dst=pending.client_machine, envelope=envelope)

    # -- ecall: reply path ----------------------------------------------------------------

    def authenticate_local_reply(self, request: Request, reply: Reply, fresh: bool = True):
        """Invalidate-and-authenticate for the local replica's reply
        (ecall #6). The invalidation happening *before* the
        authentication is what entangles cache maintenance with the
        protocol (Section IV-B).

        ``fresh`` is False when the replica re-emits a reply out of its
        duplicate-suppression cache (client retransmission after a
        failover). Replays carry the result from the request's original
        execution position, so installing them would resurrect cache
        entries that later writes already invalidated — a replayed read
        therefore never (re-)installs. Invalidation stays unconditional:
        it is idempotent and only ever conservative."""
        if not request.op.is_read:
            keys = self.keys_fn(request.op)
            yield from self.node.compute(self._hash_cost_64 * max(1, len(keys)))
            self.cache.invalidate_keys(keys)
        elif self.fast_reads and fresh:
            # Install the local replica's result for this ordered read. A
            # faulty local replica can only poison *this* cache; the fast-
            # read path requires f+1 matching entries from distinct
            # Troxies, so a poisoned entry can never reach a client.
            yield from self.node.compute(self._hash_base + self._hash_per_byte * request.op.size)
            self.cache.install(
                self._cache_key(request.op), reply, self.keys_fn(request.op)
            )
        yield from self.node.compute(self._mac_base + self._mac_per_byte * reply.wire_size)
        authenticated = Reply(
            replica_id=reply.replica_id,
            client_id=reply.client_id,
            request_id=reply.request_id,
            result=reply.result,
            request_digest=reply.request_digest,
            view=reply.view,
            fresh=fresh,
        )
        # Sign the fresh-stamped bytes: the untrusted host must not be
        # able to relabel a replayed reply as a fresh execution.
        tag = self._instance_key.sign(authenticated.auth_bytes())
        authenticated = replace(authenticated, troxy_tag=tag)
        if request.origin == self.replica_id:
            # Local reply feeding the local voter: fold the vote into this
            # ecall instead of crossing the boundary a second time
            # (transition minimization, Section V-A).
            return (yield from self._vote(authenticated))
        return Action("send_reply", dst=request.origin, reply=authenticated)

    def authenticate_batch_replies(self, pairs, fresh: bool = True):
        """Invalidate-and-authenticate for one executed *batch* of the
        local replica (ecall #8), one enclave crossing for the whole
        batch instead of one per reply.

        Freshness across the batch (Section IV-B extended to batched
        agreement, docs/BATCHING.md): every key written anywhere in the
        batch is invalidated in one up-front sweep, before *any* reply
        of the batch is authenticated — so no reply can become visible
        while a cache entry it outdates is still servable. Within the
        batch, installs and invalidations then replay in execution
        order, so a read ordered before a write to the same key in the
        same batch cannot resurrect a stale entry.

        Authentication is amortized along with the crossing: replies
        bound for the *local* voter are counted inside this same ecall
        (no per-reply tag needed — they never leave the enclave), and
        replies bound for each remote origin are bundled into one
        :class:`BatchedReply` authenticated with a single MAC over the
        bundle, instead of one MAC and one message per reply.

        Returns the local voter's Actions (in batch order) followed by
        one "send_reply_batch" Action per remote origin.
        """
        self.stats.reply_batches += 1
        self.stats.batched_replies += len(pairs)
        union: set = set()
        for request, _reply in pairs:
            if not request.op.is_read:
                union.update(self.keys_fn(request.op))
        if union:
            yield from self.node.compute(self._hash_cost_64 * len(union))
            self.cache.invalidate_batch(union)
        actions = []
        outbound: dict[str, list[Reply]] = {}
        for request, reply in pairs:
            if not request.op.is_read:
                # The up-front sweep already charged and cleared these
                # keys; this pass only kills entries installed by reads
                # ordered earlier in this same batch (idempotent).
                self.cache.invalidate_keys(self.keys_fn(request.op))
            elif self.fast_reads and fresh:
                yield from self.node.compute(
                    self._hash_base + self._hash_per_byte * request.op.size
                )
                self.cache.install(
                    self._cache_key(request.op), reply, self.keys_fn(request.op)
                )
            if request.origin == self.replica_id:
                actions.append((yield from self._vote(reply)))
            else:
                outbound.setdefault(request.origin, []).append(reply)
        for origin, replies in outbound.items():
            bundle_bytes = sum(reply.wire_size for reply in replies)
            yield from self.node.compute(self._mac_base + self._mac_per_byte * bundle_bytes)
            tag = self._instance_key.sign(BatchedReply.auth_input(self.replica_id, replies))
            actions.append(
                Action(
                    "send_reply_batch",
                    dst=origin,
                    batch=BatchedReply(self.replica_id, tuple(replies), tag),
                )
            )
        return tuple(actions)

    def handle_replica_reply_batch(self, batch: BatchedReply):
        """The server-side voter for one reply bundle (ecall #9): verify
        the single bundle MAC, then count every carried vote — one
        enclave crossing and one MAC check for the whole bundle."""
        self.stats.vote_batches += 1
        self.stats.batched_votes += len(batch.replies)
        yield from self.node.compute(self._mac_base + self._mac_per_byte * batch.wire_size)
        sender_key = self.keyring.troxy_instance(batch.sender)
        if not sender_key.verify(
            BatchedReply.auth_input(batch.sender, batch.replies), batch.tag
        ):
            self.stats.invalid_messages += 1
            return (Action("drop", reason="bad batched reply tag"),)
        actions = []
        for reply in batch.replies:
            if reply.replica_id != batch.sender:
                # The bundle tag only vouches for the sender's own
                # replies; a relayed vote under another replica id would
                # let one faulty Troxy stuff the ballot.
                self.stats.invalid_messages += 1
                actions.append(Action("drop", reason="vote for foreign replica id"))
                continue
            actions.append((yield from self._vote(reply)))
        return tuple(actions)

    def handle_replica_reply(self, reply: Reply):
        """The server-side voter (ecall #7): verify the Troxy
        authentication and count the vote; on f+1 matching replies seal
        the result for the client."""
        if reply.troxy_tag is None:
            self.stats.invalid_messages += 1
            return Action("drop", reason="missing troxy tag")
        yield from self.node.compute(self._mac_base + self._mac_per_byte * reply.wire_size)
        sender_key = self.keyring.troxy_instance(reply.replica_id)
        if not sender_key.verify(reply.auth_bytes(), reply.troxy_tag):
            self.stats.invalid_messages += 1
            return Action("drop", reason="bad troxy tag")
        return (yield from self._vote(reply))

    def _vote(self, reply: Reply):
        """Count one authenticated vote (trusted-internal)."""
        span = None
        if self.obs is not None:
            span = self.obs.vote_begin(self, reply)
        outcome = "stale"
        try:
            key = (reply.client_id, reply.request_id)
            pending = self._pending.get(key)
            if pending is None or pending.done:
                return Action("wait")
            pending.votes[reply.replica_id] = reply
            matching = [
                vote for vote in pending.votes.values() if vote.matches(reply)
            ]
            if len(matching) < self.config.reply_quorum:
                outcome = "wait"
                return Action("wait")
            outcome = "decided"
            pending.done = True
            del self._pending[key]
            self.stats.replies_voted += 1
            if (
                self.fast_reads
                and pending.bft_request.op.is_read
                and not pending.foreign
            ):
                # Install the *voted* ordered-read result — unless a
                # write to any of its keys was invalidated while the
                # quorum was forming. A late vote completing after such a
                # write would otherwise resurrect the exact entry the
                # write purged, and f other lagging Troxies could then
                # corroborate the stale value into a fast read.
                #
                # A quorum of *replayed* replies (duplicate-suppression
                # answers to a client retransmission) is decided but
                # never installed: the replay carries the value from the
                # request's original execution position, so the entry may
                # predate writes that were invalidated long before this
                # Troxy ordered the retransmission — its epoch snapshot
                # cannot see that. Harmless to a voted fast read (remote
                # caches were purged, so no f+1 corroboration), but a
                # read lease would serve it locally (docs/READS.md).
                keys = self.keys_fn(pending.bft_request.op)
                if not all(vote.fresh for vote in matching):
                    self.stats.replay_installs_skipped += 1
                elif self.cache.key_epoch(keys) == pending.install_epoch:
                    self.cache.install(
                        self._cache_key(pending.bft_request.op), reply, keys,
                        voted=True,
                    )
                else:
                    self.stats.stale_installs_skipped += 1
            envelope = yield from self._seal_client_reply(
                pending.client_request, reply.result, reply.request_digest
            )
            if envelope is None:
                return Action("drop", reason="no client session")
            return Action("reply", dst=pending.client_machine, envelope=envelope)
        finally:
            if span is not None:
                self.obs.vote_end(span, outcome)

    # -- helpers -------------------------------------------------------------------------------

    def _seal_client_reply(self, client_request: Request, result, request_digest: bytes):
        endpoint = self._sessions.get(client_request.client_id)
        if endpoint is None:
            return None
        client_reply = Reply(
            replica_id=self.replica_id,
            client_id=client_request.client_id,
            request_id=client_request.request_id,
            result=result,
            request_digest=request_digest,
        )
        yield from self.node.compute(self._aead_base + self._aead_per_byte * client_reply.wire_size)
        return seal_body(endpoint, client_reply)
