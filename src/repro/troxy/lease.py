"""Lease-based linearizable fast reads (docs/READS.md).

Three cooperating state machines implement leader-granted read leases:

* :class:`LeaseTable` — the *holder* side, living inside the Troxy
  enclave. Installs grants behind the sealed ``troxy-lease`` counter
  (:func:`repro.sgx.counters.certify_lease`), serves validity checks to
  the read path, and fences revocations by burning the grant epoch so a
  rolled-back enclave or a replayed grant can never resurrect a lease.
* :class:`LeaseManager` — the *leader* side, living next to the Hybster
  replica. Queues lease requests, folds grants into ORDER messages
  (``Order.grants``, covered by the order certificate), parks writes to
  leased keys until the covering lease is revoked-and-acknowledged or
  has expired on the shared clock, and signs revocations.
* :class:`LeaseDirectory` — a conservative per-replica mirror of every
  grant observed in the ordered stream. A new leader adopts its mirror
  as the authoritative lease set: it may over-approximate (entries it
  never saw revoked), which costs at most one lease duration of write
  parking, but never under-approximates — the grants rode certified
  orders, so a leader cannot have missed one below its commit point.

Epochs are ``seq * LEASE_EPOCH_STRIDE + index``: strictly increasing in
the order a holder executes them (execution is in slot order), strictly
increasing across view changes (a new leader's next slot exceeds every
executed slot), which is what lets one sealed monotonic counter fence
every install.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..sgx.counters import (
    CounterError,
    TrustedCounterSubsystem,
    burn_lease_epoch,
    certify_lease,
)
from .messages import LeaseGrant, LeaseRevoke

#: Epoch slots reserved per agreement sequence number; bounds how many
#: grants one ORDER may carry while keeping epochs monotone in (seq, i).
LEASE_EPOCH_STRIDE = 1024


class LeaseTable:
    """Holder-side lease state, fenced by the sealed lease counter."""

    def __init__(self, counters: TrustedCounterSubsystem):
        self._counters = counters
        self._leases: dict[str, LeaseGrant] = {}

    def __len__(self) -> int:
        return len(self._leases)

    def get(self, key: str) -> Optional[LeaseGrant]:
        return self._leases.get(key)

    def valid(self, key: str, now: float) -> bool:
        lease = self._leases.get(key)
        return lease is not None and now < lease.expiry

    def covers(self, keys, now: float) -> bool:
        """Whether every key in ``keys`` is under a valid lease."""
        return all(self.valid(key, now) for key in keys)

    def install(self, grant: LeaseGrant, now: float) -> str:
        """Try to adopt a grant; returns the outcome for stats/probes.

        ``"installed"`` — lease active; ``"expired"`` — dead on arrival
        (execution lagged past the expiry); ``"stale"`` — an equal or
        newer lease for the key is already held; ``"fenced"`` — the
        sealed counter refused the epoch (rollback or replay: the
        enclave rebooted after installing a later epoch, or the epoch
        was burned by a revocation that outran the grant).
        """
        if now >= grant.expiry:
            return "expired"
        held = self._leases.get(grant.key)
        if held is not None and held.epoch >= grant.epoch:
            return "stale"
        try:
            certify_lease(self._counters, grant.epoch, grant.digest())
        except CounterError:
            return "fenced"
        self._leases[grant.key] = grant
        return "installed"

    def revoke(self, key: str, epoch: int) -> bool:
        """Drop the lease on ``key`` (if ours is not newer than ``epoch``)
        and burn the epoch so the revoked grant can never install later.
        Returns whether a live lease was actually dropped."""
        lease = self._leases.get(key)
        dropped = False
        if lease is not None and lease.epoch <= epoch:
            del self._leases[key]
            dropped = True
        burn_lease_epoch(self._counters, epoch)
        return dropped

    def drop_expired(self, now: float) -> int:
        """Garbage-collect expired leases; returns how many lapsed."""
        dead = [k for k, lease in self._leases.items() if now >= lease.expiry]
        for key in dead:
            del self._leases[key]
        return len(dead)

    def clear(self) -> None:
        """Enclave reboot: the volatile table dies, the sealed counter
        survives — which is exactly why rollback cannot resurrect any
        lease this table ever held."""
        self._leases.clear()


class LeaseDirectory:
    """Conservative per-replica mirror of grants seen in ordered slots."""

    def __init__(self):
        self._grants: dict[str, LeaseGrant] = {}

    def __len__(self) -> int:
        return len(self._grants)

    def observe(self, grant: LeaseGrant) -> None:
        held = self._grants.get(grant.key)
        if held is None or grant.epoch > held.epoch:
            self._grants[grant.key] = grant

    def active(self, now: float) -> tuple[LeaseGrant, ...]:
        """Prune expired entries and return the live grants."""
        dead = [k for k, g in self._grants.items() if now >= g.expiry]
        for key in dead:
            del self._grants[key]
        return tuple(self._grants.values())


class LeaseManager:
    """Leader-side granting, revocation, and write parking."""

    def __init__(
        self,
        replica_id: str,
        instance_key,
        config,
        grantable: Optional[Callable[[str], bool]] = None,
    ):
        self.replica_id = replica_id
        self._key = instance_key
        self.config = config
        # Deployment veto (sharding): keys pinned to another group or
        # under a migration write-freeze must not be leased.
        self._grantable = grantable or (lambda key: True)
        self._active: dict[str, LeaseGrant] = {}
        self._revoking: dict[str, LeaseGrant] = {}
        self._pending: dict[str, str] = {}  # key -> requesting holder
        # Parked writes: (request, keys-still-blocking-it). A request
        # releases only once every blocking key is revoked or expired.
        self._parked: list[list] = []

    def set_grantable(self, grantable: Callable[[str], bool]) -> None:
        """Install a deployment-level grant veto (sharding wiring)."""
        self._grantable = grantable

    # -- requests and grants ------------------------------------------------

    def note_request(self, key: str, holder: str, now: float) -> bool:
        """Queue a (renewal) request; returns whether it was queued."""
        if key in self._revoking:
            return False  # a write is waiting; the holder re-requests later
        held = self._active.get(key)
        if held is not None and now < held.expiry and held.holder != holder:
            return False  # single writer per key: someone else holds it
        self._pending[key] = holder
        return True

    def has_pending(self) -> bool:
        return bool(self._pending)

    def grants_for_slot(self, seq: int, now: float) -> tuple[LeaseGrant, ...]:
        """Drain grantable requests into the grants for slot ``seq``.

        Called by the leader under the order lock, immediately before
        the slot's content digest is certified — the grants become part
        of the certified order, and are registered active here at attach
        time so any later write to these keys parks even though the
        carrying order has not executed yet.
        """
        if not self._pending:
            return ()
        self._drop_expired(now)
        grants = []
        for key, holder in list(self._pending.items()):
            if key in self._revoking:
                del self._pending[key]
                continue
            held = self._active.get(key)
            if held is not None and held.holder != holder:
                del self._pending[key]
                continue
            if not self._grantable(key):
                del self._pending[key]
                continue
            if len(grants) >= LEASE_EPOCH_STRIDE:
                break  # epoch space for this slot is full; rest wait
            epoch = seq * LEASE_EPOCH_STRIDE + len(grants)
            expiry = now + self.config.duration
            tag = self._key.sign(
                LeaseGrant.auth_input(key, holder, self.replica_id, epoch, expiry)
            )
            grant = LeaseGrant(key, holder, self.replica_id, epoch, expiry, tag)
            self._active[key] = grant
            grants.append(grant)
            del self._pending[key]
        return tuple(grants)

    def _drop_expired(self, now: float) -> None:
        for key in [k for k, g in self._active.items() if now >= g.expiry]:
            del self._active[key]

    # -- write parking ------------------------------------------------------

    def blocking_keys(self, keys, now: float) -> tuple[str, ...]:
        """Keys in ``keys`` a write must wait on before ordering."""
        blocked = []
        for key in keys:
            grant = self._active.get(key)
            if grant is not None and now < grant.expiry:
                blocked.append(key)
            elif key in self._revoking:
                blocked.append(key)  # ack or expiry still outstanding
        return tuple(blocked)

    def park(self, request, keys) -> None:
        self._parked.append([request, set(keys)])

    def parked_count(self) -> int:
        return len(self._parked)

    def is_revoking(self, key: str) -> bool:
        return key in self._revoking

    def begin_revoke(self, key: str) -> Optional[LeaseGrant]:
        """Move ``key`` into the revoking state; returns the grant to
        revoke, or None if a revocation is already in flight (or the
        lease vanished)."""
        if key in self._revoking:
            return None
        grant = self._active.pop(key, None)
        if grant is None:
            return None
        self._revoking[key] = grant
        return grant

    def make_revoke(self, grant: LeaseGrant) -> LeaseRevoke:
        tag = self._key.sign(
            LeaseRevoke.auth_input(grant.key, grant.epoch, grant.holder, self.replica_id)
        )
        return LeaseRevoke(grant.key, grant.epoch, grant.holder, self.replica_id, tag)

    def on_ack(self, key: str, epoch: int, holder: str) -> bool:
        """A verified LeaseRevokeAck arrived; returns whether it settles
        the outstanding revocation."""
        grant = self._revoking.get(key)
        if grant is None or grant.epoch != epoch or grant.holder != holder:
            return False
        del self._revoking[key]
        return True

    def on_revoke_expired(self, key: str, grant: LeaseGrant, now: float) -> bool:
        """The revocation timer fired; the lease is dead on the shared
        clock even if the (possibly partitioned) holder never acked."""
        if self._revoking.get(key) is not grant:
            return False
        if now < grant.expiry:
            return False
        del self._revoking[key]
        return True

    def release_key(self, key: str):
        """Clear ``key`` from every parked write; returns the requests
        that are no longer blocked on anything."""
        released = []
        remaining = []
        for entry in self._parked:
            entry[1].discard(key)
            if entry[1]:
                remaining.append(entry)
            else:
                released.append(entry[0])
        self._parked = remaining
        return tuple(released)

    def drain_parked(self):
        """View change / restart: abandon every parked write (clients
        retransmit; the new leader re-parks as needed)."""
        released = tuple(entry[0] for entry in self._parked)
        self._parked = []
        return released

    # -- leadership hand-over ----------------------------------------------

    def adopt(self, grants, now: float) -> int:
        """New leader: adopt the conservative mirror as the active set.

        Over-approximating is safe (writes park at most one lease
        duration for a lease that was in fact already revoked);
        under-approximating would be unsafe, and cannot happen because
        every grant rode a certified order this replica committed.
        """
        adopted = 0
        for grant in grants:
            if now >= grant.expiry:
                continue
            held = self._active.get(grant.key)
            if held is None or grant.epoch > held.epoch:
                self._active[grant.key] = grant
                adopted += 1
        return adopted

    def reset(self) -> None:
        """Leadership lost: stop granting; pending requests die."""
        self._pending.clear()
