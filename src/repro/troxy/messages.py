"""Troxy-to-Troxy cache protocol messages (Fig. 4).

Queries and replies are authenticated under the Troxy group secret
bound to the sending instance's identifier, and carry a nonce so a
malicious relaying replica cannot replay an earlier (stale) answer for
a new query. Only reply *digests* travel between replicas — the paper's
hash optimization (Section VI-C2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..crypto.primitives import DIGEST_SIZE, MAC_SIZE

_HEADER = 16


@dataclass(frozen=True)
class CacheQuery:
    """Ask a remote Troxy for its cache entry for one read request."""

    request_digest: bytes
    asker: str  # replica id whose Troxy is voting
    nonce: int
    tag: bytes
    wire_size: int = field(init=False, compare=False, repr=False)

    def __post_init__(self):
        object.__setattr__(
            self, "wire_size", _HEADER + DIGEST_SIZE + len(self.asker) + 8 + MAC_SIZE
        )

    @staticmethod
    def auth_input(request_digest: bytes, asker: str, nonce: int) -> bytes:
        return b"CQ|" + request_digest + b"|" + asker.encode() + b"|" + nonce.to_bytes(8, "big")



@dataclass(frozen=True)
class CacheEntryReply:
    """A remote Troxy's answer: the digest of its cached reply, if any."""

    request_digest: bytes
    reply_digest: Optional[bytes]  # None => not cached at the remote
    responder: str
    nonce: int
    tag: bytes
    wire_size: int = field(init=False, compare=False, repr=False)

    def __post_init__(self):
        size = _HEADER + DIGEST_SIZE + len(self.responder) + 8 + MAC_SIZE
        if self.reply_digest is not None:
            size += DIGEST_SIZE
        object.__setattr__(self, "wire_size", size)

    @staticmethod
    def auth_input(
        request_digest: bytes, reply_digest: Optional[bytes], responder: str, nonce: int
    ) -> bytes:
        return (
            b"CR|"
            + request_digest
            + b"|"
            + (reply_digest if reply_digest is not None else b"<none>")
            + b"|"
            + responder.encode()
            + b"|"
            + nonce.to_bytes(8, "big")
        )

