"""Troxy-to-Troxy cache protocol messages (Fig. 4).

Queries and replies are authenticated under the Troxy group secret
bound to the sending instance's identifier, and carry a nonce so a
malicious relaying replica cannot replay an earlier (stale) answer for
a new query. Only reply *digests* travel between replicas — the paper's
hash optimization (Section VI-C2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..crypto.primitives import DIGEST_SIZE, MAC_SIZE, intern_digest

_HEADER = 16


@dataclass(frozen=True)
class CacheQuery:
    """Ask a remote Troxy for its cache entry for one read request."""

    request_digest: bytes
    asker: str  # replica id whose Troxy is voting
    nonce: int
    tag: bytes
    wire_size: int = field(init=False, compare=False, repr=False)

    def __post_init__(self):
        object.__setattr__(
            self, "wire_size", _HEADER + DIGEST_SIZE + len(self.asker) + 8 + MAC_SIZE
        )

    @staticmethod
    def auth_input(request_digest: bytes, asker: str, nonce: int) -> bytes:
        return b"CQ|" + request_digest + b"|" + asker.encode() + b"|" + nonce.to_bytes(8, "big")



@dataclass(frozen=True)
class BatchedReply:
    """All of one agreement batch's replies bound for one origin Troxy.

    Batched agreement (docs/BATCHING.md) executes a whole batch before
    any reply leaves the replica, so the replies for one origin can ride
    a single message authenticated as a unit under the *sending* Troxy
    instance's key — one MAC and one enclave crossing at each end
    instead of one per reply. The per-reply ``troxy_tag`` is omitted;
    the bundle tag covers every reply's auth bytes, which is the same
    trust statement (this Troxy instance vouches for these replies).
    """

    sender: str  # replica id of the authenticating Troxy
    replies: tuple  # tuple[Reply, ...], all with origin == the recipient
    tag: bytes
    wire_size: int = field(init=False, compare=False, repr=False)

    def __post_init__(self):
        if not self.replies:
            raise ValueError("BatchedReply needs at least one reply")
        object.__setattr__(
            self,
            "wire_size",
            _HEADER
            + len(self.sender)
            + MAC_SIZE
            + sum(reply.wire_size for reply in self.replies),
        )

    def __len__(self) -> int:
        return len(self.replies)

    @staticmethod
    def auth_input(sender: str, replies) -> bytes:
        parts = [b"BR", sender.encode()]
        parts.extend(reply.auth_bytes() for reply in replies)
        return b"|".join(parts)


@dataclass(frozen=True)
class ForwardedRequest:
    """A client request handed to its key's owning group (docs/SHARDING.md).

    In a sharded deployment the Troxy that terminates the client's TLS
    session may not co-locate with the agreement group owning the key.
    The fronting Troxy stays the reply convergence point (``origin`` on
    the embedded request names it), and forwards the authenticated BFT
    request to the same-index replica of the owning group. The tag is
    computed under the *forwarder's* Troxy instance key: the receiving
    enclave thereby knows a genuine Troxy — not the untrusted host —
    produced the translation from client envelope to BFT request.
    """

    request: object  # hybster Request; origin == forwarder
    forwarder: str  # replica id of the fronting Troxy
    tag: bytes
    wire_size: int = field(init=False, compare=False, repr=False)

    def __post_init__(self):
        object.__setattr__(
            self,
            "wire_size",
            _HEADER + self.request.wire_size + len(self.forwarder) + MAC_SIZE,
        )

    @staticmethod
    def auth_input(request, forwarder: str) -> bytes:
        return b"FW|" + request.auth_bytes() + b"|" + forwarder.encode()


@dataclass(frozen=True)
class ShardFastReply:
    """A remote group's fast-read verdict for a forwarded read.

    When the owning group's Troxy resolves a forwarded read on its fast
    path (local cache hit corroborated by f remote caches, Fig. 4), it
    vouches for the result to the fronting Troxy with this message
    instead of falling back to ordering. One Troxy enclave attesting a
    completed f+1 cache agreement to another carries the same trust as
    a :class:`CacheEntryReply` — mutually attested enclaves under the
    shared group secret — so the fronting voter accepts it as final.
    """

    reply: object  # hybster Reply carrying the cached result
    responder: str  # replica id of the attesting Troxy
    tag: bytes
    wire_size: int = field(init=False, compare=False, repr=False)

    def __post_init__(self):
        object.__setattr__(
            self,
            "wire_size",
            _HEADER + self.reply.wire_size + len(self.responder) + MAC_SIZE,
        )

    @staticmethod
    def auth_input(reply, responder: str) -> bytes:
        return b"SF|" + reply.auth_bytes() + b"|" + responder.encode()


@dataclass(frozen=True)
class CacheEntryReply:
    """A remote Troxy's answer: the digest of its cached reply, if any."""

    request_digest: bytes
    reply_digest: Optional[bytes]  # None => not cached at the remote
    responder: str
    nonce: int
    tag: bytes
    wire_size: int = field(init=False, compare=False, repr=False)

    def __post_init__(self):
        size = _HEADER + DIGEST_SIZE + len(self.responder) + 8 + MAC_SIZE
        if self.reply_digest is not None:
            size += DIGEST_SIZE
        object.__setattr__(self, "wire_size", size)

    @staticmethod
    def auth_input(
        request_digest: bytes, reply_digest: Optional[bytes], responder: str, nonce: int
    ) -> bytes:
        return (
            b"CR|"
            + request_digest
            + b"|"
            + (reply_digest if reply_digest is not None else b"<none>")
            + b"|"
            + responder.encode()
            + b"|"
            + nonce.to_bytes(8, "big")
        )


@dataclass(frozen=True)
class LeaseGrant:
    """Leader-issued read lease for one key (docs/READS.md).

    Grants ride inside ORDER messages (``Order.grants``) so every
    replica learns about them in agreement order and the order
    certificate covers them — an untrusted host cannot strip or forge a
    grant in a relayed order. ``epoch`` is derived from the carrying
    sequence number, so the epochs one holder installs are strictly
    increasing: the holder's sealed ``troxy-lease`` counter fences each
    install and a rolled-back enclave can never re-install an old grant.
    The tag is computed under the granting leader's Troxy instance key.
    """

    key: str
    holder: str  # replica id of the Troxy allowed to serve lease reads
    granter: str  # replica id of the issuing leader
    epoch: int
    expiry: float  # absolute time on the shared simulation clock
    tag: bytes
    wire_size: int = field(init=False, compare=False, repr=False)

    def __post_init__(self):
        object.__setattr__(
            self,
            "wire_size",
            _HEADER + len(self.key) + len(self.holder) + len(self.granter)
            + 16 + MAC_SIZE,
        )

    @staticmethod
    def auth_input(
        key: str, holder: str, granter: str, epoch: int, expiry: float
    ) -> bytes:
        return (
            b"LG|" + key.encode() + b"|" + holder.encode() + b"|"
            + granter.encode() + b"|" + epoch.to_bytes(8, "big") + b"|"
            + expiry.hex().encode()
        )

    def digest(self) -> bytes:
        try:
            return self._digest
        except AttributeError:
            cached = intern_digest(
                self.auth_input(
                    self.key, self.holder, self.granter, self.epoch, self.expiry
                )
            )
            object.__setattr__(self, "_digest", cached)
            return cached


@dataclass(frozen=True)
class LeaseRequest:
    """A Troxy asking its group leader for (or renewing) a read lease.

    Fire-and-forget: the requester keeps serving through the voted path
    until a grant arrives in an ordered slot. Signed under the
    requesting Troxy's instance key; a forged request can at worst cause
    a harmless grant to a Troxy that never asked.
    """

    key: str
    holder: str  # replica id of the requesting Troxy
    tag: bytes
    wire_size: int = field(init=False, compare=False, repr=False)

    def __post_init__(self):
        object.__setattr__(
            self, "wire_size", _HEADER + len(self.key) + len(self.holder) + MAC_SIZE
        )

    @staticmethod
    def auth_input(key: str, holder: str) -> bytes:
        return b"LQ|" + key.encode() + b"|" + holder.encode()


@dataclass(frozen=True)
class LeaseRevoke:
    """Leader order to a holder: stop serving lease reads for ``key``.

    Sent before the leader orders a write to a leased key; the write
    stays parked until the holder acknowledges (or the lease expires on
    the shared clock). The holder drops the lease, bumps the key's
    cache-invalidation epoch, and burns the grant epoch in its sealed
    counter so a late or replayed grant can never resurrect the lease.
    """

    key: str
    epoch: int
    holder: str  # replica id of the lease holder being revoked
    sender: str  # replica id of the revoking leader
    tag: bytes
    wire_size: int = field(init=False, compare=False, repr=False)

    def __post_init__(self):
        object.__setattr__(
            self,
            "wire_size",
            _HEADER + len(self.key) + 8 + len(self.holder) + len(self.sender)
            + MAC_SIZE,
        )

    @staticmethod
    def auth_input(key: str, epoch: int, holder: str, sender: str) -> bytes:
        return (
            b"LR|" + key.encode() + b"|" + epoch.to_bytes(8, "big") + b"|"
            + holder.encode() + b"|" + sender.encode()
        )


@dataclass(frozen=True)
class LeaseRevokeAck:
    """Holder confirmation that a lease is dead and fenced.

    Must be authentic: a forged ack would release a parked write while
    the holder still serves lease reads. Signed under the holder's
    Troxy instance key and verified by the leader before the write is
    unparked.
    """

    key: str
    epoch: int
    holder: str
    tag: bytes
    wire_size: int = field(init=False, compare=False, repr=False)

    def __post_init__(self):
        object.__setattr__(
            self,
            "wire_size",
            _HEADER + len(self.key) + 8 + len(self.holder) + MAC_SIZE,
        )

    @staticmethod
    def auth_input(key: str, epoch: int, holder: str) -> bytes:
        return (
            b"LA|" + key.encode() + b"|" + epoch.to_bytes(8, "big") + b"|"
            + holder.encode()
        )

