"""Command-line runner for the paper experiments.

Usage::

    python -m repro.bench fig6            # one experiment
    python -m repro.bench fig7 fig9       # several
    python -m repro.bench all             # everything (slow)
    REPRO_BENCH_SCALE=0.3 python -m repro.bench all   # quick pass

Prints the paper-style series and writes them to benchmarks/results/.
"""

from __future__ import annotations

import argparse
import sys
import time

from . import experiments
from .report import format_latency_series, format_throughput_series, save_and_print


def run_fig6():
    points = experiments.fig6_ordered_writes_local()
    save_and_print("fig6", format_throughput_series(
        "Fig. 6 — ordered writes, LAN (throughput vs request size)", points))


def run_fig7():
    points = experiments.fig7_ordered_writes_wan()
    save_and_print("fig7", format_throughput_series(
        "Fig. 7 — ordered writes, 100±20 ms WAN (throughput vs request size)", points))


def run_fig8():
    points = experiments.fig8_reads_local()
    save_and_print("fig8", format_throughput_series(
        "Fig. 8 — read-only workload, LAN (throughput vs reply size)", points))


def run_fig9():
    points = experiments.fig9_reads_wan()
    save_and_print("fig9", format_throughput_series(
        "Fig. 9 — read-only workload, 100±20 ms WAN (throughput vs reply size)", points))


def run_fig10():
    points = experiments.fig10_write_contention()
    lines = ["Fig. 10 — 1 % writes, contended keys", "=" * 40]
    for point in points:
        lines.append(
            f"{point.system:18s} {point.throughput:>10.0f} op/s   "
            f"read conflicts {point.extra['conflict_rate'] * 100:5.1f}%"
        )
    save_and_print("fig10", "\n".join(lines))


def run_fig11():
    points = experiments.fig11_http_latency()
    save_and_print("fig11", format_latency_series(
        "Fig. 11 — HTTP service mean latency (GET/POST mix)", points))


def run_table1():
    rows = experiments.table1_rows()
    lines = ["Table I — read optimizations and consistency", "=" * 46]
    lines.append(f"{'System':>10} | {'Replicas':>8} | {'Read quorum':>22} | Consistency")
    for row in rows:
        lines.append(
            f"{row.system:>10} | {row.replicas:>8} | {row.read_quorum:>22} | {row.consistency}"
        )
    lines.append("(consistency witnesses: run `pytest benchmarks/test_table1.py`)")
    save_and_print("table1", "\n".join(lines))


RUNNERS = {
    "fig6": run_fig6,
    "fig7": run_fig7,
    "fig8": run_fig8,
    "fig9": run_fig9,
    "fig10": run_fig10,
    "fig11": run_fig11,
    "table1": run_table1,
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiments", nargs="+",
        choices=sorted(RUNNERS) + ["all"],
        help="which experiments to run ('all' for every one)",
    )
    args = parser.parse_args(argv)
    names = sorted(RUNNERS) if "all" in args.experiments else args.experiments
    for name in names:
        started = time.time()
        RUNNERS[name]()
        print(f"[{name} finished in {time.time() - started:.0f}s]", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
