"""Command-line runner for the paper experiments.

Usage::

    python -m repro.bench fig6            # one experiment
    python -m repro.bench fig7 fig9       # several
    python -m repro.bench all             # everything (slow)
    REPRO_BENCH_SCALE=0.3 python -m repro.bench all   # quick pass

    python -m repro.bench fig6 --json out/      # also write BENCH_fig6.json
    python -m repro.bench fig6 --profile        # cProfile, sorted pstats

Prints the paper-style series and writes them to benchmarks/results/.
With ``--json DIR`` each experiment additionally emits ``BENCH_<name>.json``
with one entry per measured cell: throughput, latency percentiles, host
wall-clock, and the deterministic ``env.steps`` / ``env.scheduled_events``
counters (the quantities the perf-smoke CI job budgets on).
"""

from __future__ import annotations

import argparse
import cProfile
import dataclasses
import io
import json
import pstats
import sys
import time
from pathlib import Path

from . import critpath, experiments
from .report import (
    format_latency_series,
    format_throughput_series,
    save_and_print,
    save_bench_json,
)


def run_fig6():
    points = experiments.fig6_ordered_writes_local()
    save_and_print("fig6", format_throughput_series(
        "Fig. 6 — ordered writes, LAN (throughput vs request size)", points))
    return points


def run_fig7():
    points = experiments.fig7_ordered_writes_wan()
    save_and_print("fig7", format_throughput_series(
        "Fig. 7 — ordered writes, 100±20 ms WAN (throughput vs request size)", points))
    return points


def run_fig8():
    points = experiments.fig8_reads_local()
    save_and_print("fig8", format_throughput_series(
        "Fig. 8 — read-only workload, LAN (throughput vs reply size)", points))
    return points


def run_fig9():
    points = experiments.fig9_reads_wan()
    save_and_print("fig9", format_throughput_series(
        "Fig. 9 — read-only workload, 100±20 ms WAN (throughput vs reply size)", points))
    return points


def run_fig10():
    points = experiments.fig10_write_contention()
    lines = ["Fig. 10 — 1 % writes, contended keys", "=" * 40]
    for point in points:
        lines.append(
            f"{point.system:18s} {point.throughput:>10.0f} op/s   "
            f"read conflicts {point.extra['conflict_rate'] * 100:5.1f}%"
        )
    save_and_print("fig10", "\n".join(lines))
    return points


def run_fig11():
    points = experiments.fig11_http_latency()
    save_and_print("fig11", format_latency_series(
        "Fig. 11 — HTTP service mean latency (GET/POST mix)", points))
    return points


def run_batching():
    points = experiments.batching_throughput()
    writes = [p for p in points if p.figure == "batching-writes"]
    reads = [p for p in points if p.figure == "batching-reads"]
    lines = ["Batching — fig6 local writes, 32 clients (etroxy)", "=" * 56]
    lines.append(
        f"{'setting':>9} | {'op/s':>7} | {'p50 ms':>7} | {'avg batch':>9} | "
        f"{'depth':>5} | flushes size/idle/drain/timeout"
    )
    by_setting = {}
    for point in writes:
        fr = point.extra.get("flush_reasons", {})
        by_setting[point.x] = point.throughput
        lines.append(
            f"{point.x:>9} | {point.throughput:>7.0f} | "
            f"{point.summary.p50 * 1000:>7.3f} | {point.extra.get('avg_batch', 1.0):>9.2f} | "
            f"{point.extra.get('max_pipeline_depth', 0):>5} | "
            f"{fr.get('size', 0)}/{fr.get('idle', 0)}/{fr.get('drain', 0)}/{fr.get('timeout', 0)}"
        )
    if "1" in by_setting:
        base = by_setting["1"]
        lines.append("")
        lines.append("speedup vs batch size 1 (same two-deep agreement pipeline):")
        for setting in ("4", "16", "adaptive"):
            if setting in by_setting and base > 0:
                lines.append(f"  b={setting:>8}: {by_setting[setting] / base:5.2f}x")
    if "off" in by_setting and "adaptive" in by_setting and by_setting["off"] > 0:
        lines.append(
            f"adaptive vs unbatched ('off'): "
            f"{by_setting['adaptive'] / by_setting['off']:5.2f}x"
        )
    lines.append("")
    lines.append("fig8-style fast-read guard (p50 must not move):")
    for point in reads:
        lines.append(
            f"  b={point.x:>8}: p50 {point.summary.p50 * 1000:7.3f} ms  "
            f"({point.throughput:.0f} op/s)"
        )
    save_and_print("batching", "\n".join(lines))
    return points


def run_sharding():
    points = experiments.sharding_throughput()
    writes = [p for p in points if p.figure == "sharding-writes"]
    reads = [p for p in points if p.figure == "sharding-reads"]
    lines = ["Sharding — fig6 local writes, 96 clients, uniform keys (etroxy)",
             "=" * 64]
    lines.append(
        f"{'shards':>7} | {'op/s':>8} | {'p50 ms':>7} | {'speedup':>7} | "
        f"{'fwd share':>9} | ring split"
    )
    base = writes[0].throughput if writes else 0.0
    for point in writes:
        split = point.extra.get("ring_split", {})
        split_s = "/".join(str(split[g]) for g in sorted(split))
        lines.append(
            f"{point.x:>7} | {point.throughput:>8.0f} | "
            f"{point.summary.p50 * 1000:>7.3f} | "
            f"{point.throughput / base if base else 0.0:>6.2f}x | "
            f"{point.extra.get('forward_share', 0.0):>8.0%} | {split_s}"
        )
    lines.append("")
    lines.append("(fwd share counts router lookups, so a request forwarded once")
    lines.append(" is looked up twice: share f/(1+f) for true forward fraction f)")
    lines.append("")
    lines.append("fig8-style fast-read guard (shards=1 must be wire-identical):")
    for point in reads:
        lines.append(
            f"  {point.x:>9}: p50 {point.summary.p50 * 1000:7.3f} ms  "
            f"({point.throughput:.0f} op/s)"
        )
    lines.extend(critpath.sharding_gap_notes())
    save_and_print("sharding", "\n".join(lines))
    return points


def run_critpath():
    """Critical-path attribution sidecars (benchmarks/results/critpath_*.txt)."""
    for name, producer in critpath.SIDECARS.items():
        save_and_print(name, producer())
    return []


def run_table1():
    rows = experiments.table1_rows()
    lines = ["Table I — read optimizations and consistency", "=" * 46]
    lines.append(f"{'System':>10} | {'Replicas':>8} | {'Read quorum':>22} | Consistency")
    for row in rows:
        lines.append(
            f"{row.system:>10} | {row.replicas:>8} | {row.read_quorum:>22} | {row.consistency}"
        )
    lines.append("(consistency witnesses: run `pytest benchmarks/test_table1.py`)")
    save_and_print("table1", "\n".join(lines))
    return rows


RUNNERS = {
    "fig6": run_fig6,
    "fig7": run_fig7,
    "fig8": run_fig8,
    "fig9": run_fig9,
    "fig10": run_fig10,
    "fig11": run_fig11,
    "table1": run_table1,
    "batching": run_batching,
    "sharding": run_sharding,
    "critpath": run_critpath,
}


def _write_json(name: str, result, json_dir: Path) -> None:
    if name == "table1":
        # Table I has no measured cells; persist the static rows as-is.
        json_dir.mkdir(parents=True, exist_ok=True)
        path = json_dir / "BENCH_table1.json"
        payload = {"bench": "table1",
                   "rows": [dataclasses.asdict(row) for row in result]}
        path.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")
    else:
        path = save_bench_json(name, result, json_dir)
    print(f"[wrote {path}]", file=sys.stderr)


def _run_profiled(name: str, runner, json_dir: Path | None):
    """Run one experiment under cProfile and print the sorted hot list.

    Profiling inflates wall-clock (per-call bookkeeping), so the
    ``wall_s`` recorded in a profiled run is *not* comparable to an
    unprofiled one — the deterministic event counters are.
    """
    profile = cProfile.Profile()
    result = profile.runcall(runner)
    stream = io.StringIO()
    stats = pstats.Stats(profile, stream=stream)
    stats.sort_stats("cumulative").print_stats(40)
    stats.sort_stats("tottime").print_stats(25)
    sys.stderr.write(stream.getvalue())
    if json_dir is not None:
        json_dir.mkdir(parents=True, exist_ok=True)
        dump = json_dir / f"BENCH_{name}.pstats"
        profile.dump_stats(dump)
        print(f"[wrote {dump}]", file=sys.stderr)
    return result


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiments", nargs="+",
        choices=sorted(RUNNERS) + ["all"],
        help="which experiments to run ('all' for every one)",
    )
    parser.add_argument(
        "--json", metavar="DIR", default=None,
        help="also write BENCH_<experiment>.json files into DIR",
    )
    parser.add_argument(
        "--profile", action="store_true",
        help="run each experiment under cProfile and print sorted pstats "
             "to stderr (with --json, also dump BENCH_<experiment>.pstats)",
    )
    args = parser.parse_args(argv)
    json_dir = Path(args.json) if args.json is not None else None
    names = sorted(RUNNERS) if "all" in args.experiments else args.experiments
    for name in names:
        started = time.time()
        if args.profile:
            result = _run_profiled(name, RUNNERS[name], json_dir)
        else:
            result = RUNNERS[name]()
        if json_dir is not None:
            _write_json(name, result, json_dir)
        print(f"[{name} finished in {time.time() - started:.0f}s]", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
