"""Critical-path attribution sidecars for the paper benchmarks.

Each runner drives a scaled-down, instrumented replica of one benchmark
workload (fig5-style ordered writes, fig8/fig9 reads, batching,
sharding) under an :class:`~repro.obs.ObsPlane` and renders the
:mod:`repro.obs.critpath` bottleneck report into a tracked
``benchmarks/results/critpath_<name>.txt`` file. The instrumented runs
are *companions*, not replacements: the headline benchmarks stay
uninstrumented (zero-perturbation is tested, but the attribution runs
use fewer clients and shorter windows to keep ``python -m repro.bench``
fast), so the sidecar reports explain *where the time goes* while the
figure files report *how much there is*.

``sharding_gap_notes`` backs the scaling-gap analysis appended to
``benchmarks/results/sharding.txt``: it attributes a 1-group and a
4-group run and quantifies how much of the gap the forwarding hop and
the fronting-Troxy accept path account for.
"""

from __future__ import annotations

from ..analysis.metrics import Collector
from ..obs.critpath import analyze, render_report
from ..obs.probes import ObsPlane
from ..workloads.loadgen import ClosedLoop
from .experiments import (
    WAN_CLIENT_NIC,
    _run_system,
    read_source,
    write_source,
)
from .clusters import WAN_DELAY


def attributed_system_run(
    label: str,
    system: str = "etroxy",
    source=None,
    reply_size: int = 1024,
    n_clients: int = 16,
    warmup: float = 0.05,
    duration: float = 0.2,
    seed: int = 42,
    wan=None,
    client_nic=None,
    request_distribution: str = "leader",
    batching=None,
):
    """One instrumented unsharded run -> (analysis, summary)."""
    plane = ObsPlane()
    _, summary = _run_system(
        system,
        source if source is not None else write_source(1024),
        reply_size=reply_size,
        n_clients=n_clients,
        warmup=warmup,
        duration=duration,
        wan=wan,
        client_nic=client_nic,
        seed=seed,
        request_distribution=request_distribution,
        batching=batching,
        obs=plane,
    )
    plane.finalize()
    return analyze(plane.spans), summary


def attributed_sharded_run(
    shards: int,
    seed: int = 42,
    n_clients: int = 24,
    warmup: float = 0.05,
    duration: float = 0.2,
    request_size: int = 1024,
    key_space: int = 64,
    batching=None,
):
    """One instrumented sharded run -> (analysis, summary, cluster, plane).

    Mirrors :func:`repro.bench.experiments.sharding_throughput`'s write
    ladder cell at a reduced client count; the flattened
    ``replicas``/``hosts`` views of the sharded cluster let the same
    ObsPlane instrument every group, so cross-group forwarding produces
    ``shard.forward`` spans inside one connected trace.
    """
    from ..apps.echo import EchoService
    from ..shard import build_sharded

    plane = ObsPlane()
    cluster = build_sharded(
        seed=seed, shards=shards,
        app_factory=lambda: EchoService(reply_size=10),
        replica_cores=2, batching=batching,
    )
    plane.attach(cluster)
    clients = plane.wrap_clients(
        [cluster.new_client() for _ in range(n_clients)]
    )
    loadgen = ClosedLoop(
        cluster.env, clients,
        write_source(request_size, key_space=key_space), Collector(),
    )
    loadgen.start()
    start = cluster.env.now
    cluster.env.run(until=start + warmup + duration)
    summary = loadgen.collector.summarize(start + warmup, start + warmup + duration)
    plane.finalize()
    return analyze(plane.spans), summary, cluster, plane


def critpath_fig5() -> str:
    """Fig. 5-style ordered-write latency, attributed (LAN, etroxy)."""
    analysis, _ = attributed_system_run(
        "fig5", source=write_source(1024), reply_size=10,
    )
    return render_report(
        analysis, "fig5-style ordered writes, 1 KiB, LAN (etroxy)"
    )


def critpath_fig8() -> str:
    """Fig. 8-style local reads, attributed (fast-read path)."""
    analysis, _ = attributed_system_run(
        "fig8", source=read_source(), reply_size=1024,
    )
    return render_report(
        analysis, "fig8-style read-only, 1 KiB replies, LAN (etroxy)"
    )


def critpath_fig9() -> str:
    """Fig. 9-style WAN reads, attributed (reply delivery dominates)."""
    analysis, _ = attributed_system_run(
        "fig9", source=read_source(), reply_size=1024,
        n_clients=32, warmup=0.6, duration=0.8,
        wan=WAN_DELAY, client_nic=WAN_CLIENT_NIC,
        request_distribution="all",
    )
    return render_report(
        analysis, "fig9-style read-only, 1 KiB replies, 100±20 ms WAN (etroxy)"
    )


def critpath_batching() -> str:
    """Adaptive-batching writes, attributed (batch-queue wait visible)."""
    analysis, _ = attributed_system_run(
        "batching", source=write_source(1024), reply_size=10,
        n_clients=32, batching="adaptive",
    )
    return render_report(
        analysis, "batching writes, 32 clients, adaptive cutoff (etroxy)"
    )


def critpath_sharding() -> str:
    """4-group sharded writes, attributed (forwarding hop visible)."""
    analysis, _, _, _ = attributed_sharded_run(shards=4)
    return render_report(
        analysis, "sharded writes, 4 groups, uniform keys (etroxy)"
    )


def sharding_gap_notes() -> list[str]:
    """Attribution-backed notes on the 4-group scaling gap.

    Compares an instrumented 1-group run against a 4-group run (same
    seed, clients, and keyspace) and decomposes the per-request latency
    inflation that keeps measured speedup below the ideal 4x: the
    forwarding hop itself, the fronting Troxy's extra accept work, and
    everything else (per-group load, queueing).
    """
    one, _, _, _ = attributed_sharded_run(shards=1)
    four, _, cluster, _ = attributed_sharded_run(shards=4)
    if not one.requests or not four.requests:
        return ["critpath: no completed requests to attribute"]

    def mean_phase(analysis, phase):
        total = sum(
            s for (p, _part), s in analysis.totals.items() if p == phase
        )
        return total / len(analysis.requests)

    e2e_1 = one.e2e.mean
    e2e_4 = four.e2e.mean
    inflation = e2e_4 - e2e_1
    hop = mean_phase(four, "forward_hop") - mean_phase(one, "forward_hop")
    accept = mean_phase(four, "troxy_accept") - mean_phase(one, "troxy_accept")
    fwd = [r for r in four.requests if r.forwarded]
    local = [r for r in four.requests if not r.forwarded]
    stats = cluster.router.stats
    fwd_share = stats.forwards / stats.lookups if stats.lookups else 0.0
    lines = [
        "",
        "why not 4.00x at 4 groups (critical-path attribution, seed 42):",
        f"  per-request mean e2e: {e2e_1 * 1e3:.3f} ms at 1 group -> "
        f"{e2e_4 * 1e3:.3f} ms at 4 groups "
        f"({inflation * 1e3:+.3f} ms per request)",
        f"  forwarding hop (wait+service): {hop * 1e3:+.3f} ms of that "
        f"({hop / inflation:.0%})" if inflation > 0 else
        f"  forwarding hop (wait+service): {hop * 1e3:+.3f} ms per request",
        f"  fronting-troxy accept path:    {accept * 1e3:+.3f} ms "
        "(double envelope handling on forwarded requests)",
    ]
    if fwd and local:
        p50_fwd = sorted(r.e2e for r in fwd)[len(fwd) // 2]
        p50_local = sorted(r.e2e for r in local)[len(local) // 2]
        lines.append(
            f"  forwarded vs local p50: {p50_fwd * 1e3:.3f} ms vs "
            f"{p50_local * 1e3:.3f} ms "
            f"({fwd_share:.0%} of router lookups forward)"
        )
    lines.append(
        "  -> the gap is the cross-group hop tax on ~3/4 of requests, not"
    )
    lines.append(
        "     agreement contention: see benchmarks/results/critpath_sharding.txt"
    )
    return lines


#: name -> report producer; ``python -m repro.bench critpath`` runs all.
SIDECARS = {
    "critpath_fig5": critpath_fig5,
    "critpath_fig8": critpath_fig8,
    "critpath_fig9": critpath_fig9,
    "critpath_batching": critpath_batching,
    "critpath_sharding": critpath_sharding,
}
