"""Deployment builders: wire nodes, replicas, Troxies, and clients.

Every evaluated configuration in the paper maps to one builder here:

* :func:`build_baseline` — original Hybster with the client-side library
  ("BL"), PBFT-like read optimization available.
* :func:`build_troxy` — Troxy-backed Hybster; ``boundary`` selects
  *etroxy* (SGX costs), *ctroxy* (JNI costs, no enclave), or free.

The topology mirrors the testbed (Section VI-A): replica machines on a
LAN (quad 1 Gbps NICs, quad-core + HT), client machines whose links can
carry an extra 100 +/- 20 ms normally distributed delay for the WAN
scenarios, plus configurable client access bandwidth.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace
from typing import Callable, Optional, Union

from ..apps.base import Application
from ..crypto.keys import KeyRing
from ..hybster.client import BftClient, ClientMachine
from ..hybster.config import BatchConfig, ClusterConfig, LeaseConfig
from ..hybster.replica import Replica
from ..troxy.cache import FastReadCache
from ..troxy.core import TroxyCore
from ..troxy.host import TroxyHost
from ..troxy.lease import LeaseDirectory, LeaseManager
from ..troxy.monitor import ConflictMonitor
from ..workloads.legacy import LegacyClient
from ..baselines.prophecy import ProphecyMiddlebox
from ..baselines.standalone import StandaloneServer
from ..sgx.attestation import AttestationService, provision_keys
from ..sgx.counters import TrustedCounterSubsystem
from ..sgx.enclave import (
    SGX_ECALL,
    Enclave,
    jni_enclave,
    null_enclave,
)
from ..sgx.sealed import SealedStorage
from ..sim.engine import Environment
from ..sim.network import (
    GBPS,
    ConstantLatency,
    UniformLatency,
    LatencyModel,
    Network,
    NicConfig,
    NormalLatency,
)
from ..sim.rng import RngTree
from ..sim.trace import Tracer

# Loaded GbE + kernel scheduling: tens-of-microseconds jitter. The
# jitter matters: replica execution skew is what makes concurrent
# reads conflict with in-flight writes (Fig. 10).
LAN_LATENCY = UniformLatency(30e-6, 90e-6)
WAN_DELAY = NormalLatency(0.100, 0.020)
MASTER_SECRET = b"troxy-repro-master-secret-0001"

#: Environment default for agreement batching (docs/BATCHING.md):
#: "off", an integer batch size, or "adaptive". Only consulted when the
#: caller passes neither ``batching`` nor an explicit ``config`` — tests
#: that pin a ClusterConfig stay insensitive to the CI batching matrix.
BATCHING_ENV = "REPRO_BATCHING"

#: Environment default for lease-based fast reads (docs/READS.md):
#: "off", "on", or a float lease duration in seconds. Only consulted
#: when the caller passes neither ``leases`` nor an explicit ``config``.
LEASES_ENV = "REPRO_LEASES"


def resolve_batching(batching: Union[BatchConfig, int, str, None]) -> BatchConfig:
    """Turn a batching knob into a :class:`BatchConfig`.

    Accepts a BatchConfig (returned as-is), an int batch size, or the
    strings "off"/"adaptive"/an integer literal as they arrive from
    CLIs and the environment. "off" (or 0) disables the batch layer
    entirely — the pre-batching code path. An int n >= 1 means
    ``BatchConfig.sized(n)``: size 1 still routes requests through the
    batch loop (the conformance suite pins it wire-equivalent to the
    pre-batching protocol), which is what "batch size 1" means in the
    CI matrix and the chaos campaigns.
    """
    if batching is None or isinstance(batching, BatchConfig):
        return batching if batching is not None else BatchConfig()
    if isinstance(batching, str):
        text = batching.strip().lower()
        if text in ("", "off", "none"):
            return BatchConfig()
        if text == "adaptive":
            return BatchConfig.adaptive_default()
        batching = int(text)
    if batching < 1:
        return BatchConfig()
    return BatchConfig.sized(batching)


def _apply_batching(
    config: Optional[ClusterConfig],
    f: int,
    batching: Union[BatchConfig, int, str, None],
) -> ClusterConfig:
    """Builder-side batching resolution (explicit arg > config > env)."""
    if batching is not None:
        base = config or ClusterConfig(f=f)
        return replace(base, batching=resolve_batching(batching))
    if config is not None:
        return config
    env_default = os.environ.get(BATCHING_ENV)
    if env_default:
        return ClusterConfig(f=f, batching=resolve_batching(env_default))
    return ClusterConfig(f=f)


def resolve_leases(leases: Union[LeaseConfig, bool, float, str, None]) -> LeaseConfig:
    """Turn a lease knob into a :class:`LeaseConfig`.

    Accepts a LeaseConfig (returned as-is), a bool, a float lease
    duration in seconds, or the strings "off"/"on"/a float literal as
    they arrive from CLIs and the environment.
    """
    if leases is None:
        return LeaseConfig()
    if isinstance(leases, LeaseConfig):
        return leases
    if isinstance(leases, bool):
        return LeaseConfig.on() if leases else LeaseConfig()
    if isinstance(leases, str):
        text = leases.strip().lower()
        if text in ("", "off", "none", "0", "false"):
            return LeaseConfig()
        if text in ("on", "1", "true"):
            return LeaseConfig.on()
        return LeaseConfig.on(duration=float(text))
    return LeaseConfig.on(duration=float(leases))


def _apply_leases(
    config: ClusterConfig,
    leases: Union[LeaseConfig, bool, float, str, None],
    explicit_config: bool,
) -> ClusterConfig:
    """Builder-side lease resolution (explicit arg > config > env).

    Mirrors :func:`_apply_batching`: tests that pin a ClusterConfig stay
    insensitive to the CI lease matrix.
    """
    if leases is not None:
        return replace(config, leases=resolve_leases(leases))
    if explicit_config:
        return config
    env_default = os.environ.get(LEASES_ENV)
    if env_default:
        return replace(config, leases=resolve_leases(env_default))
    return config


@dataclass
class BaselineCluster:
    """A running baseline (BL) deployment."""

    env: Environment
    net: Network
    config: ClusterConfig
    keyring: KeyRing
    replicas: list[Replica]
    machines: list[ClientMachine]
    tracer: Tracer
    attestation: AttestationService
    _client_counter: int = 0

    @property
    def leader(self) -> Replica:
        view = max(replica.view for replica in self.replicas)
        leader_id = self.config.leader_of(view)
        return next(r for r in self.replicas if r.replica_id == leader_id)

    def new_client(
        self,
        read_optimization: bool = True,
        request_distribution: str = "leader",
    ) -> BftClient:
        machine = self.machines[self._client_counter % len(self.machines)]
        self._client_counter += 1
        client = BftClient(
            machine,
            client_id=f"client-{self._client_counter}",
            config=self.config,
            keyring=self.keyring,
            read_optimization=read_optimization,
            request_distribution=request_distribution,
        )
        client.connect(self.replicas)
        return client


def _wan_client_links(net: Network, machine_names, replica_ids, wan: LatencyModel) -> None:
    for machine_name in machine_names:
        for replica_id in replica_ids:
            net.set_latency_symmetric(machine_name, replica_id, wan)


def make_trusted_subsystem(
    replica_id: str,
    keyring: KeyRing,
    attestation: AttestationService,
    enclave: Enclave,
    platform_id: str,
) -> TrustedCounterSubsystem:
    """Attest the enclave, then provision it with the group secret.

    Returns the counter subsystem holding the provisioned key, backed by
    sealed storage (counters survive enclave reboots).
    """
    provisioned = provision_keys(
        attestation, platform_id, enclave, enclave.measurement, keyring
    )
    storage = SealedStorage(MASTER_SECRET + platform_id.encode(), enclave.measurement)
    return TrustedCounterSubsystem(replica_id, provisioned.troxy_group(), storage=storage)


def build_baseline(
    seed: int = 0,
    f: int = 1,
    app_factory: Callable[[], Application] = None,
    client_machines: int = 2,
    wan: Optional[LatencyModel] = None,
    client_nic: Optional[NicConfig] = None,
    replica_cores: int = 8,
    config: Optional[ClusterConfig] = None,
    batching: Union[BatchConfig, int, str, None] = None,
    trace: bool = False,
) -> BaselineCluster:
    """Assemble the original Hybster deployment with client-side voting."""
    if app_factory is None:
        raise ValueError("app_factory is required")
    config = _apply_batching(config, f, batching)
    env = Environment()
    rng = RngTree(seed)
    tracer = Tracer(enabled=trace)
    net = Network(env, rng_tree=rng, default_latency=LAN_LATENCY, tracer=tracer)
    keyring = KeyRing(MASTER_SECRET)
    attestation = AttestationService(MASTER_SECRET + b"/ias")

    replicas = []
    for replica_id in config.replica_ids:
        node = net.add_node(replica_id, cores=replica_cores)
        attestation.register_platform(replica_id)
        # Hybster's own trusted subsystem runs in SGX reached over JNI.
        boundary = jni_enclave(node, f"tss-{replica_id}", code_identity="hybster-tss-v1")
        counters = make_trusted_subsystem(
            replica_id, keyring, attestation, boundary, replica_id
        )
        replica = Replica(
            env=env,
            net=net,
            node=node,
            replica_id=replica_id,
            config=config,
            app=app_factory(),
            keyring=keyring,
            counters=counters,
            trusted_boundary=boundary,
            tracer=tracer,
        )
        replicas.append(replica)

    machines = []
    for i in range(client_machines):
        name = f"client-machine-{i}"
        node = net.add_node(name, cores=replica_cores, nic=client_nic)
        machines.append(ClientMachine(env, net, node))
    if wan is not None:
        _wan_client_links(net, [m.node.name for m in machines], config.replica_ids, wan)

    return BaselineCluster(
        env=env,
        net=net,
        config=config,
        keyring=keyring,
        replicas=replicas,
        machines=machines,
        tracer=tracer,
        attestation=attestation,
    )


@dataclass
class TroxyCluster:
    """A running Troxy-backed deployment."""

    env: Environment
    net: Network
    config: ClusterConfig
    keyring: KeyRing
    replicas: list[Replica]
    hosts: list[TroxyHost]
    cores: list[TroxyCore]
    machines: list[ClientMachine]
    tracer: Tracer
    attestation: AttestationService
    _client_counter: int = 0

    @property
    def leader(self) -> Replica:
        view = max(replica.view for replica in self.replicas)
        leader_id = self.config.leader_of(view)
        return next(r for r in self.replicas if r.replica_id == leader_id)

    def host_of(self, replica_id: str) -> TroxyHost:
        return next(h for h in self.hosts if h.replica_id == replica_id)

    def new_client(
        self,
        contact_index: Optional[int] = None,
        request_timeout: float = 2.0,
    ) -> LegacyClient:
        """A pre-connected legacy client; contacts are round-robin unless
        pinned ("Troxy allows connections to any replica")."""
        machine = self.machines[self._client_counter % len(self.machines)]
        if contact_index is None:
            contact_index = self._client_counter % len(self.hosts)
        self._client_counter += 1
        client = LegacyClient(
            machine,
            client_id=f"client-{self._client_counter}",
            keyring=self.keyring,
            hosts=self.hosts,
            contact_index=contact_index,
            request_timeout=request_timeout,
        )
        client.connect_instant()
        return client


BOUNDARIES = {
    "sgx": SGX_ECALL,  # etroxy: Troxy inside an SGX enclave
    "jni": None,  # ctroxy: C/C++ outside SGX, reached over JNI
    "none": None,  # free boundary (ablations)
}


def _build_troxy_replica(
    *,
    env: Environment,
    net: Network,
    rng: RngTree,
    keyring: KeyRing,
    attestation: AttestationService,
    tracer: Tracer,
    config: ClusterConfig,
    replica_id: str,
    app_factory: Callable[[], Application],
    boundary: str,
    fast_reads: bool,
    replica_cores: int,
    monitor_factory,
    cache_entries: int,
    cache_outside: bool,
    epc_bytes: Optional[int],
    query_timeout: float,
    router=None,
    keys_fn=None,
):
    """Assemble one server: node, trusted subsystem, replica, Troxy.

    Shared by :func:`build_troxy` and the sharded builder
    (:func:`repro.shard.cluster.build_sharded`) so both wire a server
    identically — the shard-conformance suite pins a one-group sharded
    deployment wire-identical to this unsharded path.
    """
    node = net.add_node(replica_id, cores=replica_cores)
    attestation.register_platform(replica_id)
    tss_boundary = jni_enclave(node, f"tss-{replica_id}", code_identity="hybster-tss-v1")
    counters = make_trusted_subsystem(
        replica_id, keyring, attestation, tss_boundary, replica_id
    )
    replica = Replica(
        env=env,
        net=net,
        node=node,
        replica_id=replica_id,
        config=config,
        app=app_factory(),
        keyring=keyring,
        counters=counters,
        trusted_boundary=tss_boundary,
        tracer=tracer,
        owns_inbox=False,
    )
    if boundary == "sgx":
        enclave_kwargs = {} if epc_bytes is None else {"epc_bytes": epc_bytes}
        troxy_enclave = Enclave(
            node, f"troxy-{replica_id}", code_identity="troxy-v1",
            costs=SGX_ECALL, **enclave_kwargs,
        )
        runtime = "cpp_sgx"
    elif boundary == "jni":
        troxy_enclave = jni_enclave(node, f"troxy-{replica_id}", code_identity="troxy-v1")
        runtime = "cpp"
    else:
        troxy_enclave = null_enclave(node, f"troxy-{replica_id}")
        runtime = "cpp"
    # The Troxy enclave is attested before receiving the cluster keys.
    provisioned = provision_keys(
        attestation, replica_id, troxy_enclave, troxy_enclave.measurement, keyring
    )
    lease_counters = None
    if config.leases.enabled:
        # The lease fence lives in the *Troxy* enclave (the tss counters
        # belong to Hybster's subsystem): its own sealed monotonic
        # counter survives enclave reboots, which is what stops a
        # rolled-back Troxy from re-installing an already-revoked lease.
        lease_counters = TrustedCounterSubsystem(
            f"troxy-{replica_id}",
            provisioned.troxy_group(),
            storage=SealedStorage(
                MASTER_SECRET + replica_id.encode() + b"/troxy-lease",
                troxy_enclave.measurement,
            ),
        )
    core = TroxyCore(
        node=node,
        enclave=troxy_enclave,
        replica_id=replica_id,
        config=config,
        keyring=provisioned,
        rng=rng.derive("troxy", replica_id),
        runtime=runtime,
        fast_reads=fast_reads,
        cache=FastReadCache(
            troxy_enclave, max_entries=cache_entries, store_outside=cache_outside
        ),
        monitor=monitor_factory() if monitor_factory else ConflictMonitor(),
        keys_fn=keys_fn,
        router=router,
        counters=lease_counters,
    )
    if config.leases.enabled:
        # Leader-side lease state (any replica may lead after a view
        # change, so every replica carries a manager + directory mirror).
        replica.lease_manager = LeaseManager(
            replica_id, keyring.troxy_instance(replica_id), config.leases
        )
        replica.lease_directory = LeaseDirectory()
        replica.lease_keys_fn = keys_fn or (lambda op: (op.key,))
    host = TroxyHost(
        env=env,
        net=net,
        node=node,
        replica=replica,
        core=core,
        enclave=troxy_enclave,
        query_timeout=query_timeout,
    )
    return replica, host, core


def build_troxy(
    seed: int = 0,
    f: int = 1,
    app_factory: Callable[[], Application] = None,
    boundary: str = "sgx",
    fast_reads: bool = True,
    client_machines: int = 2,
    wan: Optional[LatencyModel] = None,
    client_nic: Optional[NicConfig] = None,
    replica_cores: int = 8,
    config: Optional[ClusterConfig] = None,
    batching: Union[BatchConfig, int, str, None] = None,
    leases: Union[LeaseConfig, bool, float, str, None] = None,
    monitor_factory: Callable[[], ConflictMonitor] = None,
    cache_entries: int = 65536,
    cache_outside: bool = True,
    epc_bytes: Optional[int] = None,
    query_timeout: float = 0.1,
    trace: bool = False,
) -> TroxyCluster:
    """Assemble a Troxy-backed Hybster deployment.

    ``boundary`` selects the prototype variant: ``"sgx"`` is *etroxy*
    (enclave transition costs), ``"jni"`` is *ctroxy* (C/C++ outside
    SGX), ``"none"`` removes the boundary entirely (ablation).
    """
    if app_factory is None:
        raise ValueError("app_factory is required")
    if boundary not in BOUNDARIES:
        raise ValueError(f"boundary must be one of {sorted(BOUNDARIES)}: {boundary!r}")
    explicit_config = config is not None
    config = _apply_batching(config, f, batching)
    config = _apply_leases(config, leases, explicit_config)
    env = Environment()
    rng = RngTree(seed)
    tracer = Tracer(enabled=trace)
    net = Network(env, rng_tree=rng, default_latency=LAN_LATENCY, tracer=tracer)
    keyring = KeyRing(MASTER_SECRET)
    attestation = AttestationService(MASTER_SECRET + b"/ias")

    replicas, hosts, cores = [], [], []
    for replica_id in config.replica_ids:
        replica, host, core = _build_troxy_replica(
            env=env,
            net=net,
            rng=rng,
            keyring=keyring,
            attestation=attestation,
            tracer=tracer,
            config=config,
            replica_id=replica_id,
            app_factory=app_factory,
            boundary=boundary,
            fast_reads=fast_reads,
            replica_cores=replica_cores,
            monitor_factory=monitor_factory,
            cache_entries=cache_entries,
            cache_outside=cache_outside,
            epc_bytes=epc_bytes,
            query_timeout=query_timeout,
        )
        replicas.append(replica)
        hosts.append(host)
        cores.append(core)

    machines = []
    for i in range(client_machines):
        name = f"client-machine-{i}"
        node = net.add_node(name, cores=replica_cores, nic=client_nic)
        machines.append(ClientMachine(env, net, node))
    if wan is not None:
        _wan_client_links(net, [m.node.name for m in machines], config.replica_ids, wan)

    return TroxyCluster(
        env=env,
        net=net,
        config=config,
        keyring=keyring,
        replicas=replicas,
        hosts=hosts,
        cores=cores,
        machines=machines,
        tracer=tracer,
        attestation=attestation,
    )


@dataclass
class StandaloneCluster:
    """A running unreplicated deployment (the Jetty stand-in)."""

    env: Environment
    net: Network
    keyring: KeyRing
    server: "StandaloneServer"
    machines: list[ClientMachine]
    tracer: Tracer
    _client_counter: int = 0

    def new_client(self, request_timeout: float = 2.0) -> LegacyClient:
        machine = self.machines[self._client_counter % len(self.machines)]
        self._client_counter += 1
        client = LegacyClient(
            machine,
            client_id=f"client-{self._client_counter}",
            keyring=self.keyring,
            hosts=[self.server],
            request_timeout=request_timeout,
        )
        client.connect_instant()
        return client


def build_standalone(
    seed: int = 0,
    app_factory: Callable[[], Application] = None,
    client_machines: int = 2,
    wan: Optional[LatencyModel] = None,
    client_nic: Optional[NicConfig] = None,
    server_cores: int = 8,
    trace: bool = False,
) -> StandaloneCluster:
    """Assemble a single non-fault-tolerant server (latency floor)."""
    if app_factory is None:
        raise ValueError("app_factory is required")
    env = Environment()
    rng = RngTree(seed)
    tracer = Tracer(enabled=trace)
    net = Network(env, rng_tree=rng, default_latency=LAN_LATENCY, tracer=tracer)
    keyring = KeyRing(MASTER_SECRET)
    node = net.add_node("server-0", cores=server_cores)
    server = StandaloneServer(env, net, node, app_factory())
    machines = []
    for i in range(client_machines):
        name = f"client-machine-{i}"
        machines.append(ClientMachine(env, net, net.add_node(name, nic=client_nic)))
    if wan is not None:
        _wan_client_links(net, [m.node.name for m in machines], ["server-0"], wan)
    return StandaloneCluster(
        env=env, net=net, keyring=keyring, server=server, machines=machines, tracer=tracer
    )


@dataclass
class ProphecyCluster:
    """A running Prophecy-middlebox deployment."""

    env: Environment
    net: Network
    config: ClusterConfig
    keyring: KeyRing
    replicas: list[Replica]
    middlebox: "ProphecyMiddlebox"
    machines: list[ClientMachine]
    tracer: Tracer
    _client_counter: int = 0

    def new_client(self, request_timeout: float = 2.0) -> LegacyClient:
        machine = self.machines[self._client_counter % len(self.machines)]
        self._client_counter += 1
        client = LegacyClient(
            machine,
            client_id=f"client-{self._client_counter}",
            keyring=self.keyring,
            hosts=[self.middlebox],
            request_timeout=request_timeout,
        )
        client.connect_instant()
        return client


def build_prophecy(
    seed: int = 0,
    f: int = 1,
    app_factory: Callable[[], Application] = None,
    client_machines: int = 2,
    wan: Optional[LatencyModel] = None,
    client_nic: Optional[NicConfig] = None,
    replica_cores: int = 8,
    config: Optional[ClusterConfig] = None,
    trace: bool = False,
) -> ProphecyCluster:
    """Assemble the Prophecy comparator: replicas + middlebox + clients.

    The middlebox lives in the server-side LAN ("their voters are close
    to the replicas"); WAN delay, when configured, applies between the
    client machines and the middlebox.
    """
    if app_factory is None:
        raise ValueError("app_factory is required")
    config = config or ClusterConfig(f=f)
    env = Environment()
    rng = RngTree(seed)
    tracer = Tracer(enabled=trace)
    net = Network(env, rng_tree=rng, default_latency=LAN_LATENCY, tracer=tracer)
    keyring = KeyRing(MASTER_SECRET)
    attestation = AttestationService(MASTER_SECRET + b"/ias")

    replicas = []
    for replica_id in config.replica_ids:
        node = net.add_node(replica_id, cores=replica_cores)
        attestation.register_platform(replica_id)
        boundary = jni_enclave(node, f"tss-{replica_id}", code_identity="hybster-tss-v1")
        counters = make_trusted_subsystem(
            replica_id, keyring, attestation, boundary, replica_id
        )
        replicas.append(
            Replica(
                env=env, net=net, node=node, replica_id=replica_id, config=config,
                app=app_factory(), keyring=keyring, counters=counters,
                trusted_boundary=boundary, tracer=tracer,
            )
        )

    mb_node = net.add_node("prophecy-mb", cores=replica_cores)
    middlebox = ProphecyMiddlebox(
        env=env, net=net, node=mb_node, config=config, keyring=keyring,
        replicas=replicas, rng=rng.derive("prophecy"),
    )

    machines = []
    for i in range(client_machines):
        name = f"client-machine-{i}"
        machines.append(ClientMachine(env, net, net.add_node(name, nic=client_nic)))
    if wan is not None:
        _wan_client_links(net, [m.node.name for m in machines], ["prophecy-mb"], wan)

    return ProphecyCluster(
        env=env, net=net, config=config, keyring=keyring, replicas=replicas,
        middlebox=middlebox, machines=machines, tracer=tracer,
    )
