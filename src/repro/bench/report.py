"""Formatting of experiment results into paper-style tables."""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable

from .experiments import Point

RESULTS_DIR = Path(__file__).resolve().parents[3] / "benchmarks" / "results"


def format_throughput_series(title: str, points: Iterable[Point], x_label: str = "size") -> str:
    """Render throughput points as a series table (one row per x value)."""
    points = list(points)
    systems = []
    for point in points:
        if point.system not in systems:
            systems.append(point.system)
    xs = []
    for point in points:
        if point.x not in xs:
            xs.append(point.x)
    by_key = {(p.system, p.x): p for p in points}
    lines = [title, "=" * len(title)]
    header = f"{x_label:>10} | " + " | ".join(f"{s:>18}" for s in systems)
    lines.append(header)
    lines.append("-" * len(header))
    for x in xs:
        cells = []
        for system in systems:
            point = by_key.get((system, x))
            cells.append(f"{point.throughput:>12.0f} op/s" if point else " " * 18)
        lines.append(f"{str(x):>10} | " + " | ".join(cells))
    return "\n".join(lines)


def format_latency_series(title: str, points: Iterable[Point], x_label: str = "net") -> str:
    points = list(points)
    systems = []
    for point in points:
        if point.system not in systems:
            systems.append(point.system)
    xs = []
    for point in points:
        if point.x not in xs:
            xs.append(point.x)
    by_key = {(p.system, p.x): p for p in points}
    lines = [title, "=" * len(title)]
    header = f"{x_label:>10} | " + " | ".join(f"{s:>16}" for s in systems)
    lines.append(header)
    lines.append("-" * len(header))
    for x in xs:
        cells = []
        for system in systems:
            point = by_key.get((system, x))
            cells.append(f"{point.latency_ms:>12.2f} ms" if point else " " * 16)
        lines.append(f"{str(x):>10} | " + " | ".join(cells))
    return "\n".join(lines)


def ratio(points: list[Point], system_a: str, system_b: str, x) -> float:
    """throughput(a) / throughput(b) at the given x."""
    a = next(p for p in points if p.system == system_a and p.x == x)
    b = next(p for p in points if p.system == system_b and p.x == x)
    if b.throughput == 0:
        raise ZeroDivisionError(f"{system_b} measured zero throughput at {x}")
    return a.throughput / b.throughput


def save_and_print(name: str, text: str) -> None:
    """Print the table and persist it under benchmarks/results/."""
    print("\n" + text + "\n")
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")


def point_to_cell(point: Point) -> dict:
    """One benchmark cell as a JSON-serializable dict.

    Simulated results (throughput, latencies) are deterministic for a
    given seed; ``wall_s`` is the only host-dependent field, kept apart
    under ``sim`` next to the deterministic event counters so regression
    tooling can budget on counts and merely *report* wall-clock.
    """
    summary = point.summary
    extra = dict(point.extra or {})
    sim = extra.pop("sim", None)
    cell = {
        "figure": point.figure,
        "system": point.system,
        "x": point.x,
        "count": summary.count,
        "throughput_ops": summary.throughput,
        "mean_latency_s": summary.mean_latency,
        "p50_latency_s": summary.p50,
        "p95_latency_s": summary.p95,
        "p99_latency_s": summary.p99,
        "conflict_rate": summary.conflict_rate,
    }
    if extra:
        cell["extra"] = extra
    if sim is not None:
        cell["sim"] = {
            "wall_s": sim["wall_s"],
            "steps": sim["steps"],
            "scheduled_events": sim["scheduled_events"],
        }
    return cell


def save_bench_json(name: str, points: Iterable[Point], out_dir) -> Path:
    """Write ``BENCH_<name>.json`` with one entry per measured cell."""
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    path = out_dir / f"BENCH_{name}.json"
    payload = {"bench": name, "cells": [point_to_cell(p) for p in points]}
    path.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")
    return path
