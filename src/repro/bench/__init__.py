"""Benchmark harness: cluster builders, experiment runners, reporting."""

from .clusters import (
    WAN_DELAY,
    BaselineCluster,
    ProphecyCluster,
    StandaloneCluster,
    TroxyCluster,
    build_baseline,
    build_prophecy,
    build_standalone,
    build_troxy,
)
from .experiments import (
    Point,
    TableOneRow,
    fig6_ordered_writes_local,
    fig7_ordered_writes_wan,
    fig8_reads_local,
    fig9_reads_wan,
    fig10_write_contention,
    fig11_http_latency,
    table1_rows,
)
from .report import format_latency_series, format_throughput_series, ratio, save_and_print

__all__ = [
    "BaselineCluster",
    "Point",
    "ProphecyCluster",
    "StandaloneCluster",
    "TableOneRow",
    "TroxyCluster",
    "WAN_DELAY",
    "build_baseline",
    "build_prophecy",
    "build_standalone",
    "build_troxy",
    "fig10_write_contention",
    "fig11_http_latency",
    "fig6_ordered_writes_local",
    "fig7_ordered_writes_wan",
    "fig8_reads_local",
    "fig9_reads_wan",
    "format_latency_series",
    "format_throughput_series",
    "ratio",
    "save_and_print",
    "table1_rows",
]
