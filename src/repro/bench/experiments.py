"""Experiment runners: one function per table/figure of the evaluation.

Every function returns structured rows (and prints nothing); the
``benchmarks/`` suite formats them into the paper-style series and
asserts the reproduced *shapes*. Workload parameters follow Section VI:
echo service with configurable reply sizes, 100 +/- 20 ms WAN delay on
client links, 1 % writes for the contention scenario, and the HTTP page
service at ~500 req/s for Fig. 11.

Scale: set ``REPRO_BENCH_SCALE`` < 1.0 (e.g. 0.3) to shrink client
counts and measurement windows for quick runs; shapes are preserved.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Callable, Optional

from ..analysis.metrics import Collector, Summary
from ..apps.base import Operation, OpKind, Payload
from ..apps.echo import EchoService
from ..apps.httpd import HttpPageService, get_operation, post_operation, seed_pages
from ..hybster.config import BatchConfig
from ..sim.network import GBPS, NicConfig
from ..troxy.monitor import ConflictMonitor
from ..workloads.loadgen import ClosedLoop, PacedLoop
from .clusters import (
    WAN_DELAY,
    build_baseline,
    build_prophecy,
    build_standalone,
    build_troxy,
)

SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))

REQUEST_SIZES = (256, 1024, 4096, 8192)
REPLY_SIZES = (256, 1024, 4096, 8192)

#: WAN access link of each client machine. The testbed shapes client
#: traffic with netem; a finite-bandwidth access link is our equivalent
#: constraint (DESIGN.md, substitutions).
WAN_CLIENT_NIC = NicConfig(count=1, bandwidth=0.25 * GBPS)


def _scaled(value: int, minimum: int = 4) -> int:
    return max(minimum, int(value * SCALE))


@dataclass(frozen=True)
class Point:
    """One measured configuration."""

    figure: str
    system: str
    x: object
    summary: Summary
    extra: dict = None

    @property
    def throughput(self) -> float:
        return self.summary.throughput

    @property
    def latency_ms(self) -> float:
        return self.summary.mean_latency * 1000


def write_source(size: int, key_space: int = 64) -> Callable[[int, int], Operation]:
    def source(i: int, seq: int) -> Operation:
        return Operation(
            OpKind.WRITE, "set", key=f"k{(i + seq) % key_space}",
            body=Payload(b"w", padded_size=size),
        )

    return source


def read_source(request_size: int = 10, key_space: int = 16) -> Callable[[int, int], Operation]:
    def source(i: int, seq: int) -> Operation:
        return Operation(
            OpKind.READ, "get", key=f"k{(i + seq) % key_space}",
            body=Payload(b"r", padded_size=request_size),
        )

    return source


def mixed_source(
    write_ratio: float, rng, request_size: int = 10, key_space: int = 16
) -> Callable[[int, int], Operation]:
    def source(i: int, seq: int) -> Operation:
        key = f"k{(i + seq) % key_space}"
        if rng.random() < write_ratio:
            return Operation(OpKind.WRITE, "set", key=key,
                             body=Payload(b"w", padded_size=request_size))
        return Operation(OpKind.READ, "get", key=key,
                         body=Payload(b"r", padded_size=request_size))

    return source


def _run_system(
    system: str,
    op_source,
    reply_size: int,
    n_clients: int,
    warmup: float,
    duration: float,
    wan=None,
    client_nic: Optional[NicConfig] = None,
    seed: int = 42,
    read_optimization: bool = True,
    monitor_factory=None,
    fast_reads: bool = True,
    replica_cores: int = 2,
    request_distribution: str = "leader",
    batching=None,
    leases=None,
    obs=None,
):
    """Build one deployment, drive it closed-loop, return (cluster, Summary).

    ``replica_cores`` defaults to 2 (not the testbed's 8): it scales the
    saturation point down so the simulation reaches it with far fewer
    events. Every compared system is scaled identically, so throughput
    *ratios* — the reproduced quantity — are unaffected.

    ``obs`` accepts a :class:`repro.obs.ObsPlane` (duck-typed, so this
    module needs no obs import): it is attached right after the cluster
    is built — before clients connect, so session-installation ecalls
    are observed too — and the clients are wrapped so every invocation
    opens a root span.

    The returned cluster carries ``sim_stats`` — wall-clock seconds plus
    the deterministic ``env.steps`` / ``env.scheduled_events`` counters —
    for the ``--json`` benchmark emitter and the perf-smoke CI budgets.
    """
    wall_start = time.perf_counter()
    app_factory = lambda: EchoService(reply_size=reply_size)  # noqa: E731
    if system == "bl":
        cluster = build_baseline(
            seed=seed, app_factory=app_factory, wan=wan, client_nic=client_nic,
            replica_cores=replica_cores, batching=batching,
        )
        if obs is not None:
            obs.attach(cluster)
        clients = [
            cluster.new_client(
                read_optimization=read_optimization,
                request_distribution=request_distribution,
            )
            for _ in range(n_clients)
        ]
    elif system in ("ctroxy", "etroxy", "lease"):
        cluster = build_troxy(
            seed=seed,
            app_factory=app_factory,
            boundary="jni" if system == "ctroxy" else "sgx",
            wan=wan,
            client_nic=client_nic,
            monitor_factory=monitor_factory,
            fast_reads=fast_reads,
            replica_cores=replica_cores,
            batching=batching,
            leases=True if system == "lease" else leases,
        )
        if obs is not None:
            obs.attach(cluster)
        clients = [cluster.new_client() for _ in range(n_clients)]
    else:
        raise ValueError(f"unknown system {system!r}")
    if obs is not None:
        clients = obs.wrap_clients(clients)
    loadgen = ClosedLoop(cluster.env, clients, op_source, Collector())
    loadgen.start()
    start = cluster.env.now
    cluster.env.run(until=start + warmup + duration)
    summary = loadgen.collector.summarize(start + warmup, start + warmup + duration)
    cluster.sim_stats = {
        "wall_s": time.perf_counter() - wall_start,
        "steps": cluster.env.steps,
        "scheduled_events": cluster.env.scheduled_events,
    }
    return cluster, summary


# -- Fig. 6 / Fig. 7: totally ordered requests --------------------------------------


def fig6_ordered_writes_local(
    sizes=REQUEST_SIZES, n_clients: Optional[int] = None, duration: float = 0.25
) -> list[Point]:
    """Write-only workload, 10 B replies, LAN (Fig. 6)."""
    n_clients = n_clients if n_clients is not None else _scaled(64, minimum=16)
    points = []
    for size in sizes:
        for system in ("bl", "ctroxy", "etroxy"):
            cluster, summary = _run_system(
                system, write_source(size), reply_size=10,
                n_clients=n_clients, warmup=0.1, duration=duration,
            )
            points.append(Point("fig6", system, size, summary,
                                extra={"sim": cluster.sim_stats}))
    return points


def fig7_ordered_writes_wan(
    sizes=REQUEST_SIZES, n_clients: Optional[int] = None, duration: float = 2.0
) -> list[Point]:
    """Write-only workload with 100 +/- 20 ms client-link delay (Fig. 7).

    The baseline runs its client-side library in full: requests are
    distributed to every replica and f+1 matching replies cross the WAN
    back, so the constrained client access link carries n times the
    request bytes. Troxy clients exchange one request and one reply.
    """
    n_clients = n_clients if n_clients is not None else _scaled(850, minimum=64)
    points = []
    for size in sizes:
        for system in ("bl", "etroxy"):
            cluster, summary = _run_system(
                system, write_source(size), reply_size=10,
                n_clients=n_clients, warmup=1.5, duration=duration,
                wan=WAN_DELAY, client_nic=WAN_CLIENT_NIC,
                request_distribution="all",
            )
            points.append(Point("fig7", system, size, summary,
                                extra={"sim": cluster.sim_stats}))
    return points


# -- Fig. 8 / Fig. 9: read-only workloads -----------------------------------------------


def fig8_reads_local(
    reply_sizes=REPLY_SIZES, n_clients: Optional[int] = None, duration: float = 0.25
) -> list[Point]:
    """Read-only workload, 10 B requests, LAN (Fig. 8). BL uses the
    PBFT-like read optimization, Troxy the fast-read cache."""
    n_clients = n_clients if n_clients is not None else _scaled(64, minimum=16)
    points = []
    for reply_size in reply_sizes:
        for system in ("bl", "etroxy"):
            cluster, summary = _run_system(
                system, read_source(), reply_size=reply_size,
                n_clients=n_clients, warmup=0.1, duration=duration,
            )
            points.append(Point("fig8", system, reply_size, summary,
                                extra={"sim": cluster.sim_stats}))
    return points


def fig9_reads_wan(
    reply_sizes=REPLY_SIZES, n_clients: Optional[int] = None, duration: float = 2.0
) -> list[Point]:
    """Read-only workload over the WAN (Fig. 9).

    The baseline's read optimization downloads 2f+1 full replies over
    the constrained client access link; Troxy sends one (remote cache
    checks exchange only hashes, on the server LAN).
    """
    n_clients = n_clients if n_clients is not None else _scaled(1200, minimum=64)
    points = []
    for reply_size in reply_sizes:
        for system in ("bl", "etroxy"):
            cluster, summary = _run_system(
                system, read_source(), reply_size=reply_size,
                n_clients=n_clients, warmup=1.5, duration=duration,
                wan=WAN_DELAY, client_nic=WAN_CLIENT_NIC,
                request_distribution="all",
            )
            points.append(Point("fig9", system, reply_size, summary,
                                extra={"sim": cluster.sim_stats}))
    return points


def lease_reads(
    reply_size: int = 1024,
    n_clients: Optional[int] = None,
    duration: float = 0.25,
    wan_duration: float = 2.0,
) -> list[Point]:
    """Leased vs voted reads, LAN and WAN (docs/READS.md).

    Four cells on the fig8/fig9 read-only workload: ``etroxy`` (the
    fast-read cache with its per-read f+1 probe round) against
    ``lease`` (local serve under a leader-granted lease, no probe
    round), on the LAN and behind the 100±20 ms client link. The LAN
    lease cell *is* the local-serve latency — request decrypt, cache
    lookup, reply seal, nothing else — so the acceptance claim "WAN
    lease read p50 drops to local-serve latency" is checked literally:
    WAN lease p50 minus the WAN round trip lands on the LAN lease p50
    (see benchmarks/test_leases.py).
    """
    n_clients = n_clients if n_clients is not None else _scaled(16, minimum=8)
    points = []
    for net, wan, nic, dur, warmup in (
        ("local", None, None, duration, 0.1),
        ("wan", WAN_DELAY, WAN_CLIENT_NIC, wan_duration, 1.5),
    ):
        for system in ("etroxy", "lease"):
            cluster, summary = _run_system(
                system, read_source(key_space=4), reply_size=reply_size,
                n_clients=n_clients, warmup=warmup, duration=dur,
                wan=wan, client_nic=nic,
            )
            lease_hits = sum(c.stats.lease_read_hits for c in cluster.cores)
            probe_reads = sum(c.stats.fast_read_attempts for c in cluster.cores)
            points.append(Point(
                f"lease-{net}", system, reply_size, summary,
                extra={
                    "sim": cluster.sim_stats,
                    "lease_read_hits": lease_hits,
                    "fast_read_attempts": probe_reads,
                    "grants_installed": sum(
                        c.stats.lease_grants_installed for c in cluster.cores
                    ),
                },
            ))
    return points


# -- Fig. 10: concurrency handling -----------------------------------------------------------


def fig10_write_contention(
    n_clients: Optional[int] = None,
    duration: float = 0.4,
    reply_size: int = 4096,
    key_space: int = 1,
    write_ratio: float = 0.01,
) -> list[Point]:
    """1 % writes among reads on a small, contended key space (Fig. 10).

    Five bars: BL read-opt, BL all-ordered (reference), Troxy fast-read
    without the adaptive switch, Troxy with it, Troxy all-ordered
    (reference). The reported conflict rate is client-observed for the
    baseline (failed read quorums) and Troxy-observed for the fast-read
    cache (quorum mismatches / invalidated entries per fast attempt)."""
    import random

    n_clients = n_clients if n_clients is not None else _scaled(64, minimum=16)
    points = []

    def run(system, label, read_optimization=True, fast_reads=True, monitor_factory=None):
        rng = random.Random(1234)
        cluster, summary = _run_system(
            system, mixed_source(write_ratio, rng, key_space=key_space),
            reply_size=reply_size, n_clients=n_clients, warmup=0.15,
            duration=duration, read_optimization=read_optimization,
            fast_reads=fast_reads, monitor_factory=monitor_factory,
        )
        if system == "bl":
            conflict_rate = summary.conflict_rate
        else:
            attempts = sum(c.stats.fast_read_attempts for c in cluster.cores)
            conflicts = sum(
                c.stats.fast_read_conflicts + c.stats.fast_read_timeouts
                + c.cache.stats.misses
                for c in cluster.cores
            )
            conflict_rate = conflicts / attempts if attempts else 0.0
        points.append(
            Point("fig10", label, write_ratio, summary,
                  extra={"conflict_rate": conflict_rate,
                         "sim": cluster.sim_stats})
        )

    run("bl", "bl-read-opt")
    run("bl", "bl-ordered", read_optimization=False)
    # Troxy with the conflict monitor effectively disabled (threshold 1.0).
    run(
        "etroxy", "troxy-fast-read",
        monitor_factory=lambda: ConflictMonitor(threshold=1.0),
    )
    # Troxy with the adaptive total-order switch at its default threshold.
    run("etroxy", "troxy-adaptive")
    run("etroxy", "troxy-ordered", fast_reads=False)
    return points


# -- Batching sweep (docs/BATCHING.md) -------------------------------------------------------------


def batching_throughput(
    n_clients: Optional[int] = None,
    duration: float = 0.25,
    request_size: int = 1024,
    settings: tuple = ("off", "1", "4", "16", "adaptive"),
    read_reply_size: int = 1024,
) -> list[Point]:
    """Agreement-batching sweep on the fig6-style local write workload.

    One fixed client count, swept over batch settings. "off" is the
    pre-batching path (unbounded slot concurrency, no batch layer) and
    serves as the unbatched reference the CI smoke compares against.
    The numeric settings are ``BatchConfig.sized(n)``: all share the
    same fixed two-deep agreement pipeline, so batch size is the only
    variable — the classic batching ablation, where size 1 means one
    request per certified counter value. "adaptive" is the tuned
    arrival-rate-driven default. A fig8-style fast-read guard runs at
    batching off/adaptive — batched agreement must not move the
    fast-read p50, because fast reads never enter the ordering pipeline.
    """
    n_clients = n_clients if n_clients is not None else 32
    points = []
    for setting in settings:
        batching = (
            "off" if setting == "off"
            else BatchConfig.adaptive_default() if setting == "adaptive"
            else BatchConfig.sized(int(setting))
        )
        cluster, summary = _run_system(
            "etroxy", write_source(request_size), reply_size=10,
            n_clients=n_clients, warmup=0.1, duration=duration,
            batching=batching,
        )
        stats = cluster.leader.stats
        points.append(Point(
            "batching-writes", f"etroxy/b={setting}", setting, summary,
            extra={
                "sim": cluster.sim_stats,
                "batches": stats.batches_sent,
                "batched_requests": stats.batched_requests,
                "avg_batch": (
                    stats.batched_requests / stats.batches_sent
                    if stats.batches_sent else 1.0
                ),
                "max_pipeline_depth": stats.max_pipeline_depth,
                "flush_reasons": {
                    "size": stats.batch_flush_size,
                    "idle": stats.batch_flush_idle,
                    "drain": stats.batch_flush_drain,
                    "timeout": stats.batch_flush_timeout,
                },
            },
        ))
    for setting in ("off", "adaptive"):
        cluster, summary = _run_system(
            "etroxy", read_source(), reply_size=read_reply_size,
            n_clients=n_clients, warmup=0.1, duration=duration,
            batching="off" if setting == "off" else BatchConfig.adaptive_default(),
        )
        points.append(Point(
            "batching-reads", f"etroxy/b={setting}", setting, summary,
            extra={"sim": cluster.sim_stats},
        ))
    return points


# -- Sharding: write throughput vs agreement-group count ------------------------------------------


def sharding_throughput(
    shard_counts: tuple = (1, 2, 4, 8),
    n_clients: Optional[int] = None,
    duration: float = 0.25,
    request_size: int = 1024,
    key_space: int = 64,
    read_reply_size: int = 1024,
) -> list[Point]:
    """Write-throughput ladder over agreement-group counts (docs/SHARDING.md).

    The fig6-style local write workload, uniform over ``key_space`` keys,
    driven against :func:`repro.shard.build_sharded` cells at 1/2/4/8
    groups. Keys are routed by the consistent-hash ring, so at N groups
    roughly (N-1)/N of requests arrive at a Troxy outside the owning
    group and take the forwarding path; the aggregate still scales
    because each group runs its own leader, sealed counters, and batch
    assembler in parallel.

    The client count is held *fixed across the ladder* (saturating the
    eight-group cell), so shards are the only variable. A fig8-style
    fast-read guard runs build_troxy against build_sharded(shards=1):
    the single-group sharded cell is wire-identical to the unsharded
    build (the router short-circuits local keys), so the read p50 must
    not move at all.
    """
    from ..shard import build_sharded  # local: repro.shard builds on bench.clusters

    n_clients = n_clients if n_clients is not None else 96
    app_factory = lambda: EchoService(reply_size=10)  # noqa: E731
    points = []
    for shards in shard_counts:
        wall_start = time.perf_counter()
        cluster = build_sharded(
            seed=42, shards=shards, app_factory=app_factory, replica_cores=2,
        )
        clients = [cluster.new_client() for _ in range(n_clients)]
        loadgen = ClosedLoop(
            cluster.env, clients, write_source(request_size, key_space=key_space),
            Collector(),
        )
        loadgen.start()
        start = cluster.env.now
        cluster.env.run(until=start + 0.1 + duration)
        summary = loadgen.collector.summarize(start + 0.1, start + 0.1 + duration)
        stats = cluster.router.stats
        points.append(Point(
            "sharding-writes", f"etroxy/s={shards}", shards, summary,
            extra={
                "sim": {
                    "wall_s": time.perf_counter() - wall_start,
                    "steps": cluster.env.steps,
                    "scheduled_events": cluster.env.scheduled_events,
                },
                "lookups": stats.lookups,
                "forwards": stats.forwards,
                "forward_share": (
                    stats.forwards / stats.lookups if stats.lookups else 0.0
                ),
                "ring_split": cluster.ring.load_split(
                    [f"k{i}" for i in range(key_space)]
                ),
            },
        ))
    # Fast-read guard: the shards=1 cell must not tax the read path.
    for system, builder in (("unsharded", None), ("s=1", build_sharded)):
        if builder is None:
            cluster, summary = _run_system(
                "etroxy", read_source(), reply_size=read_reply_size,
                n_clients=32, warmup=0.1, duration=duration,
            )
        else:
            wall_start = time.perf_counter()
            cluster = builder(
                seed=42, shards=1,
                app_factory=lambda: EchoService(reply_size=read_reply_size),
                replica_cores=2,
            )
            clients = [cluster.new_client() for _ in range(32)]
            loadgen = ClosedLoop(cluster.env, clients, read_source(), Collector())
            loadgen.start()
            start = cluster.env.now
            cluster.env.run(until=start + 0.1 + duration)
            summary = loadgen.collector.summarize(
                start + 0.1, start + 0.1 + duration)
            cluster.sim_stats = {
                "wall_s": time.perf_counter() - wall_start,
                "steps": cluster.env.steps,
                "scheduled_events": cluster.env.scheduled_events,
            }
        points.append(Point(
            "sharding-reads", f"etroxy/{system}", system, summary,
            extra={"sim": cluster.sim_stats},
        ))
    return points


# -- Fig. 11: HTTP service latency ----------------------------------------------------------------


def fig11_http_latency(
    n_clients: Optional[int] = None,
    total_rate: float = 500.0,
    duration: float = 3.0,
    wan_only: bool = False,
) -> list[Point]:
    """Mean latency of the HTTP page service at a non-saturating load,
    local network and WAN (Fig. 11)."""
    import random

    n_clients = n_clients if n_clients is not None else _scaled(100, minimum=20)
    rate_per_client = total_rate / n_clients
    pages = sorted(seed_pages().keys())
    points = []

    def op_source_factory(seed):
        rng = random.Random(seed)

        def source(i, seq):
            page = pages[(i * 7 + seq) % len(pages)]
            if rng.random() < 0.10:  # GET-heavy mix with some POSTs
                return post_operation(page, b"p" * 200)
            return get_operation(page, extra_payload=170)

        return source

    scenarios = [("wan", WAN_DELAY)] if wan_only else [("local", None), ("wan", WAN_DELAY)]
    for scenario, wan in scenarios:
        nic = WAN_CLIENT_NIC if wan is not None else None
        for system in ("jetty", "bl", "prophecy", "troxy"):
            wall_start = time.perf_counter()
            if system == "jetty":
                cluster = build_standalone(
                    seed=42, app_factory=HttpPageService, wan=wan, client_nic=nic
                )
                clients = [cluster.new_client() for _ in range(n_clients)]
            elif system == "bl":
                cluster = build_baseline(
                    seed=42, app_factory=HttpPageService, wan=wan, client_nic=nic
                )
                clients = [cluster.new_client() for _ in range(n_clients)]
            elif system == "prophecy":
                cluster = build_prophecy(
                    seed=42, app_factory=HttpPageService, wan=wan, client_nic=nic
                )
                clients = [cluster.new_client() for _ in range(n_clients)]
            else:
                cluster = build_troxy(
                    seed=42, app_factory=HttpPageService, wan=wan, client_nic=nic
                )
                clients = [cluster.new_client() for _ in range(n_clients)]
            loadgen = PacedLoop(
                cluster.env, clients, op_source_factory(7), Collector(),
                rate_per_client=rate_per_client,
            )
            loadgen.start()
            start = cluster.env.now
            warmup = 1.0
            cluster.env.run(until=start + warmup + duration)
            summary = loadgen.collector.summarize(start + warmup, start + warmup + duration)
            sim_stats = {
                "wall_s": time.perf_counter() - wall_start,
                "steps": cluster.env.steps,
                "scheduled_events": cluster.env.scheduled_events,
            }
            points.append(Point("fig11", system, scenario, summary,
                                extra={"sim": sim_stats}))
    return points


# -- Table I ------------------------------------------------------------------------------------------


@dataclass(frozen=True)
class TableOneRow:
    system: str
    replicas: str
    read_quorum: str
    consistency: str


def table1_rows() -> list[TableOneRow]:
    """The static system comparison (Table I). Prophecy's replica count
    reflects its PBFT base; the consistency column is *verified* by
    tests/baselines (stale-read witness) and the linearizability suite."""
    return [
        TableOneRow("BL", "2f+1", "f+1 replicas", "Strong"),
        TableOneRow("Prophecy", "3f+1", "1 replica + middlebox", "Weak"),
        TableOneRow("Troxy", "2f+1", "f+1 replicas", "Strong"),
    ]
