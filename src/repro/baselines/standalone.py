"""Standalone unreplicated server (the Jetty stand-in, Section VI-D).

Serves the same :class:`Application` over the same TLS envelopes as the
replicated deployments, with no fault tolerance whatsoever. It is the
latency floor the HTTP experiment compares against, and it implements
the same contact-point duck type as :class:`TroxyHost`, so the very same
:class:`LegacyClient` drives it — the transparency claim in code form.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..apps.base import Application
from ..crypto.costs import RuntimeProfile, profile as cost_profile
from ..crypto.tls import TlsEndpoint, TlsError
from ..hybster.messages import Reply, Request
from ..hybster.secure import SecureEnvelope, open_body, seal_body
from ..sim.engine import Environment
from ..sim.network import Network, Node


@dataclass
class StandaloneStats:
    requests: int = 0
    invalid: int = 0


class StandaloneServer:
    """One ordinary (non-replicated) application server."""

    def __init__(
        self,
        env: Environment,
        net: Network,
        node: Node,
        app: Application,
        runtime: str = "java",
    ):
        self.env = env
        self.net = net
        self.node = node
        self.app = app
        self.profile: RuntimeProfile = cost_profile(runtime)
        self.stats = StandaloneStats()
        self._sessions: dict[str, TlsEndpoint] = {}
        self._stopped = False
        env.process(self._loop(), name=f"{node.name}:standalone")

    # Duck-type compatibility with TroxyHost for LegacyClient.
    @property
    def replica_id(self) -> str:
        return self.node.name

    def stop(self) -> None:
        self._stopped = True
        self.node.crash()

    def install_client_session(self, client_id: str, endpoint: TlsEndpoint):
        self._sessions[client_id] = endpoint
        return
        yield  # pragma: no cover - generator marker

    def _loop(self):
        while True:
            msg = yield self.node.inbox.get()
            if self._stopped:
                continue
            payload = msg.payload
            if isinstance(payload, SecureEnvelope) and isinstance(payload.body, Request):
                self.env.process(self._serve(payload, msg.src))

    def _serve(self, envelope: SecureEnvelope, src: str):
        request = envelope.body
        endpoint = self._sessions.get(request.client_id)
        if endpoint is None:
            self.stats.invalid += 1
            return
        yield from self.node.compute(self.profile.aead_cost(envelope.wire_size))
        try:
            open_body(endpoint, envelope)
        except TlsError:
            self.stats.invalid += 1
            return
        self.stats.requests += 1
        yield from self.node.compute(self.app.execution_cost(request.op))
        result = self.app.execute(request.op)
        reply = Reply(
            replica_id=self.node.name,
            client_id=request.client_id,
            request_id=request.request_id,
            result=result,
            request_digest=request.digest(),
        )
        yield from self.node.compute(self.profile.aead_cost(reply.wire_size))
        self.net.send(
            self.node.name, src, seal_body(endpoint, reply), stream=request.client_id
        )
