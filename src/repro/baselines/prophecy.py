"""Prophecy-style middlebox (the Section VI-D comparator).

Prophecy [5] interposes a trusted *middlebox* between clients and a BFT
service. It keeps a sketch cache mapping read requests to (reply digest,
reply body). A cached GET is validated against **one** randomly chosen
replica's unordered answer — cheap, but the result only reflects the
state of the latest *read*: Prophecy trades consistency for throughput
and may return stale data (Table I: weak consistency). Cache misses and
writes go through the full BFT invocation, whose result refreshes the
sketch.

Differences kept from the paper: the middlebox is a full commodity
machine (large TCB: OS + network stack + proxy), not an enclave, and it
terminates the clients' TLS itself. The original runs over PBFT with
3f+1 replicas; this reproduction drives our Hybster substrate instead
and reports Prophecy's native 3f+1 requirement in Table I (documented
substitution — the middlebox mechanics, which are what the latency
experiment measures, are faithful).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..apps.base import Operation, Payload
from ..crypto.costs import RuntimeProfile, profile as cost_profile
from ..crypto.keys import KeyRing
from ..crypto.tls import TlsEndpoint, TlsError
from ..hybster.client import BftClient, ClientMachine
from ..hybster.config import ClusterConfig
from ..hybster.messages import Reply, Request
from ..hybster.secure import SecureEnvelope, open_body, seal_body
from ..sim.engine import Environment
from ..sim.network import Network, Node


@dataclass
class SketchEntry:
    reply_digest: bytes
    result: Payload


@dataclass
class ProphecyStats:
    requests: int = 0
    sketch_hits: int = 0
    sketch_validation_failures: int = 0
    full_invocations: int = 0
    invalid: int = 0


class ProphecyMiddlebox:
    """Trusted middlebox with a sketch cache in front of the BFT service."""

    def __init__(
        self,
        env: Environment,
        net: Network,
        node: Node,
        config: ClusterConfig,
        keyring: KeyRing,
        replicas,
        rng,
        runtime: str = "java",
        validation_timeout: float = 1.0,
    ):
        self.env = env
        self.net = net
        self.node = node
        self.config = config
        self.keyring = keyring
        self.rng = rng
        self.profile: RuntimeProfile = cost_profile(runtime)
        self.validation_timeout = validation_timeout
        self.stats = ProphecyStats()
        self._sessions: dict[str, TlsEndpoint] = {}
        self._sketch: dict[bytes, SketchEntry] = {}
        self._stopped = False
        # The middlebox embeds the ordinary client-side BFT library for
        # ordered operations and single-replica validations.
        self._machine = ClientMachine(env, net, node, runtime=runtime, owns_inbox=False)
        self._bft = BftClient(
            self._machine,
            client_id=f"prophecy@{node.name}",
            config=config,
            keyring=keyring,
            read_optimization=True,
        )
        self._bft.connect(replicas)
        env.process(self._loop(), name=f"{node.name}:prophecy")

    # Duck-type compatibility with TroxyHost for LegacyClient.
    @property
    def replica_id(self) -> str:
        return self.node.name

    def stop(self) -> None:
        self._stopped = True
        self.node.crash()

    def install_client_session(self, client_id: str, endpoint: TlsEndpoint):
        self._sessions[client_id] = endpoint
        return
        yield  # pragma: no cover - generator marker

    def _loop(self):
        while True:
            msg = yield self.node.inbox.get()
            if self._stopped:
                continue
            payload = msg.payload
            if isinstance(payload, SecureEnvelope) and isinstance(payload.body, Request):
                self.env.process(self._serve(payload, msg.src))
            else:
                # Replies for the embedded BFT client.
                self._machine.deliver(msg)

    def _serve(self, envelope: SecureEnvelope, src: str):
        request = envelope.body
        endpoint = self._sessions.get(request.client_id)
        if endpoint is None:
            self.stats.invalid += 1
            return
        yield from self.node.compute(self.profile.aead_cost(envelope.wire_size))
        try:
            open_body(endpoint, envelope)
        except TlsError:
            self.stats.invalid += 1
            return
        self.stats.requests += 1
        result = yield from self._execute(request.op)
        reply = Reply(
            replica_id=self.node.name,
            client_id=request.client_id,
            request_id=request.request_id,
            result=result,
            request_digest=request.digest(),
        )
        yield from self.node.compute(self.profile.aead_cost(reply.wire_size))
        self.net.send(
            self.node.name, src, seal_body(endpoint, reply), stream=request.client_id
        )

    def _execute(self, op: Operation):
        if op.is_read:
            cached = self._sketch.get(op.digest())
            if cached is not None:
                validated = yield from self._validate(op, cached)
                if validated is not None:
                    self.stats.sketch_hits += 1
                    return validated
                self.stats.sketch_validation_failures += 1
        self.stats.full_invocations += 1
        outcome = yield from self._bft.invoke(op)
        if op.is_read:
            self._sketch[op.digest()] = SketchEntry(
                outcome.result.digest(), outcome.result
            )
        return outcome.result

    def _validate(self, op: Operation, cached: SketchEntry) -> Optional[Payload]:
        """Ask ONE random replica; accept the cached body if digests match.

        This single-replica check is Prophecy's whole consistency story:
        if the chosen replica is stale (or lying consistently with the
        sketch), a stale result reaches the client.
        """
        reply = yield from self._bft.query_one(
            op, self.rng.choice(self.config.replica_ids), self.validation_timeout
        )
        if reply is None:
            return None
        if reply.result_digest() != cached.reply_digest:
            # The replica moved on: refresh the sketch via a full read.
            return None
        return cached.result
