"""Comparison systems: standalone server and Prophecy middlebox."""

from .prophecy import ProphecyMiddlebox, ProphecyStats, SketchEntry
from .standalone import StandaloneServer, StandaloneStats

__all__ = [
    "ProphecyMiddlebox",
    "ProphecyStats",
    "SketchEntry",
    "StandaloneServer",
    "StandaloneStats",
]
