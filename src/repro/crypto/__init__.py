"""Cryptographic substrate: real primitives, cost profiles, simulated TLS.

* :mod:`repro.crypto.primitives` — SHA-256, HMAC keys (real digests).
* :mod:`repro.crypto.costs` — per-runtime CPU cost profiles
  (``JAVA``/``CPP``/``CPP_SGX``) charged as simulated time.
* :mod:`repro.crypto.tls` — sessions with integrity + replay protection.
* :mod:`repro.crypto.keys` — cluster key derivation (KeyRing).
"""

from .costs import CPP, CPP_SGX, JAVA, OpCost, RuntimeProfile, profile
from .keys import KeyRing
from .primitives import DIGEST_SIZE, MAC_SIZE, MacKey, derive_key, digest_of, sha256
from .tls import (
    HANDSHAKE_BYTES,
    HANDSHAKE_CPU,
    HANDSHAKE_FLIGHTS,
    TLS_RECORD_OVERHEAD,
    TlsEndpoint,
    TlsError,
    TlsRecord,
    TlsSession,
    establish_session,
)

__all__ = [
    "CPP",
    "CPP_SGX",
    "DIGEST_SIZE",
    "HANDSHAKE_BYTES",
    "HANDSHAKE_CPU",
    "HANDSHAKE_FLIGHTS",
    "JAVA",
    "KeyRing",
    "MAC_SIZE",
    "MacKey",
    "OpCost",
    "RuntimeProfile",
    "TLS_RECORD_OVERHEAD",
    "TlsEndpoint",
    "TlsError",
    "TlsRecord",
    "TlsSession",
    "derive_key",
    "digest_of",
    "establish_session",
    "profile",
    "sha256",
]
