"""Runtime cost profiles for cryptographic work.

The paper's performance crossovers hinge on one fact (Section VI-C1):
    "authenticating messages with large payload is faster in C/C++ than
     it is in Java."

We model every crypto operation as ``base + per_byte * nbytes`` seconds
of CPU time and define three profiles matching the three evaluated
stacks:

* ``JAVA``    — the baseline Hybster replica and its client-side library.
* ``CPP``     — *ctroxy*: the Troxy code outside SGX (JNI-attached).
* ``CPP_SGX`` — *etroxy*: same code inside the enclave; the crypto speed
  is identical, the SGX tax (transitions, buffer copies, paging) is
  charged separately by :mod:`repro.sgx`.

The constants are calibration parameters, not measurements of this
machine; they were tuned so the reproduced figures match the paper's
*shapes* (see EXPERIMENTS.md). They are all in one place on purpose.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class OpCost:
    """Linear cost model for one operation class: base + per_byte * n."""

    base: float  # seconds per operation
    per_byte: float  # seconds per payload byte

    def cost(self, nbytes: int) -> float:
        if nbytes < 0:
            raise ValueError(f"negative payload size: {nbytes}")
        return self.base + self.per_byte * nbytes


@dataclass(frozen=True)
class RuntimeProfile:
    """CPU cost of crypto and message handling for one runtime stack."""

    name: str
    hash: OpCost  # SHA-256 style digest
    mac: OpCost  # HMAC create/verify
    aead: OpCost  # TLS record seal/open (encrypt+MAC)
    serialize: OpCost  # message marshalling/unmarshalling

    def hash_cost(self, nbytes: int) -> float:
        return self.hash.cost(nbytes)

    def mac_cost(self, nbytes: int) -> float:
        return self.mac.cost(nbytes)

    def aead_cost(self, nbytes: int) -> float:
        return self.aead.cost(nbytes)

    def serialize_cost(self, nbytes: int) -> float:
        return self.serialize.cost(nbytes)


# Calibrated so that: HMAC over 8 KB costs ~7.4 us in Java vs ~2.1 us in
# C/C++ (3.5x gap, consistent with JCA vs OpenSSL measurements of the
# era), while small-message costs are dominated by the per-op base.
JAVA = RuntimeProfile(
    name="java",
    hash=OpCost(base=1.2e-6, per_byte=0.75e-9),
    mac=OpCost(base=1.6e-6, per_byte=0.90e-9),
    aead=OpCost(base=2.4e-6, per_byte=1.35e-9),
    serialize=OpCost(base=0.9e-6, per_byte=0.35e-9),
)

CPP = RuntimeProfile(
    name="cpp",
    hash=OpCost(base=0.4e-6, per_byte=0.20e-9),
    mac=OpCost(base=0.5e-6, per_byte=0.20e-9),
    aead=OpCost(base=0.8e-6, per_byte=0.30e-9),
    serialize=OpCost(base=0.3e-6, per_byte=0.10e-9),
)

# Inside the enclave the instruction stream is the same as CPP; the SGX
# overhead (ecall transitions, buffer copies, EPC paging) is modelled by
# repro.sgx.enclave and charged on top of these costs.
CPP_SGX = RuntimeProfile(
    name="cpp_sgx",
    hash=CPP.hash,
    mac=CPP.mac,
    aead=CPP.aead,
    serialize=CPP.serialize,
)

PROFILES = {p.name: p for p in (JAVA, CPP, CPP_SGX)}


def profile(name: str) -> RuntimeProfile:
    """Look up a runtime profile by name (``java``/``cpp``/``cpp_sgx``)."""
    try:
        return PROFILES[name]
    except KeyError:
        raise KeyError(
            f"unknown runtime profile {name!r}; choose from {sorted(PROFILES)}"
        ) from None
