"""Key management for a Troxy-backed cluster.

A :class:`KeyRing` derives every symmetric key in the system from one
master secret:

* pairwise replica-to-replica HMAC keys (BFT message authentication);
* the Troxy *group secret* shared among all Troxies — used with a
  per-Troxy identifier to authenticate replica replies and cache
  queries (Section IV-A);
* per-principal TLS master secrets.

In the real system these keys reach the enclave through SGX remote
attestation and provisioning; :mod:`repro.sgx.attestation` models that
step, after which the enclave holds a KeyRing view.
"""

from __future__ import annotations

from .primitives import MacKey, derive_key


class KeyRing:
    """Derives and caches the cluster's symmetric keys."""

    def __init__(self, master_secret: bytes):
        if len(master_secret) < 16:
            raise ValueError("master secret must be at least 16 bytes")
        self._master = master_secret
        self._cache: dict[str, MacKey] = {}

    def _key(self, *labels: str) -> MacKey:
        key_id = "/".join(labels)
        key = self._cache.get(key_id)
        if key is None:
            key = MacKey(key_id, derive_key(self._master, *labels))
            self._cache[key_id] = key
        return key

    def pairwise(self, a: str, b: str) -> MacKey:
        """Shared HMAC key between principals ``a`` and ``b`` (symmetric)."""
        first, second = sorted((a, b))
        return self._key("pair", first, second)

    def troxy_group(self) -> MacKey:
        """The secret shared among all Troxies (reply authentication)."""
        return self._key("troxy-group")

    def troxy_instance(self, troxy_name: str) -> MacKey:
        """Group secret bound to one Troxy's identifier.

        The paper authenticates a local reply with "an HMAC that is based
        on a shared secret, which is known amongst all Troxies, and an
        identifier specific to each Troxy instance".
        """
        return self._key("troxy-group", troxy_name)

    def tls_master(self, principal: str) -> bytes:
        """TLS master secret for a server-side principal."""
        return derive_key(self._master, "tls-master", principal)
