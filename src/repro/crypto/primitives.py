"""Real cryptographic primitives.

Digests and MACs are computed with :mod:`hashlib`/:mod:`hmac` so that
tampering, forgery, and replay in fault-injection tests are *actually
detected* rather than flagged by simulation bookkeeping. The cost of the
operations in simulated time is charged separately via
:mod:`repro.crypto.costs`.
"""

from __future__ import annotations

import hashlib
import hmac as _hmac
from dataclasses import dataclass

DIGEST_SIZE = 32
MAC_SIZE = 32


def sha256(data: bytes) -> bytes:
    """SHA-256 digest of ``data``."""
    return hashlib.sha256(data).digest()


def digest_of(*parts: bytes) -> bytes:
    """Digest of length-prefixed parts (unambiguous concatenation)."""
    h = hashlib.sha256()
    for part in parts:
        h.update(len(part).to_bytes(8, "big"))
        h.update(part)
    return h.digest()


# Interned-digest memo: protocol code frequently recomputes digest_of()
# over identical immutable parts (every replica in a 2f+1 group hashes
# the same ORDER content, every voter re-hashes the same reply). The
# cache is bounded by wholesale clearing — entries are tiny and hit
# rates are high, so an LRU's bookkeeping would cost more than it saves.
_INTERNED_DIGESTS: dict = {}
_INTERNED_DIGESTS_MAX = 1 << 16


def intern_digest(*parts: bytes) -> bytes:
    """Memoized :func:`digest_of` for immutable, hashable parts.

    Returns the same bytes object for repeated calls with equal parts,
    which also makes downstream equality checks and dict lookups cheap.
    """
    digest = _INTERNED_DIGESTS.get(parts)
    if digest is None:
        if len(_INTERNED_DIGESTS) >= _INTERNED_DIGESTS_MAX:
            _INTERNED_DIGESTS.clear()
        digest = _INTERNED_DIGESTS[parts] = digest_of(*parts)
    return digest


# Tag memo shared across MacKey instances, keyed by (secret, data).
# Every node derives its own MacKey objects from the cluster master via
# its own KeyRing, so a per-instance cache would never let a verifier
# reuse the signer's computation; keying by the secret itself does,
# while still computing a fresh HMAC for tampered data or forged keys.
_TAG_CACHE: dict = {}
_TAG_CACHE_MAX = 1 << 16


@dataclass(frozen=True)
class MacKey:
    """A symmetric HMAC-SHA256 key shared between principals."""

    key_id: str
    secret: bytes

    def sign(self, data: bytes) -> bytes:
        key = (self.secret, data)
        tag = _TAG_CACHE.get(key)
        if tag is None:
            if len(_TAG_CACHE) >= _TAG_CACHE_MAX:
                _TAG_CACHE.clear()
            # hmac.digest() takes the one-shot C fast path; equivalent to
            # hmac.new(secret, data, sha256).digest().
            tag = _TAG_CACHE[key] = _hmac.digest(self.secret, data, "sha256")
        return tag

    def verify(self, data: bytes, tag: bytes) -> bool:
        return _hmac.compare_digest(self.sign(data), tag)


def derive_key(master: bytes, *labels: str) -> bytes:
    """Derive a sub-key from a master secret and a label path."""
    material = master
    for label in labels:
        material = _hmac.digest(material, label.encode("utf-8"), "sha256")
    return material
