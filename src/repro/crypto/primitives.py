"""Real cryptographic primitives.

Digests and MACs are computed with :mod:`hashlib`/:mod:`hmac` so that
tampering, forgery, and replay in fault-injection tests are *actually
detected* rather than flagged by simulation bookkeeping. The cost of the
operations in simulated time is charged separately via
:mod:`repro.crypto.costs`.
"""

from __future__ import annotations

import hashlib
import hmac as _hmac
from dataclasses import dataclass

DIGEST_SIZE = 32
MAC_SIZE = 32


def sha256(data: bytes) -> bytes:
    """SHA-256 digest of ``data``."""
    return hashlib.sha256(data).digest()


def digest_of(*parts: bytes) -> bytes:
    """Digest of length-prefixed parts (unambiguous concatenation)."""
    h = hashlib.sha256()
    for part in parts:
        h.update(len(part).to_bytes(8, "big"))
        h.update(part)
    return h.digest()


@dataclass(frozen=True)
class MacKey:
    """A symmetric HMAC-SHA256 key shared between principals."""

    key_id: str
    secret: bytes

    def sign(self, data: bytes) -> bytes:
        return _hmac.new(self.secret, data, hashlib.sha256).digest()

    def verify(self, data: bytes, tag: bytes) -> bool:
        return _hmac.compare_digest(self.sign(data), tag)


def derive_key(master: bytes, *labels: str) -> bytes:
    """Derive a sub-key from a master secret and a label path."""
    material = master
    for label in labels:
        material = _hmac.new(material, label.encode("utf-8"), hashlib.sha256).digest()
    return material
