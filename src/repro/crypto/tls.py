"""Simulated TLS sessions (the TaLoS substitute).

What Troxy needs from TLS, and what this module provides:

* a handshake that costs round-trips and CPU, after which both endpoints
  hold a session key;
* per-record integrity — every record carries a real HMAC tag over
  (sequence number, payload), so any modification by the untrusted host
  is detected by :meth:`TlsEndpoint.open`;
* replay protection — record sequence numbers must arrive strictly
  in order; "each endpoint will never accept the same chunk of encrypted
  data twice" (Section III-D).

Payload bytes are carried in the clear inside :class:`TlsRecord` —
simulation code treats ``ciphertext`` as opaque, and confidentiality
against in-simulation adversaries is a modelling convention, not a
cryptographic property. Integrity and replay detection *are* real.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from .primitives import MAC_SIZE, MacKey, derive_key

TLS_RECORD_OVERHEAD = 29  # bytes: header(5) + explicit nonce(8) + tag(16)
HANDSHAKE_FLIGHTS = 4  # ClientHello, ServerHello..Done, ClientKex..Fin, Fin
HANDSHAKE_BYTES = 2048  # total handshake traffic, both directions
HANDSHAKE_CPU = 250e-6  # asymmetric crypto per endpoint (ECDHE + cert)

_session_ids = itertools.count(1)


class TlsError(Exception):
    """Integrity or replay failure on a TLS record."""


@dataclass(frozen=True)
class TlsRecord:
    """One sealed record on the wire."""

    session_id: int
    seq: int
    ciphertext: bytes
    tag: bytes

    @property
    def wire_size(self) -> int:
        return len(self.ciphertext) + TLS_RECORD_OVERHEAD


class TlsEndpoint:
    """One side of an established TLS session."""

    def __init__(self, session_id: int, send_key: MacKey, recv_key: MacKey):
        self.session_id = session_id
        self._send_key = send_key
        self._recv_key = recv_key
        self._send_seq = 0
        self._recv_seq = 0

    def _auth_input(self, seq: int, payload: bytes) -> bytes:
        return seq.to_bytes(8, "big") + payload

    def seal(self, payload: bytes) -> TlsRecord:
        """Produce the next outgoing record for ``payload``."""
        seq = self._send_seq
        self._send_seq += 1
        tag = self._send_key.sign(self._auth_input(seq, payload))
        return TlsRecord(self.session_id, seq, payload, tag)

    def open(self, record: TlsRecord) -> bytes:
        """Verify and accept an incoming record; raises TlsError on attack.

        Rejects wrong-session records, bad tags, replays, and reordering
        (TLS is stream-oriented: a gap means truncation/injection).
        """
        if record.session_id != self.session_id:
            raise TlsError(
                f"record for session {record.session_id}, expected {self.session_id}"
            )
        if record.seq != self._recv_seq:
            raise TlsError(
                f"record seq {record.seq}, expected {self._recv_seq} (replay or gap)"
            )
        if not self._recv_key.verify(self._auth_input(record.seq, record.ciphertext), record.tag):
            raise TlsError("record integrity check failed")
        self._recv_seq += 1
        return record.ciphertext


@dataclass(frozen=True)
class TlsSession:
    """Both endpoints of an established session (returned by handshake)."""

    session_id: int
    client: TlsEndpoint
    server: TlsEndpoint


def establish_session(master_secret: bytes, client_name: str, server_name: str) -> TlsSession:
    """Create a fresh session's paired endpoints.

    The *protocol-level* handshake (flights on the wire, CPU for the
    asymmetric operations) is modelled by the caller using
    ``HANDSHAKE_FLIGHTS``/``HANDSHAKE_BYTES``/``HANDSHAKE_CPU``; this
    function performs the key derivation.
    """
    session_id = next(_session_ids)
    base = derive_key(master_secret, "tls", client_name, server_name, str(session_id))
    c2s = MacKey(f"tls:{session_id}:c2s", derive_key(base, "c2s"))
    s2c = MacKey(f"tls:{session_id}:s2c", derive_key(base, "s2c"))
    client = TlsEndpoint(session_id, send_key=c2s, recv_key=s2c)
    server = TlsEndpoint(session_id, send_key=s2c, recv_key=c2s)
    return TlsSession(session_id, client, server)


def record_sizes(payload_size: int) -> int:
    """Wire size of a payload sealed into one record."""
    return payload_size + TLS_RECORD_OVERHEAD


assert MAC_SIZE == 32  # tags in TlsRecord are full HMAC-SHA256 outputs
