"""repro.obs — unified metrics/span/trace observability layer.

One coherent instrumentation plane for the whole stack: a
:class:`~repro.obs.registry.Registry` of labeled counters, gauges and
histograms, a :class:`~repro.obs.spans.SpanRecorder` of hierarchical
sim-time spans that follow one request end-to-end (legacy client →
Troxy host → ecall boundary → Hybster ordering → execution → reply
voting → fast-read cache), and deterministic exporters
(:mod:`repro.obs.export`): JSONL, Prometheus text format, and Chrome
trace-event JSON loadable in Perfetto.

Wiring happens through :class:`~repro.obs.probes.ObsPlane`, which
attaches to a running cluster using the hooks the layers already expose
(enclave ecall observation, network send filters, conflict-monitor
switch hooks, replica/core emission points) — the protocol logic is
never forked, and an attached plane schedules **no** simulation events,
so observed and unobserved runs are event-for-event identical.

All timestamps are simulated time; two same-seed runs produce
byte-identical exports. ``python -m repro.obs`` runs a workload and
dumps a full report.

:mod:`repro.obs.health` builds on this plane: declarative SLO tracking,
BFT-aware anomaly detectors, and a fault-forensics flight recorder —
``python -m repro.obs.health`` measures detection latency over the
:mod:`repro.faults` scenario catalogue.
"""

from .export import chrome_trace, metrics_jsonl, prometheus_text, write_report
from .probes import ObsPlane
from .quantiles import QuantileSketch
from .registry import Counter, Gauge, Histogram, Quantile, Registry
from .spans import Span, SpanRecorder

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "ObsPlane",
    "Quantile",
    "QuantileSketch",
    "Registry",
    "Span",
    "SpanRecorder",
    "chrome_trace",
    "metrics_jsonl",
    "prometheus_text",
    "write_report",
]
