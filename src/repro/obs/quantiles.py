"""Deterministic mergeable streaming-quantile sketch.

A fixed-compression merging digest in the t-digest family: incoming
observations buffer up and are periodically merged into a bounded list
of ``(mean, weight)`` centroids, with per-centroid capacity scaled by
``q * (1 - q)`` so the tails stay fine-grained while the middle
compresses aggressively. Memory is O(compression) regardless of stream
length.

Two properties matter more than approximation error here:

- **Determinism** — no randomness, no wall clock; the centroid list is
  a pure function of the observation sequence (compression uses a
  stable sort keyed on centroid mean), so same-seed simulation runs
  export byte-identical quantile lines.
- **Mergeability** — :meth:`merge` folds another sketch in by treating
  its centroids as weighted observations, which is exact for disjoint
  windows up to the usual digest error. Sliding-window SLO evaluation
  merges per-window sketches into run totals this way.

For streams shorter than the compression factor the sketch holds every
sample individually, so small-sample quantiles are exact.
"""

from __future__ import annotations

import math
from typing import Iterable

__all__ = ["QuantileSketch"]


class QuantileSketch:
    """Fixed-compression merging digest over a stream of floats."""

    __slots__ = ("compression", "count", "sum", "_min", "_max",
                 "_centroids", "_buffer")

    def __init__(self, compression: int = 64):
        if compression < 8:
            raise ValueError(f"compression must be >= 8: {compression}")
        self.compression = compression
        self.count: float = 0.0
        self.sum: float = 0.0
        self._min = math.inf
        self._max = -math.inf
        self._centroids: list[list[float]] = []  # [mean, weight], sorted
        self._buffer: list[list[float]] = []

    def __len__(self) -> int:
        return int(self.count)

    def observe(self, value: float) -> None:
        value = float(value)
        if math.isnan(value):
            raise ValueError("cannot observe NaN")
        self._buffer.append([value, 1.0])
        self.count += 1.0
        self.sum += value
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value
        if len(self._buffer) >= 4 * self.compression:
            self._compress()

    def observe_many(self, values: Iterable[float]) -> None:
        for value in values:
            self.observe(value)

    def merge(self, other: "QuantileSketch") -> "QuantileSketch":
        """Fold ``other`` into this sketch (``other`` is left untouched)."""
        for mean, weight in other._centroids:
            self._buffer.append([mean, weight])
        for mean, weight in other._buffer:
            self._buffer.append([mean, weight])
        self.count += other.count
        self.sum += other.sum
        self._min = min(self._min, other._min)
        self._max = max(self._max, other._max)
        self._compress()
        return self

    # -- queries ---------------------------------------------------------------

    def quantile(self, q: float) -> float:
        """Estimated value at quantile ``q``; NaN for an empty sketch."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1]: {q}")
        if self.count == 0:
            return math.nan
        self._compress()
        if q <= 0.0:
            return self._min
        if q >= 1.0:
            return self._max
        centroids = self._centroids
        if len(centroids) == 1:
            return centroids[0][0]
        target = q * self.count
        # Cumulative weight at each centroid's midpoint; linear
        # interpolation between adjacent midpoints (canonical digest
        # query), clamped to the exact min/max at the extremes.
        cum = 0.0
        prev_mid = 0.0
        prev_mean = self._min
        for mean, weight in centroids:
            mid = cum + weight / 2.0
            if target <= mid:
                span = mid - prev_mid
                if span <= 0.0:
                    return mean
                frac = (target - prev_mid) / span
                return prev_mean + (mean - prev_mean) * frac
            cum += weight
            prev_mid = mid
            prev_mean = mean
        span = self.count - prev_mid
        if span <= 0.0:
            return self._max
        frac = (target - prev_mid) / span
        return prev_mean + (self._max - prev_mean) * frac

    def quantiles(self, qs: Iterable[float]) -> list[float]:
        return [self.quantile(q) for q in qs]

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else math.nan

    def centroid_count(self) -> int:
        self._compress()
        return len(self._centroids)

    # -- internals ----------------------------------------------------------------

    def _compress(self) -> None:
        if not self._buffer and len(self._centroids) <= self.compression:
            return
        points = self._centroids + self._buffer
        self._buffer = []
        if not points:
            self._centroids = []
            return
        # Stable sort on mean only: equal means merge anyway, so tie
        # order cannot leak into query results.
        points.sort(key=lambda c: c[0])
        total = sum(w for _, w in points)
        merged: list[list[float]] = []
        cur_mean, cur_weight = points[0]
        consumed = 0.0
        for mean, weight in points[1:]:
            mid_q = (consumed + cur_weight + weight / 2.0) / total
            limit = 4.0 * total * mid_q * (1.0 - mid_q) / self.compression
            if cur_weight + weight <= max(limit, 1.0):
                cur_mean += (mean - cur_mean) * (weight / (cur_weight + weight))
                cur_weight += weight
            else:
                merged.append([cur_mean, cur_weight])
                consumed += cur_weight
                cur_mean, cur_weight = mean, weight
        merged.append([cur_mean, cur_weight])
        self._centroids = merged
