"""Deterministic exporters for the observability plane.

Three formats, all derived purely from registry/span state (which is
itself purely sim-derived), so two same-seed runs write byte-identical
files:

- :func:`prometheus_text` — Prometheus text exposition format
  (``# HELP`` / ``# TYPE`` headers, ``_bucket{le=...}`` histogram
  series), families and series in sorted order.
- :func:`metrics_jsonl` — one compact JSON object per line: every
  instrument, then every span, with sorted keys.
- :func:`chrome_trace` — Chrome trace-event JSON ("X" complete events
  for spans, "i" instant events, "M" thread-name metadata), loadable in
  ``chrome://tracing`` or Perfetto. Nodes map to threads of one
  process; timestamps are sim-time microseconds.

:func:`write_report` writes all requested formats into a directory.
Every file ends with a single trailing newline.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Iterable, Optional, Sequence, Union

from .registry import Histogram, Quantile, Registry
from .spans import Span

#: Format name -> file name written by :func:`write_report`.
REPORT_FILES = {
    "prometheus": "metrics.prom",
    "jsonl": "metrics.jsonl",
    "chrome": "trace.json",
}


def _fmt_num(value) -> str:
    """Render a sample value; integral floats print as integers.

    Non-finite floats use the Prometheus spellings ``+Inf`` / ``-Inf``
    / ``NaN`` (``repr`` would emit ``nan``, which scrapers reject).
    """
    if isinstance(value, float):
        if math.isnan(value):
            return "NaN"
        if math.isinf(value):
            return "+Inf" if value > 0 else "-Inf"
        if value.is_integer():
            return str(int(value))
        return repr(value)
    return str(value)


def _json_num(value):
    """JSON-safe sample value: non-finite floats become strings.

    ``json.dumps`` renders ``inf``/``nan`` as ``Infinity``/``NaN``,
    which is not valid JSON; exports must stay loadable by strict
    parsers (``jq``, browsers), so those values are encoded as the
    Prometheus spellings instead.
    """
    if isinstance(value, float) and not math.isfinite(value):
        return _fmt_num(value)
    return value


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _label_str(labels: Iterable[tuple[str, str]], extra: Optional[tuple[str, str]] = None) -> str:
    pairs = list(labels)
    if extra is not None:
        pairs.append(extra)
    if not pairs:
        return ""
    inner = ",".join(f'{k}="{_escape_label(v)}"' for k, v in pairs)
    return "{" + inner + "}"


def prometheus_text(registry: Registry) -> str:
    """Registry contents in the Prometheus text exposition format."""
    lines: list[str] = []
    for family in registry.families():
        if family.help:
            lines.append(f"# HELP {family.name} {family.help}")
        # Sketch-backed quantile instruments surface as the standard
        # Prometheus "summary" type (quantile lines + _sum + _count).
        kind = "summary" if family.kind == "quantile" else family.kind
        lines.append(f"# TYPE {family.name} {kind}")
        for key in sorted(family.instruments):
            instrument = family.instruments[key]
            if isinstance(instrument, Histogram):
                for bound, cum in instrument.cumulative():
                    le = "+Inf" if math.isinf(bound) else _fmt_num(bound)
                    labels = _label_str(key, ("le", le))
                    lines.append(f"{family.name}_bucket{labels} {cum}")
                labels = _label_str(key)
                lines.append(f"{family.name}_sum{labels} {_fmt_num(instrument.sum)}")
                lines.append(f"{family.name}_count{labels} {instrument.count}")
            elif isinstance(instrument, Quantile):
                for q, estimate in instrument.snapshot():
                    labels = _label_str(key, ("q", _fmt_num(q)))
                    lines.append(
                        f"{family.name}_quantile{labels} {_fmt_num(estimate)}"
                    )
                labels = _label_str(key)
                lines.append(f"{family.name}_sum{labels} {_fmt_num(instrument.sum)}")
                lines.append(f"{family.name}_count{labels} {instrument.count}")
            else:
                labels = _label_str(key)
                lines.append(f"{family.name}{labels} {_fmt_num(instrument.value)}")
    return "\n".join(lines) + "\n" if lines else ""


def _dumps(obj) -> str:
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def metrics_jsonl(registry: Registry, spans: Optional[Sequence[Span]] = None) -> str:
    """One JSON object per line: instruments first, then spans."""
    lines: list[str] = []
    for family in registry.families():
        for key in sorted(family.instruments):
            instrument = family.instruments[key]
            record: dict = {
                "type": family.kind,
                "name": family.name,
                "labels": dict(key),
            }
            if isinstance(instrument, Histogram):
                record["buckets"] = [
                    {"le": "+Inf" if math.isinf(b) else b, "count": c}
                    for b, c in instrument.cumulative()
                ]
                record["sum"] = _json_num(instrument.sum)
                record["count"] = instrument.count
            elif isinstance(instrument, Quantile):
                record["quantiles"] = [
                    {"q": q, "value": _json_num(estimate)}
                    for q, estimate in instrument.snapshot()
                ]
                record["sum"] = _json_num(instrument.sum)
                record["count"] = instrument.count
            else:
                record["value"] = _json_num(instrument.value)
            lines.append(_dumps(record))
    for span in spans or ():
        lines.append(
            _dumps(
                {
                    "type": span.kind,
                    "span_id": span.span_id,
                    "parent_id": span.parent_id,
                    "trace_id": span.trace_id,
                    "name": span.name,
                    "node": span.node,
                    "start": span.start,
                    "end": span.end,
                    "attrs": span.attrs,
                }
            )
        )
    return "\n".join(lines) + "\n" if lines else ""


def chrome_trace(spans: Sequence[Span], process_name: str = "repro") -> dict:
    """Spans as a Chrome trace-event object (Perfetto-loadable).

    Each node becomes one thread of a single process; thread ids follow
    the sorted node-name order so the Perfetto track layout is stable
    across runs.
    """
    nodes = sorted({span.node for span in spans})
    tid = {node: i + 1 for i, node in enumerate(nodes)}
    events: list[dict] = [
        {
            "ph": "M",
            "pid": 1,
            "tid": 0,
            "name": "process_name",
            "args": {"name": process_name},
        }
    ]
    for node in nodes:
        events.append(
            {
                "ph": "M",
                "pid": 1,
                "tid": tid[node],
                "name": "thread_name",
                "args": {"name": node or "(none)"},
            }
        )
    for span in spans:
        args = dict(span.attrs)
        args["span_id"] = span.span_id
        if span.parent_id is not None:
            args["parent_id"] = span.parent_id
        if span.trace_id is not None:
            args["trace_id"] = span.trace_id
        base = {
            "name": span.name,
            "cat": span.trace_id or "internal",
            "pid": 1,
            "tid": tid[span.node],
            "ts": span.start * 1e6,
            "args": args,
        }
        if span.kind == "event":
            base["ph"] = "i"
            base["s"] = "t"
        else:
            base["ph"] = "X"
            base["dur"] = span.duration * 1e6
        events.append(base)
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_report(
    out_dir: Union[str, Path],
    registry: Registry,
    spans: Sequence[Span] = (),
    formats: Sequence[str] = ("prometheus", "jsonl", "chrome"),
) -> dict[str, Path]:
    """Write the requested export formats into ``out_dir``.

    Returns ``{format: path}``. Unknown format names raise ValueError.
    """
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    written: dict[str, Path] = {}
    for fmt in formats:
        if fmt not in REPORT_FILES:
            raise ValueError(
                f"unknown export format {fmt!r}; choose from {sorted(REPORT_FILES)}"
            )
        path = out / REPORT_FILES[fmt]
        if fmt == "prometheus":
            path.write_text(prometheus_text(registry))
        elif fmt == "jsonl":
            path.write_text(metrics_jsonl(registry, spans))
        else:
            path.write_text(_dumps(chrome_trace(spans)) + "\n")
        written[fmt] = path
    return written
