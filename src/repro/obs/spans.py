"""Hierarchical sim-time spans.

A span is one timed phase of one request's journey through the stack
(``client.invoke``, ``troxy.host``, ``enclave.ecall:...``,
``hybster.order``, ``hybster.execute``, ``troxy.vote``,
``troxy.cache``). Spans carry a *trace id* — the request identity
``"<client_id>#<request_id>"`` — and a parent pointer, forming one tree
per request.

Parentage defaults to the innermost span of the same trace that is
still open when a child begins. The simulation is single-threaded and
deterministic, so this "open stack per trace" reconstructs the causal
nesting without any context-variable machinery; probes with better
knowledge (e.g. execution parented under the ordering span even though
the latter already closed) pass ``parent=`` explicitly.

Span ids are dense integers assigned in begin order; all timestamps are
simulated seconds. Nothing here consults the wall clock, so same-seed
runs record identical span tables.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterable, Optional

#: Sentinel distinguishing "derive the parent from the open stack" from
#: an explicit ``parent=None`` (force a root span).
_FROM_STACK = object()


@dataclass
class Span:
    """One timed phase (or instant event, when ``end == start``)."""

    span_id: int
    name: str
    trace_id: Optional[str]
    node: str
    start: float
    parent_id: Optional[int] = None
    attrs: dict = field(default_factory=dict)
    end: Optional[float] = None
    kind: str = "span"  # "span" | "event"

    @property
    def duration(self) -> float:
        return 0.0 if self.end is None else self.end - self.start

    @property
    def open(self) -> bool:
        return self.end is None


def trace_key(message) -> str:
    """Request identity of anything carrying client_id/request_id."""
    return f"{message.client_id}#{message.request_id}"


class SpanRecorder:
    """Collects spans; builds per-trace trees."""

    def __init__(self):
        self.spans: list[Span] = []
        self._ids = itertools.count(1)
        self._open_by_trace: dict[str, list[Span]] = {}
        self._by_id: dict[int, Span] = {}

    def __len__(self) -> int:
        return len(self.spans)

    # -- recording ---------------------------------------------------------

    def begin(
        self,
        name: str,
        t: float,
        trace_id: Optional[str] = None,
        node: str = "",
        parent=_FROM_STACK,
        **attrs,
    ) -> Span:
        """Open a span at sim-time ``t``; close it with :meth:`end`."""
        parent_id = self._resolve_parent(trace_id, parent, node)
        span = Span(
            span_id=next(self._ids),
            name=name,
            trace_id=trace_id,
            node=node,
            start=t,
            parent_id=parent_id,
            attrs=dict(attrs),
        )
        self.spans.append(span)
        self._by_id[span.span_id] = span
        if trace_id is not None:
            self._open_by_trace.setdefault(trace_id, []).append(span)
        return span

    def end(self, span: Span, t: float, **attrs) -> Span:
        if span.end is not None:
            raise ValueError(f"span {span.span_id} ({span.name}) already ended")
        if t < span.start:
            raise ValueError(f"span {span.span_id} would end before it began")
        span.end = t
        span.attrs.update(attrs)
        if span.trace_id is not None:
            stack = self._open_by_trace.get(span.trace_id)
            if stack is not None:
                try:
                    stack.remove(span)
                except ValueError:
                    pass
                if not stack:
                    del self._open_by_trace[span.trace_id]
        return span

    def event(
        self,
        name: str,
        t: float,
        trace_id: Optional[str] = None,
        node: str = "",
        parent=_FROM_STACK,
        **attrs,
    ) -> Span:
        """Record an instant event (zero-duration leaf)."""
        parent_id = self._resolve_parent(trace_id, parent, node)
        span = Span(
            span_id=next(self._ids),
            name=name,
            trace_id=trace_id,
            node=node,
            start=t,
            parent_id=parent_id,
            attrs=dict(attrs),
            end=t,
            kind="event",
        )
        self.spans.append(span)
        self._by_id[span.span_id] = span
        return span

    def finish(self, t: float) -> int:
        """Close every still-open span (in-flight requests at shutdown).

        Closed spans are marked ``unfinished`` so analyses can exclude
        them; returns how many were force-closed.
        """
        closed = 0
        for span in self.spans:
            if span.end is None:
                self.end(span, max(t, span.start), unfinished=True)
                closed += 1
        return closed

    def _resolve_parent(
        self, trace_id: Optional[str], parent, node: str = ""
    ) -> Optional[int]:
        if parent is _FROM_STACK:
            if trace_id is None:
                return None
            stack = self._open_by_trace.get(trace_id)
            if not stack:
                return None
            # A trace can hold open spans on several nodes at once (all
            # replicas execute the same request); nest under the innermost
            # open span of the *same* node when one exists.
            for span in reversed(stack):
                if span.node == node:
                    return span.span_id
            return stack[-1].span_id
        if parent is None:
            return None
        return parent.span_id if isinstance(parent, Span) else int(parent)

    # -- queries ---------------------------------------------------------------

    @property
    def open_count(self) -> int:
        return sum(1 for span in self.spans if span.end is None)

    def get(self, span_id: int) -> Optional[Span]:
        return self._by_id.get(span_id)

    def trace(self, trace_id: str) -> list[Span]:
        """All spans of one request, in begin order."""
        return [s for s in self.spans if s.trace_id == trace_id]

    def trace_ids(self) -> list[str]:
        """Distinct trace ids in first-seen order."""
        seen: dict[str, None] = {}
        for span in self.spans:
            if span.trace_id is not None:
                seen.setdefault(span.trace_id, None)
        return list(seen)

    def children(self, span: Span) -> list[Span]:
        return [s for s in self.spans if s.parent_id == span.span_id]

    def roots(self, trace_id: str) -> list[Span]:
        return [s for s in self.trace(trace_id) if s.parent_id is None]

    def phase_names(self, trace_id: str) -> set[str]:
        """Distinct span names of one trace (the Fig. 5 phase set)."""
        return {s.name for s in self.trace(trace_id)}

    def tree(self, trace_id: str) -> list[tuple[int, Span]]:
        """Depth-first (depth, span) rendering of one request's tree."""
        spans = self.trace(trace_id)
        ids = {s.span_id for s in spans}
        by_parent: dict[Optional[int], list[Span]] = {}
        for span in spans:
            parent = span.parent_id if span.parent_id in ids else None
            by_parent.setdefault(parent, []).append(span)
        out: list[tuple[int, Span]] = []

        def visit(parent_id: Optional[int], depth: int) -> None:
            for span in by_parent.get(parent_id, ()):
                out.append((depth, span))
                visit(span.span_id, depth + 1)

        visit(None, 0)
        return out


def render_tree(recorder: SpanRecorder, trace_id: str) -> str:
    """Human-readable tree of one request (debugging helper)."""
    lines = []
    for depth, span in recorder.tree(trace_id):
        dur_us = span.duration * 1e6
        lines.append(
            f"{'  ' * depth}{span.name}  [{span.node}]  "
            f"@{span.start * 1e3:.3f}ms  +{dur_us:.1f}us"
        )
    return "\n".join(lines)
