"""Blame-localization harness: chaos scenarios × the audit plane.

For every (scenario, seed, shards, batching) cell the harness runs the
full :mod:`repro.faults` campaign with an :class:`AuditPlane` attached
and scores the auditor's verdicts against the campaign's injected
ground truth (``fault_ground_truth``): every *required* ground-truth
entry (crash → omission, host tamper / wire corruption → tamper,
adversarial writers → contention) must be localized, and no healthy
replica or workload client may ever be blamed. Link-level ground truth
(partitions, lossy links) is permissive — it whitelists link suspicion
without demanding it.

The tracked ``benchmarks/results/audit_blame.txt`` table is
regenerated from here (``python -m repro.obs.audit``), and the CI
audit-smoke step replays one tampering cell twice and byte-diffs the
signed evidence bundles.
"""

from __future__ import annotations

from fnmatch import fnmatchcase

from ...faults.campaign import run_scenario
from ...faults.schedule import get_scenario, scenario_names
from .plane import AuditPlane


def describe_ground(ground: dict) -> str:
    """Short label of one ground-truth entry for tables and reports."""
    blame = ground["blame"]
    if blame == "node":
        return "omission:" + ",".join(ground["targets"])
    if blame == "tamper":
        return "tamper:" + (",".join(ground["targets"]) if "targets" in ground
                            else ground["src"])
    if blame == "client":
        return f"contention:{len(ground['targets'])} attacker(s)"
    if blame == "link":
        if "pairs" in ground:
            return f"links:{len(ground['pairs'])} partitioned pair(s)"
        return f"links:{ground['src']}->{ground['dst']}"
    return blame


def score_blame(verdicts: list, ground_truths: list[dict]) -> dict:
    """Compare verdicts with ground truth; find misses and false blame."""
    omission = {c for v in verdicts if v.kind == "omission" for c in v.culprits}
    tamper = {
        c for v in verdicts if v.kind in ("tamper", "equivocation")
        for c in v.culprits
    }
    links = {c for v in verdicts if v.kind == "link_omission" for c in v.culprits}
    clients = {c for v in verdicts if v.kind == "contention" for c in v.culprits}

    missed: list[str] = []
    allowed_nodes: set[str] = set()
    allowed_clients: set[str] = set()
    link_specs: list = []
    for ground in ground_truths:
        blame = ground["blame"]
        required = ground.get("required", False)
        if blame == "node":
            targets = set(ground["targets"])
            allowed_nodes |= targets
            if required and not targets <= omission:
                missed.append(describe_ground(ground))
        elif blame == "tamper":
            if "targets" in ground:
                targets = set(ground["targets"])
                allowed_nodes |= targets
                hit = targets <= tamper
            else:
                matching = {c for c in tamper if fnmatchcase(c, ground["src"])}
                allowed_nodes |= matching
                hit = bool(matching)
            if required and not hit:
                missed.append(describe_ground(ground))
        elif blame == "client":
            targets = set(ground["targets"])
            allowed_clients |= targets
            if required and not targets <= clients:
                missed.append(describe_ground(ground))
        elif blame == "link":
            link_specs.append(ground)

    def link_allowed(link: str) -> bool:
        src, dst = link.split("->", 1)
        # Links into (or out of) a legitimately blamed node are part of
        # that node's evidence, not a spurious network accusation.
        if src in allowed_nodes or dst in allowed_nodes:
            return True
        for spec in link_specs:
            if "pairs" in spec:
                if sorted((src, dst)) in spec["pairs"]:
                    return True
            elif fnmatchcase(src, spec["src"]) and fnmatchcase(dst, spec["dst"]):
                return True
        return False

    false_blame = sorted(
        [f"node:{c}" for c in (omission | tamper) - allowed_nodes]
        + [f"client:{c}" for c in clients - allowed_clients]
        + [f"link:{c}" for c in links if not link_allowed(c)]
    )
    localized = sorted(
        describe_ground(g) for g in ground_truths
        if g.get("required", False) and describe_ground(g) not in missed
    )
    return {"localized": localized, "missed": sorted(missed),
            "false_blame": false_blame}


def run_localization(
    name: str, seed: int, window: float = 0.25, shards=None, batching=None,
) -> dict:
    """One scenario × seed × deployment cell with the audit plane.

    Returns a JSON-serialisable verdict; the ``plane`` key (the live
    :class:`AuditPlane`, for evidence dumps) is attached as an extra,
    non-serialisable field callers must pop before dumping.
    """
    scenario = get_scenario(name)
    plane = AuditPlane(window=window)
    run = run_scenario(
        scenario, seed, registry=plane.registry, obs=plane,
        batching=batching, shards=shards,
    )
    plane.finalize()

    ground_truths = [
        inj["ground_truth"] for inj in run["injections"]
        if inj.get("ground_truth")
    ]
    score = score_blame(plane.verdicts, ground_truths)
    required = [g for g in ground_truths if g.get("required", False)]
    return {
        "scenario": name,
        "seed": seed,
        "shards": run["shards"],
        "batching": run["batching"],
        "window": window,
        "triggered": bool(plane.events),
        "expected": sorted(describe_ground(g) for g in required),
        "verdicts": [v.as_dict() for v in plane.verdicts],
        "localized": score["localized"],
        "missed": score["missed"],
        "false_blame": score["false_blame"],
        "ledger_entries": sum(
            len(ledger.entries) for ledger in plane.ledgers.values()
        ),
        "checkpoints": sum(
            len(ledger.checkpoints) for ledger in plane.ledgers.values()
        ),
        "invariants_ok": run["ok"],
        "ok": not score["missed"] and not score["false_blame"],
        "plane": plane,
    }


def run_harness(
    names: list[str] | None = None,
    seeds: list[int] = (1,),
    window: float = 0.25,
    shards_matrix=(None,),
    batching_matrix=(None,),
) -> dict:
    """Sweep scenarios × seeds × deployment cells; aggregate blame report."""
    if names is None:
        names = list(scenario_names())
    runs = []
    for shards in shards_matrix:
        for batching in batching_matrix:
            for name in names:
                for seed in seeds:
                    runs.append(run_localization(
                        name, seed, window=window, shards=shards,
                        batching=batching,
                    ))
    failed = [
        {"scenario": r["scenario"], "seed": r["seed"], "shards": r["shards"],
         "batching": r["batching"]}
        for r in runs if not r["ok"]
    ]
    return {
        "tool": "repro.obs.audit",
        "scenarios": names,
        "seeds": list(seeds),
        "window": window,
        "runs": runs,
        "summary": {
            "total": len(runs),
            "attributable": sum(len(r["expected"]) for r in runs),
            "localized": sum(len(r["localized"]) for r in runs),
            "false_blame": sum(len(r["false_blame"]) for r in runs),
            "failed": failed,
        },
    }


def _cell(items: list[str], width: int) -> str:
    text = ",".join(items) if items else "-"
    if len(text) > width:
        text = text[: width - 1] + "+"
    return f"{text:<{width}}"


def render_table(report: dict) -> str:
    """Fixed-width blame-localization table (tracked results format)."""
    lines = [
        "Audit blame localization (chaos catalogue × deployment matrix)",
        "=" * 62,
        f"{'scenario':<28} {'seed':>4} {'sh':>2} {'batch':<8} "
        f"{'expected':<34} {'blamed':<34} verdict",
        "-" * 124,
    ]
    for run in report["runs"]:
        if run["false_blame"]:
            verdict = "FALSE-BLAME"
        elif run["missed"]:
            verdict = "MISSED"
        elif run["expected"]:
            verdict = "LOCALIZED"
        else:
            verdict = "QUIET"
        blamed = sorted(
            f"{v['kind']}:{'+'.join(v['culprits'])}" for v in run["verdicts"]
            if v["kind"] != "link_omission"
        )
        lines.append(
            f"{run['scenario']:<28} {run['seed']:>4} {run['shards']:>2} "
            f"{run['batching']:<8} {_cell(run['expected'], 34)} "
            f"{_cell(blamed, 34)} {verdict}"
        )
    summary = report["summary"]
    lines.append("-" * 124)
    lines.append(
        f"{summary['localized']}/{summary['attributable']} attributable "
        f"faults localized, {summary['false_blame']} wrongly blamed"
        + ("" if not summary["failed"] else f", failed: {summary['failed']}")
    )
    lines.append(
        "link-level suspicion (partitions, lossy links) is hedged to "
        "links, never to nodes; equivocation"
    )
    lines.append(
        "is structurally prevented by the trusted counters and covered "
        "by unit/property tests instead."
    )
    return "\n".join(lines)
