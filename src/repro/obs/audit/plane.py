"""The audit plane: health detection + ledgers + blame attribution.

:class:`AuditPlane` extends the health plane with ledger probes and an
:class:`~repro.obs.audit.auditor.Auditor`. The detector→auditor trigger
is explicit: reconciliation runs at ``finalize()`` only when at least
one health event fired during the run, so a healthy cluster pays the
probe cost but never the audit. ``write_audit_report`` adds the signed
evidence bundle (``evidence.json``) and an ``audit.json`` summary next
to the health report and its flight-recorder bundles, so one directory
holds the full forensic story: what was detected, what was recorded
around it, and who is to blame.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Optional, Union

from ..health.plane import HealthPlane, write_health_report
from .auditor import Auditor, Verdict
from .bundle import build_bundle
from .probes import LedgerProbes


class AuditPlane(HealthPlane):
    """Health plane + tamper-evident ledgers + automated blame."""

    def __init__(
        self,
        registry=None,
        window: float = 0.25,
        checkpoint_interval: int = 64,
        auditor: Optional[Auditor] = None,
        **health_kwargs,
    ):
        super().__init__(registry=registry, window=window, **health_kwargs)
        self.probes = LedgerProbes(
            registry=self.registry, checkpoint_interval=checkpoint_interval
        )
        self.auditor = auditor or Auditor()
        self.verdicts: list[Verdict] = []
        self._group_key = None
        self._reconciled = False

    @property
    def ledgers(self) -> dict:
        return self.probes.ledgers

    def attach(self, cluster) -> "AuditPlane":
        if self.cluster is cluster:
            return self
        super().attach(cluster)
        self.probes.attach(cluster)
        keyring = getattr(cluster, "keyring", None)
        if keyring is not None:
            self._group_key = keyring.troxy_group()
            if self.auditor.group_key is None:
                self.auditor.group_key = self._group_key
        return self

    def finalize(self) -> int:
        unfinished = super().finalize()
        if self.events and not self._reconciled:
            # Detector→auditor trigger: a health event fired, so
            # reconcile the ledgers and attribute blame.
            self._reconciled = True
            replica_ids = frozenset(
                replica.node.name
                for replica in getattr(self.cluster, "replicas", ()) or ()
            )
            self.verdicts = self.auditor.reconcile(
                self.probes.ledgers,
                end_t=self.now,
                replica_ids=replica_ids,
                triggers=self.events,
            )
            for verdict in self.verdicts:
                self.registry.counter(
                    "audit_verdicts_total", "Audit blame verdicts",
                    kind=verdict.kind,
                ).inc()
        return unfinished

    # -- reporting ------------------------------------------------------------

    def audit_report(self) -> dict:
        """JSON-serialisable blame summary (byte-stable when dumped)."""
        counts: dict[str, int] = {}
        for verdict in self.verdicts:
            counts[verdict.kind] = counts.get(verdict.kind, 0) + 1
        return {
            "tool": "repro.obs.audit",
            "triggered": bool(self.events),
            "trigger_kinds": sorted({event.kind for event in self.events}),
            "verdict_count": len(self.verdicts),
            "verdict_counts": counts,
            "verdicts": [verdict.as_dict() for verdict in self.verdicts],
            "ledgers": {
                node: {
                    "entries": len(ledger.entries),
                    "checkpoints": len(ledger.checkpoints),
                    "head": ledger.head.hex(),
                }
                for node, ledger in sorted(self.probes.ledgers.items())
            },
        }

    def evidence_bundle(self, meta: Optional[dict] = None) -> dict:
        """Signed bundle over verdicts, triggers, and every ledger."""
        return build_bundle(
            ledgers=self.probes.ledgers,
            verdicts=self.verdicts,
            triggers=[event.as_dict() for event in self.events],
            meta=meta,
            key=self._group_key,
        )


def write_audit_report(
    out_dir: Union[str, Path], plane: AuditPlane, meta: Optional[dict] = None
) -> dict[str, Path]:
    """Write health report + flight bundles + audit verdicts + evidence."""
    written = write_health_report(out_dir, plane)
    out = Path(out_dir)
    audit_path = out / "audit.json"
    audit_path.write_text(
        json.dumps(plane.audit_report(), indent=2, sort_keys=True) + "\n"
    )
    written["audit"] = audit_path
    evidence_path = out / "evidence.json"
    evidence_path.write_text(
        json.dumps(plane.evidence_bundle(meta=meta), indent=2, sort_keys=True) + "\n"
    )
    written["evidence"] = evidence_path
    return written
