"""Per-node tamper-evident message ledgers.

Each node appends one :class:`LedgerEntry` per protocol message it
sends or receives. Entries are hash-chained — every entry's hash covers
its predecessor's — so truncating, reordering, or rewriting any prefix
changes the chain head. Replica ledgers are periodically *checkpointed*
through the ``certify_ledger`` ecall: the trusted subsystem binds the
chain head to the sealed, strictly-monotonic ``audit-ledger`` counter
(:func:`repro.sgx.counters.certify_ledger_checkpoint`), which makes the
untrusted host unable to present two different histories for the same
checkpoint number. :func:`verify_ledger_dict` re-checks everything
offline from the serialized form, without the cluster.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Optional

from ...crypto.primitives import MacKey, digest_of
from ...sgx.counters import LEDGER_COUNTER, CounterCertificate, _auth_input

GENESIS_SALT = b"repro.obs.audit/genesis"


def genesis_hash(node_id: str) -> bytes:
    return digest_of(GENESIS_SALT, node_id.encode())


def _ident_bytes(ident) -> bytes:
    if ident is None:
        return b""
    return json.dumps(list(ident), separators=(",", ":")).encode()


def _cert_bytes(cert) -> bytes:
    if cert is None:
        return b""
    subsystem_id, counter_name, value, digest, tag = cert
    return b"|".join(
        [subsystem_id.encode(), counter_name.encode(),
         value.to_bytes(8, "big"), digest, tag]
    )


def entry_hash(
    prev_hash: bytes, index: int, t: float, direction: str, peer: str,
    kind: str, digest: bytes, ident, cert,
) -> bytes:
    """Chain hash of one entry; covers the predecessor and every field.

    ``repr(t)`` is exact for floats, so the encoding is canonical and
    any single-field mutation — including the embedded counter
    certificate — breaks the chain from this entry onward.
    """
    return digest_of(
        prev_hash,
        index.to_bytes(8, "big"),
        repr(t).encode(),
        direction.encode(),
        peer.encode(),
        kind.encode(),
        digest,
        _ident_bytes(ident),
        _cert_bytes(cert),
    )


@dataclass(frozen=True)
class LedgerEntry:
    """One sent or received protocol message, chained to its predecessor."""

    index: int
    t: float
    direction: str  # "send" | "recv"
    peer: str
    kind: str  # payload type, e.g. "Order" or "SecureEnvelope:Reply"
    digest: bytes  # content digest (pre-wire for sends, as-delivered for recvs)
    ident: Optional[tuple]  # protocol identity, e.g. ("reply", client, rid)
    cert: Optional[tuple]  # embedded CounterCertificate fields, if any
    prev_hash: bytes
    hash: bytes

    def as_dict(self) -> dict:
        return {
            "i": self.index,
            "t": self.t,
            "dir": self.direction,
            "peer": self.peer,
            "kind": self.kind,
            "digest": self.digest.hex(),
            "ident": None if self.ident is None else list(self.ident),
            "cert": None if self.cert is None else [
                self.cert[0], self.cert[1], self.cert[2],
                self.cert[3].hex(), self.cert[4].hex(),
            ],
            "hash": self.hash.hex(),
        }


@dataclass(frozen=True)
class LedgerCheckpoint:
    """A sealed-counter certificate over the chain head at ``entries``."""

    seq: int  # audit-ledger counter value
    entries: int  # number of entries the certified head covers
    head: bytes
    cert: CounterCertificate

    def as_dict(self) -> dict:
        return {
            "seq": self.seq,
            "entries": self.entries,
            "head": self.head.hex(),
            "cert": [
                self.cert.subsystem_id, self.cert.counter_name,
                self.cert.value, self.cert.digest.hex(), self.cert.tag.hex(),
            ],
        }


class MessageLedger:
    """Hash-chained send/receive ledger of one node."""

    def __init__(self, node_id: str):
        self.node_id = node_id
        self.entries: list[LedgerEntry] = []
        self.head = genesis_hash(node_id)
        self.checkpoints: list[LedgerCheckpoint] = []
        #: checkpoint sequence numbers handed out (certification is
        #: asynchronous — the ecall completes a few microseconds later).
        self.checkpoints_requested = 0

    def append(
        self, t: float, direction: str, peer: str, kind: str,
        digest: bytes, ident: Optional[tuple] = None,
        cert: Optional[tuple] = None,
    ) -> LedgerEntry:
        index = len(self.entries)
        prev = self.head
        entry = LedgerEntry(
            index=index, t=t, direction=direction, peer=peer, kind=kind,
            digest=digest, ident=ident, cert=cert, prev_hash=prev,
            hash=entry_hash(prev, index, t, direction, peer, kind, digest,
                            ident, cert),
        )
        self.entries.append(entry)
        self.head = entry.hash
        return entry

    def add_checkpoint(
        self, seq: int, entries: int, head: bytes, cert: CounterCertificate
    ) -> LedgerCheckpoint:
        checkpoint = LedgerCheckpoint(seq=seq, entries=entries, head=head, cert=cert)
        self.checkpoints.append(checkpoint)
        return checkpoint

    def as_dict(self) -> dict:
        return {
            "node": self.node_id,
            "genesis": genesis_hash(self.node_id).hex(),
            "head": self.head.hex(),
            "entries": [e.as_dict() for e in self.entries],
            "checkpoints": [c.as_dict() for c in self.checkpoints],
        }


def verify_ledger_dict(data: dict, key: Optional[MacKey] = None) -> list[str]:
    """Offline integrity check of one serialized ledger.

    Replays the hash chain from genesis, then checks every checkpoint:
    heads must match the replayed chain at the certified entry count,
    sequence numbers must be strictly increasing (sealed-counter
    fencing), and — when the group ``key`` is given — the certificate
    HMACs must verify. Returns a list of problems; empty means intact.
    """
    problems: list[str] = []
    node = data.get("node", "?")
    prev = genesis_hash(node)
    if data.get("genesis") != prev.hex():
        problems.append(f"{node}: genesis hash mismatch")
    heads = {0: prev}
    for n, e in enumerate(data.get("entries", []), start=1):
        try:
            ident = None if e["ident"] is None else tuple(e["ident"])
            cert = None
            if e["cert"] is not None:
                c = e["cert"]
                cert = (c[0], c[1], c[2], bytes.fromhex(c[3]), bytes.fromhex(c[4]))
            recomputed = entry_hash(
                prev, e["i"], e["t"], e["dir"], e["peer"], e["kind"],
                bytes.fromhex(e["digest"]), ident, cert,
            )
        except (KeyError, TypeError, ValueError, AttributeError, IndexError) as exc:
            problems.append(f"{node}: entry {n - 1} malformed ({exc})")
            return problems
        if recomputed.hex() != e["hash"]:
            problems.append(f"{node}: chain broken at entry {e['i']}")
            return problems
        if cert is not None and key is not None:
            if not key.verify(_auth_input(cert[0], cert[1], cert[2], cert[3]), cert[4]):
                problems.append(
                    f"{node}: entry {e['i']} embeds an unverifiable certificate"
                )
        prev = recomputed
        heads[n] = prev
    if data.get("head") != prev.hex():
        problems.append(f"{node}: declared head does not match replayed chain")
    last_seq = 0
    for c in data.get("checkpoints", []):
        if c["seq"] <= last_seq:
            problems.append(
                f"{node}: checkpoint seq {c['seq']} not above {last_seq} "
                "(sealed-counter fencing violated)"
            )
        last_seq = max(last_seq, c["seq"])
        expected = heads.get(c["entries"])
        if expected is None or expected.hex() != c["head"]:
            problems.append(
                f"{node}: checkpoint {c['seq']} head does not match chain "
                f"at entry {c['entries']}"
            )
        sub, name, value, digest_hex, tag_hex = c["cert"]
        if name != LEDGER_COUNTER:
            problems.append(
                f"{node}: checkpoint {c['seq']} certified under {name!r}, "
                f"not {LEDGER_COUNTER!r}"
            )
        if value != c["seq"] or digest_hex != c["head"]:
            problems.append(
                f"{node}: checkpoint {c['seq']} certificate binds the wrong "
                "value or head"
            )
        if key is not None and not key.verify(
            _auth_input(sub, name, value, bytes.fromhex(digest_hex)),
            bytes.fromhex(tag_hex),
        ):
            problems.append(f"{node}: checkpoint {c['seq']} certificate HMAC invalid")
    return problems
