"""Duck-typed ledger probes on the network send and delivery paths.

One send filter plus one delivery tap cover every protocol path —
hybster ORDER/COMMIT traffic, troxy replies, client requests — because
all of them go through :meth:`repro.sim.network.Network.send`. The send
filter is installed at ``attach()`` time, *before* the fault plane's
lazily-installed filter, so send entries record the digest of what the
host's protocol stack actually emitted (the certified history); the
delivery tap records what physically arrived. The difference between
the two is exactly the tamper evidence the auditor needs.

Checkpointing is the one place the audit plane deliberately spends
simulated time: every ``checkpoint_interval`` entries on a replica's
ledger, a background process crosses the trusted boundary via the
``certify_ledger`` ecall (its cost is measured in
``benchmarks/results/fig5.txt``).
"""

from __future__ import annotations

from typing import Optional

from ...crypto.primitives import digest_of
from ...hybster.messages import Commit, Order, Reply, Request
from ...hybster.secure import SecureEnvelope
from .ledger import MessageLedger

#: certify_ledger argument/result sizes: 8-byte seq + 32-byte head in,
#: one CounterCertificate out.
CHECKPOINT_BYTES_IN = 40
CHECKPOINT_BYTES_OUT = 96


def _cert_tuple(cert) -> Optional[tuple]:
    if cert is None:
        return None
    return (cert.subsystem_id, cert.counter_name, cert.value, cert.digest, cert.tag)


def _generic_digest(payload) -> bytes:
    fn = getattr(payload, "digest", None)
    if callable(fn):
        return fn()
    fn = getattr(payload, "auth_bytes", None)
    if callable(fn):
        return digest_of(fn())
    # Unparseable blobs (e.g. injected Garbage) have no content identity
    # beyond their type and size; they can never match a certified send.
    return digest_of(
        b"opaque", type(payload).__name__.encode(),
        str(getattr(payload, "wire_size", 0)).encode(),
    )


def classify_payload(payload) -> tuple[str, bytes, Optional[tuple], Optional[tuple]]:
    """(kind, digest, ident, cert) of one wire payload.

    ``digest`` follows the same convention as TLS sealing
    (:func:`repro.hybster.secure.seal_body`): the body's ``digest()``
    when it has one, else a digest over ``auth_bytes()``. ``ident`` is
    the protocol-level identity used to pair a tampered delivery with
    the certified send it replaced; ``cert`` surfaces embedded counter
    certificates (ORDER/COMMIT) for equivocation checking.
    """
    if isinstance(payload, SecureEnvelope):
        body = payload.body
        kind = f"SecureEnvelope:{type(body).__name__}"
        if isinstance(body, Reply):
            return kind, digest_of(body.auth_bytes()), (
                "reply", body.client_id, body.request_id,
            ), None
        if isinstance(body, Request):
            return kind, body.digest(), (
                "request", body.client_id, body.request_id,
                "r" if body.op.is_read else "w",
            ), None
        return kind, _generic_digest(body), None, None
    if isinstance(payload, Order):
        return "Order", payload.digest(), (
            "order", payload.view, payload.seq,
        ), _cert_tuple(payload.cert)
    if isinstance(payload, Commit):
        return "Commit", payload.digest(), (
            "commit", payload.view, payload.seq, payload.sender,
        ), _cert_tuple(payload.cert)
    return type(payload).__name__, _generic_digest(payload), None, None


class LedgerProbes:
    """Attach per-node message ledgers to a running cluster.

    Standalone by design (not an ObsPlane): benchmarks attach the
    probes alone to measure their cost, while :class:`.plane.AuditPlane`
    composes them with the health plane's detectors.
    """

    def __init__(self, registry=None, checkpoint_interval: int = 64):
        self.registry = registry
        self.checkpoint_interval = checkpoint_interval
        self.ledgers: dict[str, MessageLedger] = {}
        self.cluster = None
        self._env = None
        self._net = None
        self._replicas: dict[str, object] = {}
        self._entry_counters: dict[tuple[str, str], object] = {}
        self._checkpoint_counters: dict[str, object] = {}

    def attach(self, cluster) -> "LedgerProbes":
        if self.cluster is cluster:
            return self
        if self.cluster is not None:
            raise RuntimeError("LedgerProbes is already attached to a cluster")
        self.cluster = cluster
        self._env = cluster.env
        self._net = cluster.net
        for replica in getattr(cluster, "replicas", ()) or ():
            self._replicas[replica.node.name] = replica
        self._net.add_send_filter(self._send_tap)
        self._net.add_delivery_tap(self._delivery_tap)
        return self

    def detach(self) -> None:
        if self.cluster is None:
            return
        self._net.remove_send_filter(self._send_tap)
        self._net.remove_delivery_tap(self._delivery_tap)
        self.cluster = None
        self._replicas = {}

    # -- probe bodies --------------------------------------------------------

    def _ledger(self, node: str) -> MessageLedger:
        ledger = self.ledgers.get(node)
        if ledger is None:
            ledger = self.ledgers[node] = MessageLedger(node)
        return ledger

    def _record(self, node: str, direction: str, peer: str, payload) -> None:
        kind, digest, ident, cert = classify_payload(payload)
        ledger = self._ledger(node)
        ledger.append(self._env.now, direction, peer, kind, digest, ident, cert)
        if self.registry is not None:
            counter = self._entry_counters.get((node, direction))
            if counter is None:
                counter = self._entry_counters[(node, direction)] = self.registry.counter(
                    "audit_ledger_entries_total", "Audit ledger entries appended",
                    node=node, direction=direction,
                )
            counter.inc()
        replica = self._replicas.get(node)
        if replica is not None and len(ledger.entries) % self.checkpoint_interval == 0:
            self._request_checkpoint(replica, ledger)

    def _send_tap(self, attempt) -> None:
        self._record(attempt.src, "send", attempt.dst, attempt.payload)

    def _delivery_tap(self, msg) -> None:
        self._record(msg.dst, "recv", msg.src, msg.payload)

    # -- checkpointing -------------------------------------------------------

    def _request_checkpoint(self, replica, ledger: MessageLedger) -> None:
        ledger.checkpoints_requested += 1
        seq = ledger.checkpoints_requested
        # Head and entry count are captured synchronously; the ecall
        # only certifies them a boundary-crossing later.
        self._env.process(
            self._certify(replica, ledger, seq, len(ledger.entries), ledger.head),
            name=f"audit:checkpoint-{ledger.node_id}-{seq}",
        )

    def _certify(self, replica, ledger: MessageLedger, seq: int, entries: int,
                 head: bytes):
        cert = yield from replica.boundary.ecall(
            "certify_ledger", seq, head,
            bytes_in=CHECKPOINT_BYTES_IN, bytes_out=CHECKPOINT_BYTES_OUT,
        )
        ledger.add_checkpoint(seq, entries, head, cert)
        if self.registry is not None:
            counter = self._checkpoint_counters.get(ledger.node_id)
            if counter is None:
                counter = self._checkpoint_counters[ledger.node_id] = self.registry.counter(
                    "audit_checkpoints_total", "Certified audit-ledger checkpoints",
                    node=ledger.node_id,
                )
            counter.inc()
