"""Tamper-evident accountability ledgers with automated blame attribution.

Every node keeps a hash-chained ledger of the protocol messages it sent
and received (:mod:`.ledger`), periodically checkpointed through the
``certify_ledger`` ecall so the sealed ``audit-ledger`` counter fences
the chain head (:mod:`repro.sgx.counters`). When a health detector
fires, the :class:`~repro.obs.audit.auditor.Auditor` reconciles the
ledgers across replicas and emits a signed evidence bundle localizing
the culprit — equivocation, tamper, omission (with partition-aware
hedging), or adversarial write contention. ``python -m repro.obs.audit``
scores blame accuracy against the fault catalogue's injected ground
truth; see docs/OBSERVABILITY.md ("Accountability & audit").
"""

from .auditor import Auditor, Verdict
from .bundle import build_bundle, verify_bundle
from .ledger import LedgerCheckpoint, LedgerEntry, MessageLedger, verify_ledger_dict
from .plane import AuditPlane, LedgerProbes, write_audit_report

__all__ = [
    "AuditPlane",
    "Auditor",
    "LedgerCheckpoint",
    "LedgerEntry",
    "LedgerProbes",
    "MessageLedger",
    "Verdict",
    "build_bundle",
    "verify_bundle",
    "verify_ledger_dict",
    "write_audit_report",
]
