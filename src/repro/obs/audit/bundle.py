"""Signed, offline-verifiable evidence bundles.

A bundle packages the verdicts together with every ledger that supports
them, canonically JSON-encoded and HMAC-signed under the troxy group
key. :func:`verify_bundle` re-checks everything *without the cluster*:
the signature, every hash chain, every sealed-counter checkpoint, and
every embedded protocol certificate — the group key is derivable from
the deployment's master secret alone (:class:`repro.crypto.keys.KeyRing`).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Optional

from ...crypto.primitives import MacKey
from .auditor import Verdict
from .ledger import verify_ledger_dict

SIGNING_CONTEXT = b"repro.obs.audit/bundle|"


def canonical_json(payload: dict) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def build_bundle(
    ledgers: dict, verdicts: list[Verdict], triggers: list[dict],
    meta: Optional[dict] = None, key: Optional[MacKey] = None,
) -> dict:
    """Assemble (and, with ``key``, sign) an evidence bundle."""
    payload = {
        "tool": "repro.obs.audit",
        "meta": meta or {},
        "triggers": triggers,
        "verdicts": [v.as_dict() for v in verdicts],
        "ledgers": {node: ledgers[node].as_dict() for node in sorted(ledgers)},
    }
    signature = b""
    if key is not None:
        signature = key.sign(SIGNING_CONTEXT + canonical_json(payload).encode())
    return {"payload": payload, "signature": signature.hex()}


@dataclass(frozen=True)
class BundleCheck:
    """Outcome of an offline bundle verification."""

    ok: bool
    problems: tuple[str, ...]


def verify_bundle(bundle: dict, key: Optional[MacKey] = None) -> BundleCheck:
    """Re-check a bundle's signature, chains, and certificates offline."""
    problems: list[str] = []
    payload = bundle.get("payload")
    if not isinstance(payload, dict):
        return BundleCheck(ok=False, problems=("bundle has no payload",))
    if key is not None:
        expected = SIGNING_CONTEXT + canonical_json(payload).encode()
        if not key.verify(expected, bytes.fromhex(bundle.get("signature", ""))):
            problems.append("bundle signature invalid")
    for node in sorted(payload.get("ledgers", {})):
        problems.extend(verify_ledger_dict(payload["ledgers"][node], key=key))
    return BundleCheck(ok=not problems, problems=tuple(problems))
