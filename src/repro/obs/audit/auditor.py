"""Deterministic cross-ledger reconciliation and blame attribution.

The auditor never runs speculatively: the health plane invokes it only
after a detector fired (see :class:`.plane.AuditPlane`). It compares
the per-node ledgers pairwise and emits :class:`Verdict`s in four
proof classes:

* **equivocation** — two verified counter certificates bind the same
  (subsystem, counter, value) slot to different digests. The trusted
  subsystem makes this impossible for honest hardware, so the verdict
  pins the subsystem owner with cryptographic certainty.
* **tamper** — a delivered message's digest does not match any digest
  its sender's ledger certified for that peer. The send filter records
  pre-wire content and the delivery tap records arrivals, so the
  divergence pins the sender-side host (``HostTamper``) or its
  outbound link; either way the named replica's zone is the culprit.
* **omission** — sends attested by several senders never appear in the
  destination's ledger. If the suspect's ledger shows *any* activity
  inside the missing window the auditor hedges to ``link_omission``
  (blaming src->dst links, not the node): a partitioned-but-alive node
  keeps talking to its own side, while a crashed one goes silent.
* **contention** — with a detector firing, a client whose distinct
  write count dwarfs the workload median is flagged as an adversarial
  writer.

Everything iterates in sorted order over already-deterministic ledger
contents, so verdicts — and the signed bundles built from them — are
byte-stable for a given seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ...crypto.primitives import MacKey
from ...sgx.counters import _auth_input


@dataclass(frozen=True)
class Verdict:
    """One blame attribution, with the evidence that supports it."""

    kind: str  # "equivocation" | "tamper" | "omission" | "link_omission" | "contention"
    culprits: tuple[str, ...]
    t: float  # earliest supporting evidence, sim time
    detail: str
    proof: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        return {
            "kind": self.kind,
            "culprits": list(self.culprits),
            "t": self.t,
            "detail": self.detail,
            "proof": self.proof,
        }


class Auditor:
    """Reconcile ledgers across nodes and localize misbehaviour."""

    def __init__(
        self,
        group_key: Optional[MacKey] = None,
        grace: float = 0.25,
        min_omissions: int = 3,
        min_senders: int = 2,
        contention_floor: int = 16,
        contention_ratio: float = 4.0,
    ):
        self.group_key = group_key
        #: sends younger than ``grace`` before the audit instant are
        #: treated as still in flight, never as omissions.
        self.grace = grace
        self.min_omissions = min_omissions
        self.min_senders = min_senders
        self.contention_floor = contention_floor
        self.contention_ratio = contention_ratio

    def reconcile(
        self, ledgers: dict, end_t: float, replica_ids=frozenset(), triggers=(),
    ) -> list[Verdict]:
        """Cross-check every ledger pair; returns sorted verdicts."""
        verdicts: list[Verdict] = []
        verdicts += self._equivocation(ledgers)
        verdicts += self._tamper(ledgers)
        verdicts += self._omission(ledgers, end_t, frozenset(replica_ids))
        verdicts += self._contention(ledgers, frozenset(replica_ids))
        return sorted(verdicts, key=lambda v: (v.kind, v.culprits, v.t))

    # -- equivocation ---------------------------------------------------------

    def _verified(self, cert: tuple) -> bool:
        if self.group_key is None:
            return True
        sub, name, value, digest, tag = cert
        return self.group_key.verify(_auth_input(sub, name, value, digest), tag)

    def _equivocation(self, ledgers: dict) -> list[Verdict]:
        slots: dict[tuple, dict[bytes, float]] = {}
        for node in sorted(ledgers):
            for e in ledgers[node].entries:
                if e.cert is None or not self._verified(e.cert):
                    continue
                sub, name, value, digest, _tag = e.cert
                seen = slots.setdefault((sub, name, value), {})
                if digest not in seen:
                    seen[digest] = e.t
        verdicts = []
        for (sub, name, value), digests in sorted(slots.items()):
            if len(digests) < 2:
                continue
            verdicts.append(Verdict(
                kind="equivocation",
                culprits=(sub,),
                t=min(digests.values()),
                detail=(
                    f"{sub} certified {len(digests)} different digests for "
                    f"counter {name}={value}"
                ),
                proof={
                    "counter": name,
                    "value": value,
                    "digests": sorted(d.hex() for d in digests),
                },
            ))
        return verdicts

    # -- tamper ---------------------------------------------------------------

    def _tamper(self, ledgers: dict) -> list[Verdict]:
        sent_digests: dict[str, set] = {}
        for node, ledger in ledgers.items():
            sent_digests[node] = {
                e.digest for e in ledger.entries if e.direction == "send"
            }
        by_culprit: dict[str, list] = {}
        for node in sorted(ledgers):
            for e in ledgers[node].entries:
                if e.direction != "recv":
                    continue
                certified = sent_digests.get(e.peer)
                if certified is None or e.digest in certified:
                    continue
                by_culprit.setdefault(e.peer, []).append((e.t, node, e))
        verdicts = []
        for culprit in sorted(by_culprit):
            mismatches = by_culprit[culprit]
            verdicts.append(Verdict(
                kind="tamper",
                culprits=(culprit,),
                t=min(t for t, _, _ in mismatches),
                detail=(
                    f"{len(mismatches)} delivered message(s) diverge from "
                    f"{culprit}'s certified send ledger"
                ),
                proof={
                    "mismatches": [
                        {
                            "t": t,
                            "observer": observer,
                            "kind": e.kind,
                            "ident": None if e.ident is None else list(e.ident),
                            "delivered": e.digest.hex(),
                        }
                        for t, observer, e in mismatches[:8]
                    ],
                    "total": len(mismatches),
                },
            ))
        return verdicts

    # -- omission --------------------------------------------------------------

    def _omission(self, ledgers: dict, end_t: float, replica_ids) -> list[Verdict]:
        recv_index: dict[tuple, tuple[set, set]] = {}
        for node, ledger in ledgers.items():
            for e in ledger.entries:
                if e.direction != "recv":
                    continue
                digests, idents = recv_index.setdefault((node, e.peer), (set(), set()))
                digests.add(e.digest)
                if e.ident is not None:
                    idents.add(e.ident)
        horizon = end_t - self.grace
        missing: list[tuple[str, str, object]] = []
        for node in sorted(ledgers):
            for e in ledgers[node].entries:
                if e.direction != "send" or e.t > horizon:
                    continue
                digests, idents = recv_index.get((e.peer, node), (frozenset(), frozenset()))
                if e.digest in digests:
                    continue
                # Delivered-but-different is tamper evidence, not omission.
                if e.ident is not None and e.ident in idents:
                    continue
                missing.append((node, e.peer, e))

        verdicts: list[Verdict] = []
        blamed: set[str] = set()
        for dst in sorted({dst for _, dst, _ in missing}):
            items = [(src, e) for src, d, e in missing if d == dst]
            senders = sorted({src for src, _ in items})
            if (
                dst not in replica_ids
                or len(items) < self.min_omissions
                or len(senders) < self.min_senders
            ):
                continue
            lo = min(e.t for _, e in items)
            hi = max(e.t for _, e in items)
            suspect = ledgers.get(dst)
            alive = suspect is not None and any(
                lo <= e.t <= hi for e in suspect.entries
            )
            if alive:
                # Partition-aware hedging: the suspect kept sending or
                # receiving inside the missing window, so the silence is
                # a link property — fall through to link_omission.
                continue
            blamed.add(dst)
            verdicts.append(Verdict(
                kind="omission",
                culprits=(dst,),
                t=lo,
                detail=(
                    f"{len(items)} attested send(s) from {len(senders)} node(s) "
                    f"never certified as received by {dst}, which was silent "
                    "for the whole window"
                ),
                proof={
                    "unreceived": len(items),
                    "senders": senders,
                    "window": [lo, hi],
                },
            ))
        leftovers = [(src, dst, e) for src, dst, e in missing if dst not in blamed]
        if leftovers:
            links: dict[str, int] = {}
            for src, dst, _ in leftovers:
                link = f"{src}->{dst}"
                links[link] = links.get(link, 0) + 1
            verdicts.append(Verdict(
                kind="link_omission",
                culprits=tuple(sorted(links)),
                t=min(e.t for _, _, e in leftovers),
                detail=(
                    f"{len(leftovers)} attested send(s) vanished on "
                    f"{len(links)} link(s) whose endpoints stayed active "
                    "(network fault, not node fault)"
                ),
                proof={"links": {k: links[k] for k in sorted(links)}},
            ))
        return verdicts

    # -- write contention -------------------------------------------------------

    def _contention(self, ledgers: dict, replica_ids) -> list[Verdict]:
        writes: dict[str, set] = {}
        first_seen: dict[str, float] = {}
        for node in sorted(ledgers):
            if node not in replica_ids:
                continue
            for e in ledgers[node].entries:
                if (
                    e.direction != "recv"
                    or e.ident is None
                    or e.ident[0] != "request"
                    or e.ident[3] != "w"
                ):
                    continue
                client = e.ident[1]
                writes.setdefault(client, set()).add(e.ident[2])
                if client not in first_seen:
                    first_seen[client] = e.t
        if not writes:
            return []
        counts = {client: len(rids) for client, rids in writes.items()}
        ordered = sorted(counts.values())
        # Lower median: an adversarial heavy writer must not be able to
        # drag the "normal" baseline up by being counted in it.
        median = ordered[(len(ordered) - 1) // 2]
        flagged = sorted(
            client for client, n in counts.items()
            if n >= self.contention_floor and n >= self.contention_ratio * max(median, 1)
        )
        if not flagged:
            return []
        return [Verdict(
            kind="contention",
            culprits=tuple(flagged),
            t=min(first_seen[c] for c in flagged),
            detail=(
                "adversarial write pressure: "
                + ", ".join(f"{c} issued {counts[c]} distinct writes" for c in flagged)
                + f" (workload median {median})"
            ),
            proof={"writes": {c: counts[c] for c in sorted(counts)}, "median": median},
        )]
