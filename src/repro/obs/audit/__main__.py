"""CLI: score audit-plane blame localization over chaos scenarios.

Usage::

    python -m repro.obs.audit                                # full catalogue
    python -m repro.obs.audit --scenarios host_tamper_replies --out audit-run
    python -m repro.obs.audit --shards 1,2 --batch off,4 --results table.txt

Every run is fully deterministic: the same arguments produce the same
table, the same ``audit.json`` files, and byte-identical signed
evidence bundles — the CI audit-smoke step runs one tampering cell
twice and diffs the output directories. Exit status is non-zero when an
attributable fault goes unlocalized or any healthy replica, client, or
link is wrongly blamed.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from ...faults.campaign import resolve_scenarios
from .harness import render_table, run_harness
from .plane import write_audit_report


def _parse_matrix(spec: str, kind: str):
    values = []
    for token in spec.split(","):
        token = token.strip()
        if not token:
            continue
        if token in ("off", "none", "1") and kind == "batch":
            values.append(None)
        elif token == "1" and kind == "shards":
            values.append(None)
        elif kind == "shards":
            values.append(int(token))
        else:
            values.append(token)
    return values or [None]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.audit",
        description="Run chaos scenarios with the audit plane attached and "
        "score blame localization against the injected ground truth.",
    )
    parser.add_argument(
        "--scenarios", default="all",
        help="comma-separated scenario names, or 'all' (default)",
    )
    parser.add_argument(
        "--seeds", type=int, default=1, metavar="N",
        help="run each scenario at seeds 1..N (default: 1)",
    )
    parser.add_argument(
        "--window", type=float, default=0.25,
        help="health-evaluation window in sim seconds (default: 0.25)",
    )
    parser.add_argument(
        "--shards", default="1", metavar="LIST",
        help="comma-separated shard counts to sweep (default: 1)",
    )
    parser.add_argument(
        "--batch", default="off", metavar="LIST",
        help="comma-separated batching settings to sweep: off, a batch "
        "size, or adaptive (default: off)",
    )
    parser.add_argument(
        "--out", metavar="DIR",
        help="write per-run audit.json + signed evidence bundles under DIR",
    )
    parser.add_argument(
        "--results", metavar="PATH",
        help="write the blame-localization table to PATH",
    )
    args = parser.parse_args(argv)

    try:
        names = resolve_scenarios(args.scenarios)
    except KeyError as exc:
        parser.error(str(exc.args[0]))
    if args.seeds < 1:
        parser.error("--seeds must be at least 1")

    report = run_harness(
        names,
        seeds=list(range(1, args.seeds + 1)),
        window=args.window,
        shards_matrix=_parse_matrix(args.shards, "shards"),
        batching_matrix=_parse_matrix(args.batch, "batch"),
    )

    if args.out:
        out = Path(args.out)
        for run in report["runs"]:
            plane = run["plane"]
            cell = (
                f"{run['scenario']}-seed{run['seed']}"
                f"-sh{run['shards']}-b{run['batching']}"
            )
            write_audit_report(
                out / cell, plane,
                meta={
                    "scenario": run["scenario"], "seed": run["seed"],
                    "shards": run["shards"], "batching": run["batching"],
                },
            )
    for run in report["runs"]:
        run.pop("plane")
    if args.out:
        (out / "blame.json").write_text(
            json.dumps(report, indent=2, sort_keys=True) + "\n"
        )

    table = render_table(report)
    print(table)
    if args.results:
        Path(args.results).write_text(table + "\n")
        print(f"results written to {args.results}")

    summary = report["summary"]
    ok = summary["localized"] == summary["attributable"] and not summary["false_blame"]
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
