"""CLI: run an instrumented workload and dump an observability report.

Usage::

    python -m repro.obs --out obs-report                 # default workload
    python -m repro.obs --system etroxy --seed 7 --out d # pick seed/system
    python -m repro.obs --formats prometheus,chrome ...  # subset of formats

The workload is a small closed-loop read-mostly mix against a simulated
cluster; every phase of every request is recorded as sim-time spans and
registry metrics, then exported deterministically. Running the command
twice with the same arguments produces byte-identical files — CI diffs
two runs to enforce exactly that.
"""

from __future__ import annotations

import argparse
import random
import sys

from ..bench.experiments import _run_system, mixed_source
from .export import REPORT_FILES, write_report
from .probes import ObsPlane


def run_workload(
    system: str = "etroxy",
    seed: int = 42,
    n_clients: int = 4,
    warmup: float = 0.05,
    duration: float = 0.25,
    write_ratio: float = 0.1,
    key_space: int = 4,
    batching=None,
    plane: ObsPlane = None,
) -> tuple[ObsPlane, object]:
    """Drive one instrumented run; returns (finalized plane, Summary).

    A read-mostly contended mix exercises every span type: cold reads
    order (order/execute/vote), warm reads hit the fast-read cache, and
    the occasional write invalidates entries. ``batching`` takes a
    :class:`repro.hybster.config.BatchConfig` (or the string presets
    accepted by the builders) so critical-path attribution can watch
    the batch-queue phase appear; ``plane`` substitutes a subclass
    (e.g. a :class:`~repro.obs.health.HealthPlane`)."""
    plane = plane if plane is not None else ObsPlane()
    source = mixed_source(write_ratio, random.Random(seed), key_space=key_space)
    _, summary = _run_system(
        system, source, reply_size=256, n_clients=n_clients,
        warmup=warmup, duration=duration, seed=seed, obs=plane,
        batching=batching,
    )
    plane.finalize()
    return plane, summary


def render_summary(plane: ObsPlane, summary) -> str:
    """Deterministic terminal summary of one instrumented run."""
    reg = plane.registry
    traces = plane.spans.trace_ids()
    lines = [
        f"requests completed: {summary.count}",
        f"throughput: {summary.throughput:.1f} req/s  "
        f"mean latency: {summary.mean_latency * 1e3:.3f} ms",
        f"spans: {len(plane.spans)}  traces: {len(traces)}",
        f"ecall transitions: {reg.total('ecall_transitions_total')}",
        f"fast reads: hit={reg.total('fast_read_results_total', outcome='hit')} "
        f"conflict={reg.total('fast_read_results_total', outcome='conflict')} "
        f"timeout={reg.total('fast_read_results_total', outcome='timeout')}",
        f"cache lookups: miss={reg.total('cache_lookups_total', outcome='miss')} "
        f"probe={reg.total('cache_lookups_total', outcome='probe')}",
        f"mode switches: {reg.total('monitor_mode_switches_total')}",
    ]
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Run an instrumented workload and export deterministic "
        "metrics/span reports (Prometheus text, JSONL, Chrome trace).",
    )
    parser.add_argument("--system", default="etroxy",
                        choices=("bl", "ctroxy", "etroxy"),
                        help="deployment to instrument (default: etroxy)")
    parser.add_argument("--seed", type=int, default=42,
                        help="simulation seed (default: 42)")
    parser.add_argument("--clients", type=int, default=4,
                        help="closed-loop clients (default: 4)")
    parser.add_argument("--warmup", type=float, default=0.05,
                        help="simulated warm-up seconds (default: 0.05)")
    parser.add_argument("--duration", type=float, default=0.25,
                        help="simulated measurement seconds (default: 0.25)")
    parser.add_argument("--write-ratio", type=float, default=0.1,
                        help="fraction of writes in the mix (default: 0.1)")
    parser.add_argument("--out", default="obs-report", metavar="DIR",
                        help="directory for export files (default: obs-report)")
    parser.add_argument("--formats", default="prometheus,jsonl,chrome",
                        help="comma-separated subset of: "
                        + ",".join(sorted(REPORT_FILES)))
    args = parser.parse_args(argv)

    formats = [f.strip() for f in args.formats.split(",") if f.strip()]
    for fmt in formats:
        if fmt not in REPORT_FILES:
            parser.error(f"unknown format {fmt!r}; choose from {sorted(REPORT_FILES)}")

    plane, summary = run_workload(
        system=args.system, seed=args.seed, n_clients=args.clients,
        warmup=args.warmup, duration=args.duration,
        write_ratio=args.write_ratio,
    )
    written = write_report(args.out, plane.registry, plane.spans.spans, formats)

    print(render_summary(plane, summary))
    for fmt in formats:
        print(f"{fmt}: {written[fmt]}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
