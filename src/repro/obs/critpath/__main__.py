"""CLI: run an instrumented workload and print its critical-path report.

Usage::

    python -m repro.obs.critpath                        # default workload
    python -m repro.obs.critpath --seed 7 --batching adaptive
    python -m repro.obs.critpath --shards 4 --out crit  # sharded cell
    python -m repro.obs.critpath --out crit             # + files

Runs the same deterministic closed-loop workload as ``python -m
repro.obs`` (or, with ``--shards``, the sharded write cell from the
sharding benchmark), attributes every completed request with
:mod:`repro.obs.critpath`, and prints the bottleneck report. With
``--out`` it also writes ``critpath.txt`` (the report), ``critpath.json``
(the aggregate profile), and ``trace.json`` (Chrome trace with
critical-path spans highlighted: ``args.critical`` / category
``critical``). Same arguments -> byte-identical outputs; CI diffs two
seeded runs.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from . import analyze, highlighted_chrome_trace, render_report


def _label(args) -> str:
    if args.shards:
        return f"sharded writes, {args.shards} groups, seed {args.seed}"
    parts = [args.system, f"seed {args.seed}", f"{args.clients} clients"]
    if args.batching:
        parts.append(f"batching {args.batching}")
    return ", ".join(parts)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.critpath",
        description="Attribute per-request latency to protocol phases "
        "and print a deterministic bottleneck report.",
    )
    parser.add_argument("--system", default="etroxy",
                        choices=("bl", "ctroxy", "etroxy"),
                        help="deployment to instrument (default: etroxy)")
    parser.add_argument("--seed", type=int, default=42,
                        help="simulation seed (default: 42)")
    parser.add_argument("--clients", type=int, default=4,
                        help="closed-loop clients (default: 4)")
    parser.add_argument("--warmup", type=float, default=0.05,
                        help="simulated warm-up seconds (default: 0.05)")
    parser.add_argument("--duration", type=float, default=0.25,
                        help="simulated measurement seconds (default: 0.25)")
    parser.add_argument("--write-ratio", type=float, default=0.1,
                        help="fraction of writes in the mix (default: 0.1)")
    parser.add_argument("--batching", default=None,
                        help="agreement batching: off, an int, or adaptive "
                        "(default: env/config default)")
    parser.add_argument("--shards", type=int, default=0, metavar="N",
                        help="instead of --system, attribute the N-group "
                        "sharded write cell (forwarding hop visible)")
    parser.add_argument("--out", default=None, metavar="DIR",
                        help="also write critpath.txt / critpath.json / "
                        "trace.json into DIR")
    args = parser.parse_args(argv)

    if args.shards:
        # Local import: repro.bench builds on the cluster builders, and
        # keeping it out of the default path keeps `--help` instant.
        from ...bench.critpath import attributed_sharded_run

        analysis, _summary, _cluster, plane = attributed_sharded_run(
            shards=args.shards, seed=args.seed,
            n_clients=max(args.clients, 24),
            warmup=args.warmup, duration=args.duration,
            batching=args.batching,
        )
        spans = plane.spans.spans
    else:
        from ..__main__ import run_workload

        plane, _summary = run_workload(
            system=args.system, seed=args.seed, n_clients=args.clients,
            warmup=args.warmup, duration=args.duration,
            write_ratio=args.write_ratio, batching=args.batching,
        )
        analysis = analyze(plane.spans)
        spans = plane.spans.spans

    report = render_report(analysis, _label(args))
    print(report)

    if args.out is not None:
        out = Path(args.out)
        out.mkdir(parents=True, exist_ok=True)
        (out / "critpath.txt").write_text(report + "\n")
        (out / "critpath.json").write_text(
            json.dumps(analysis.as_dict(), indent=1, sort_keys=True) + "\n"
        )
        trace = highlighted_chrome_trace(spans, analysis)
        (out / "trace.json").write_text(
            json.dumps(trace, sort_keys=True, separators=(",", ":")) + "\n"
        )
        for name in ("critpath.txt", "critpath.json", "trace.json"):
            print(f"{name}: {out / name}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
