"""Per-request critical-path latency attribution (repro.obs.critpath).

Reconstructs, from the :class:`~repro.obs.spans.SpanRecorder` trace of
an instrumented run, where each request's end-to-end latency actually
went: troxy accept -> fast-read attempt -> batch-queue wait -> ordering
-> counter certification -> execute -> reply voting -> (sharded)
forwarding hop. Every phase is split into *wait* (queueing, network
transit) and *service* (span-covered work on the critical path), and
the per-request attributions aggregate into mergeable per-phase
:class:`~repro.obs.quantiles.QuantileSketch` profiles.

The attribution is an interval sweep over one request's span tree,
clamped to the ``client.invoke`` root window ``[T0, T1]``:

- Each span maps to a canonical phase with a priority; at every instant
  the highest-priority active span owns the time (an enclave
  certification inside an ordering round is certification, not
  ordering). Spans that own at least one atomic interval are the
  request's *critical path* — :func:`highlighted_chrome_trace` marks
  exactly those.
- Instants covered by no span are *wait* attributed to the next phase
  that starts (the Forward transit before ordering is ordering wait,
  the reply fan-in before a vote is voting wait); the trailing gap —
  the sealed reply crossing back to the client — is ``reply_delivery``
  wait.

Every atomic interval of ``[T0, T1]`` is attributed to exactly one
(phase, part) pair, so per-request slices sum to the measured
end-to-end latency by construction (coverage == 1.0) — the analyzer
asserts nothing weaker than the >= 95 % acceptance bar.

Everything here is pure arithmetic on recorded spans: no simulation
events, no randomness, no wall clock — two same-seed runs render
byte-identical reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence, Union

from ..export import chrome_trace
from ..quantiles import QuantileSketch
from ..spans import Span, SpanRecorder

__all__ = [
    "PHASES",
    "RequestAttribution",
    "CritpathAnalysis",
    "analyze",
    "attribute_trace",
    "render_report",
    "highlighted_chrome_trace",
]

#: Canonical phase order along the request chain (report row order for
#: equal contributions; the analyzer never invents phases outside this
#: set plus ``reply_delivery``).
PHASES = (
    "troxy_accept",
    "fast_read",
    "forward_hop",
    "batch_queue",
    "ordering",
    "certification",
    "execute",
    "voting",
    "reply_delivery",
)

#: ecall name -> (phase, part) for the enclave crossings that belong to
#: a specific protocol phase. Certify-family ecalls are matched by
#: substring (certify_order / certify_commit / future counters).
_ECALL_PHASE = {
    "install_session": ("troxy_accept", "service"),
    "handle_client_envelope": ("troxy_accept", "service"),
    "answer_cache_query": ("fast_read", "service"),
    "handle_cache_entry_reply": ("fast_read", "service"),
    "fast_read_timeout": ("fast_read", "service"),
    "authenticate_local_reply": ("voting", "service"),
    "authenticate_batch_replies": ("voting", "service"),
    "handle_replica_reply": ("voting", "service"),
    "handle_replica_reply_batch": ("voting", "service"),
    "handle_forwarded_request": ("forward_hop", "service"),
    "handle_shard_fast_reply": ("forward_hop", "service"),
}


def _classify(span: Span) -> Optional[tuple[str, str, int]]:
    """(phase, part, priority) of one span, or None if unattributed.

    Priority decides ownership where spans overlap: innermost, most
    specific phases win (certification > execute > voting > ecall >
    ordering > fast-read > batch-queue > forward hop > host pump).
    """
    name = span.name
    if name == "troxy.host":
        return ("troxy_accept", "service", 30)
    if name == "troxy.cache":
        return ("fast_read", "service", 55)
    if name == "hybster.queue":
        return ("batch_queue", "wait", 50)
    if name == "hybster.order":
        return ("ordering", "service", 60)
    if name == "hybster.execute":
        return ("execute", "service", 80)
    if name == "troxy.vote":
        return ("voting", "service", 70)
    if name == "shard.forward":
        return ("forward_hop", "wait", 45)
    if name.startswith("enclave.ecall:"):
        ecall = name.split(":", 1)[1]
        if "certify" in ecall:
            return ("certification", "service", 90)
        phase, part = _ECALL_PHASE.get(ecall, ("troxy_accept", "service"))
        return (phase, part, 65)
    return None


@dataclass
class RequestAttribution:
    """Where one request's end-to-end latency went."""

    trace_id: str
    start: float
    end: float
    #: (phase, part) -> attributed seconds; parts are "wait"/"service".
    slices: dict = field(default_factory=dict)
    #: Span ids that owned at least one interval (the critical path).
    critical_span_ids: frozenset = frozenset()

    @property
    def e2e(self) -> float:
        return self.end - self.start

    @property
    def attributed(self) -> float:
        return sum(self.slices.values())

    @property
    def coverage(self) -> float:
        """Attributed share of end-to-end latency (1.0 by construction)."""
        return self.attributed / self.e2e if self.e2e > 0 else 0.0

    def phase_seconds(self, phase: str) -> float:
        return sum(
            seconds for (p, _part), seconds in self.slices.items() if p == phase
        )

    @property
    def forwarded(self) -> bool:
        return self.phase_seconds("forward_hop") > 0.0


def attribute_trace(
    spans: Sequence[Span], trace_id: str
) -> Optional[RequestAttribution]:
    """Attribute one trace; None when it has no completed root invoke."""
    mine = [s for s in spans if s.trace_id == trace_id]
    root = next(
        (s for s in mine if s.name == "client.invoke" and s.parent_id is None),
        None,
    )
    if (
        root is None
        or root.end is None
        or root.attrs.get("unfinished")
        or root.end <= root.start
    ):
        return None
    t0, t1 = root.start, root.end
    segments = []  # (start, end, phase, part, priority, span_id)
    for span in mine:
        if span is root or span.kind == "event" or span.end is None:
            continue
        cls = _classify(span)
        if cls is None:
            continue
        start, end = max(span.start, t0), min(span.end, t1)
        if end <= start:
            continue
        segments.append((start, end, *cls, span.span_id))
    slices: dict[tuple[str, str], float] = {}
    critical: set[int] = set()

    def credit(phase: str, part: str, seconds: float) -> None:
        key = (phase, part)
        slices[key] = slices.get(key, 0.0) + seconds

    points = sorted({t0, t1, *(p for seg in segments for p in seg[:2])})
    starts = sorted(segments, key=lambda seg: seg[0])
    for a, b in zip(points, points[1:]):
        active = [seg for seg in segments if seg[0] <= a and seg[1] >= b]
        if active:
            # Highest priority owns the interval; dense span ids break
            # ties deterministically (earliest-begun span wins).
            owner = max(active, key=lambda seg: (seg[4], -seg[5]))
            credit(owner[2], owner[3], b - a)
            critical.add(owner[5])
            continue
        # Gap: wait attributed to the phase that starts at the gap's
        # end (atomic intervals guarantee the gap ends at a segment
        # start or at t1 — the trailing reply delivery).
        upcoming = [seg for seg in starts if seg[0] == b]
        if upcoming:
            nxt = max(upcoming, key=lambda seg: (seg[4], -seg[5]))
            credit(nxt[2], "wait", b - a)
        else:
            credit("reply_delivery", "wait", b - a)
    return RequestAttribution(
        trace_id=trace_id,
        start=t0,
        end=t1,
        slices=slices,
        critical_span_ids=frozenset(critical),
    )


class CritpathAnalysis:
    """Aggregated attribution of one (or several merged) runs."""

    def __init__(self):
        self.requests: list[RequestAttribution] = []
        #: (phase, part) -> per-request-seconds sketch (mergeable).
        self.profiles: dict[tuple[str, str], QuantileSketch] = {}
        self.e2e = QuantileSketch()
        #: (phase, part) -> (total attributed seconds, requests hit).
        self.totals: dict[tuple[str, str], float] = {}
        self.counts: dict[tuple[str, str], int] = {}
        self.traces_seen = 0

    def add(self, attribution: RequestAttribution) -> None:
        self.requests.append(attribution)
        self.e2e.observe(attribution.e2e)
        for key, seconds in attribution.slices.items():
            self.profiles.setdefault(key, QuantileSketch()).observe(seconds)
            self.totals[key] = self.totals.get(key, 0.0) + seconds
            self.counts[key] = self.counts.get(key, 0) + 1

    def merge(self, other: "CritpathAnalysis") -> "CritpathAnalysis":
        """Fold another analysis in (mergeable quantile profiles)."""
        self.requests.extend(other.requests)
        self.e2e.merge(other.e2e)
        for key, sketch in other.profiles.items():
            self.profiles.setdefault(key, QuantileSketch()).merge(sketch)
            self.totals[key] = self.totals.get(key, 0.0) + other.totals[key]
            self.counts[key] = self.counts.get(key, 0) + other.counts[key]
        self.traces_seen += other.traces_seen
        return self

    @property
    def total_e2e(self) -> float:
        return self.e2e.sum

    def min_coverage(self) -> float:
        return min((r.coverage for r in self.requests), default=0.0)

    def share(self, key: tuple[str, str]) -> float:
        return self.totals.get(key, 0.0) / self.total_e2e if self.total_e2e else 0.0

    def rows(self) -> list[tuple[str, str]]:
        """(phase, part) keys, largest total contribution first."""
        order = {phase: i for i, phase in enumerate(PHASES)}
        return sorted(
            self.totals,
            key=lambda key: (-self.totals[key], order.get(key[0], 99), key[1]),
        )

    def critical_span_ids(self) -> frozenset:
        out: set[int] = set()
        for request in self.requests:
            out |= request.critical_span_ids
        return frozenset(out)

    def as_dict(self) -> dict:
        """JSON-serialisable summary (byte-stable when dumped sorted)."""
        phases = {}
        for phase, part in self.rows():
            sketch = self.profiles[(phase, part)]
            phases[f"{phase}/{part}"] = {
                "requests": self.counts[(phase, part)],
                "p50_ms": sketch.quantile(0.5) * 1e3,
                "p99_ms": sketch.quantile(0.99) * 1e3,
                "mean_ms": sketch.mean * 1e3,
                "total_s": self.totals[(phase, part)],
                "share": self.share((phase, part)),
            }
        return {
            "tool": "repro.obs.critpath",
            "requests": len(self.requests),
            "traces_seen": self.traces_seen,
            "e2e_p50_ms": self.e2e.quantile(0.5) * 1e3 if len(self.e2e) else None,
            "e2e_p99_ms": self.e2e.quantile(0.99) * 1e3 if len(self.e2e) else None,
            "min_coverage": self.min_coverage(),
            "phases": phases,
        }


def analyze(
    spans: Union[SpanRecorder, Sequence[Span]],
    trace_ids: Optional[Iterable[str]] = None,
) -> CritpathAnalysis:
    """Attribute every completed request of an instrumented run."""
    span_list = spans.spans if isinstance(spans, SpanRecorder) else list(spans)
    # Group once: per-trace attribution over the full list would be
    # quadratic in the number of requests.
    grouped: dict[str, list[Span]] = {}
    for span in span_list:
        if span.trace_id is not None:
            grouped.setdefault(span.trace_id, []).append(span)
    ids = list(trace_ids) if trace_ids is not None else list(grouped)
    analysis = CritpathAnalysis()
    analysis.traces_seen = len(ids)
    for trace_id in ids:
        attribution = attribute_trace(grouped.get(trace_id, ()), trace_id)
        if attribution is not None:
            analysis.add(attribution)
    return analysis


def _ms(seconds: float) -> str:
    return f"{seconds * 1e3:9.3f}"


def render_report(analysis: CritpathAnalysis, label: str = "") -> str:
    """Deterministic bottleneck report: top phases by contribution."""
    title = "critical-path attribution"
    if label:
        title += f" — {label}"
    lines = [title, "=" * max(len(title), 40)]
    n = len(analysis.requests)
    lines.append(
        f"requests attributed: {n} (of {analysis.traces_seen} traces)"
    )
    if n == 0:
        lines.append("no completed requests to attribute")
        return "\n".join(lines)
    lines.append(
        f"end-to-end: p50 {_ms(analysis.e2e.quantile(0.5)).strip()} ms   "
        f"p99 {_ms(analysis.e2e.quantile(0.99)).strip()} ms   "
        f"mean {_ms(analysis.e2e.mean).strip()} ms"
    )
    lines.append("")
    lines.append(
        f"{'phase':<16} {'part':<8} {'reqs':>5} {'p50 ms':>9} "
        f"{'p99 ms':>9} {'mean ms':>9} {'share':>7}"
    )
    rows = analysis.rows()
    for phase, part in rows:
        sketch = analysis.profiles[(phase, part)]
        lines.append(
            f"{phase:<16} {part:<8} {analysis.counts[(phase, part)]:>5} "
            f"{_ms(sketch.quantile(0.5))} {_ms(sketch.quantile(0.99))} "
            f"{_ms(sketch.mean)} {analysis.share((phase, part)):>6.1%}"
        )
    lines.append("")
    wait = sum(s for (_p, part), s in analysis.totals.items() if part == "wait")
    service = analysis.total_e2e - wait
    lines.append(
        f"wait/service split: {wait / analysis.total_e2e:.1%} wait, "
        f"{service / analysis.total_e2e:.1%} service"
    )
    accounted = sum(analysis.totals.values()) / analysis.total_e2e
    lines.append(
        f"accounted: {accounted:.1%} of end-to-end wall time "
        f"(min over requests {analysis.min_coverage():.1%})"
    )
    if rows:
        top_phase, top_part = rows[0]
        top_sketch = analysis.profiles[(top_phase, top_part)]
        lines.append(
            f"top bottleneck: {top_phase}/{top_part} — "
            f"{analysis.share((top_phase, top_part)):.1%} of attributed time "
            f"(p99 {_ms(top_sketch.quantile(0.99)).strip()} ms)"
        )
    return "\n".join(lines)


def highlighted_chrome_trace(
    spans: Sequence[Span],
    analysis: CritpathAnalysis,
    process_name: str = "repro",
) -> dict:
    """Chrome trace with critical-path spans marked.

    Spans that owned time on some request's critical path carry
    ``args.critical = true`` and the ``critical`` category (filterable
    in Perfetto); everything else exports unchanged.
    """
    critical = analysis.critical_span_ids()
    trace = chrome_trace(spans, process_name)
    for event in trace["traceEvents"]:
        span_id = event.get("args", {}).get("span_id")
        if span_id in critical:
            event["args"]["critical"] = True
            event["cat"] = f"{event['cat']},critical"
    return trace
