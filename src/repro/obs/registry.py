"""Registry of labeled counters, gauges, and histograms.

The registry is the single sink every layer emits into. Instruments are
identified by (name, sorted label set); asking for the same identity
twice returns the same instrument, so probes in different subsystems can
share series without coordination. Everything is plain Python state —
no wall-clock timestamps, no background threads — so a registry filled
by a deterministic simulation run exports byte-identically.
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass, field
from typing import Iterator, Optional, Sequence, Union

from .quantiles import QuantileSketch

Number = Union[int, float]

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Default latency-style buckets (seconds); chosen to resolve both the
#: LAN microsecond regime and the paper's 100 ms WAN regime.
DEFAULT_BUCKETS = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
    0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5,
)

#: Default tracked quantiles: median, tail, extreme tail.
DEFAULT_QUANTILES = (0.5, 0.9, 0.99)


class RegistryError(Exception):
    """Conflicting or malformed instrument registration."""


def _check_name(name: str) -> str:
    if not _NAME_RE.match(name):
        raise RegistryError(f"invalid metric name: {name!r}")
    return name


def _label_key(labels: dict) -> tuple[tuple[str, str], ...]:
    for key in labels:
        if not _LABEL_RE.match(key):
            raise RegistryError(f"invalid label name: {key!r}")
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class Counter:
    """Monotonically increasing value."""

    kind = "counter"
    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: tuple[tuple[str, str], ...]):
        self.name = name
        self.labels = labels
        self.value: Number = 0

    def inc(self, amount: Number = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease ({amount})")
        self.value += amount


class Gauge:
    """Freely settable value."""

    kind = "gauge"
    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: tuple[tuple[str, str], ...]):
        self.name = name
        self.labels = labels
        self.value: Number = 0

    def set(self, value: Number) -> None:
        self.value = value

    def inc(self, amount: Number = 1) -> None:
        self.value += amount

    def dec(self, amount: Number = 1) -> None:
        self.value -= amount


class Histogram:
    """Cumulative-bucket histogram (Prometheus semantics)."""

    kind = "histogram"
    __slots__ = ("name", "labels", "buckets", "counts", "sum", "count")

    def __init__(
        self,
        name: str,
        labels: tuple[tuple[str, str], ...],
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ):
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise RegistryError(f"histogram {name} needs at least one bucket")
        if any(math.isnan(b) or math.isinf(b) for b in bounds):
            raise RegistryError(f"histogram {name} buckets must be finite")
        self.name = name
        self.labels = labels
        self.buckets = bounds
        # One count per finite bound; the +Inf bucket is ``count``.
        self.counts = [0] * len(bounds)
        self.sum: float = 0.0
        self.count: int = 0

    def observe(self, value: Number) -> None:
        self.sum += value
        self.count += 1
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[i] += 1
                break

    def cumulative(self) -> list[tuple[float, int]]:
        """(upper_bound, cumulative_count) pairs, +Inf last."""
        out: list[tuple[float, int]] = []
        running = 0
        for bound, n in zip(self.buckets, self.counts):
            running += n
            out.append((bound, running))
        out.append((math.inf, self.count))
        return out


class Quantile:
    """Streaming-quantile instrument backed by a mergeable sketch.

    Complements :class:`Histogram`, whose fixed buckets only bound a
    quantile to a bucket width: the sketch tracks the distribution
    itself, so exporters can emit ``_quantile{q=...}`` lines for any
    tracked quantile with sub-bucket resolution.
    """

    kind = "quantile"
    __slots__ = ("name", "labels", "quantiles", "sketch")

    def __init__(
        self,
        name: str,
        labels: tuple[tuple[str, str], ...],
        quantiles: Sequence[float] = DEFAULT_QUANTILES,
        compression: int = 64,
    ):
        qs = tuple(sorted(float(q) for q in quantiles))
        if not qs:
            raise RegistryError(f"quantile {name} needs at least one quantile")
        if any(not 0.0 < q < 1.0 for q in qs):
            raise RegistryError(f"quantile {name} quantiles must be in (0, 1)")
        self.name = name
        self.labels = labels
        self.quantiles = qs
        self.sketch = QuantileSketch(compression=compression)

    def observe(self, value: Number) -> None:
        self.sketch.observe(value)

    @property
    def sum(self) -> float:
        return self.sketch.sum

    @property
    def count(self) -> int:
        return int(self.sketch.count)

    def value(self, q: float) -> float:
        """Estimated value at quantile ``q`` (NaN when empty)."""
        return self.sketch.quantile(q)

    def snapshot(self) -> list[tuple[float, float]]:
        """(q, estimate) pairs for every tracked quantile."""
        return [(q, self.sketch.quantile(q)) for q in self.quantiles]


@dataclass
class _Family:
    """All instruments sharing one metric name."""

    name: str
    kind: str
    help: str = ""
    buckets: Optional[tuple[float, ...]] = None
    quantiles: Optional[tuple[float, ...]] = None
    instruments: dict = field(default_factory=dict)


class Registry:
    """Get-or-create store of instruments, keyed by name + labels."""

    def __init__(self):
        self._families: dict[str, _Family] = {}

    # -- instrument factories -------------------------------------------------

    def counter(self, name: str, help: str = "", **labels) -> Counter:
        return self._get(name, "counter", help, labels, Counter)

    def gauge(self, name: str, help: str = "", **labels) -> Gauge:
        return self._get(name, "gauge", help, labels, Gauge)

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Optional[Sequence[float]] = None,
        **labels,
    ) -> Histogram:
        family = self._family(name, "histogram", help)
        bounds = tuple(sorted(float(b) for b in buckets)) if buckets else DEFAULT_BUCKETS
        if family.buckets is None:
            family.buckets = bounds
        elif family.buckets != bounds:
            raise RegistryError(
                f"histogram {name} re-registered with different buckets"
            )
        key = _label_key(labels)
        instrument = family.instruments.get(key)
        if instrument is None:
            instrument = Histogram(name, key, family.buckets)
            family.instruments[key] = instrument
        return instrument

    def quantile(
        self,
        name: str,
        help: str = "",
        quantiles: Optional[Sequence[float]] = None,
        compression: int = 64,
        **labels,
    ) -> Quantile:
        family = self._family(name, "quantile", help)
        if quantiles is not None:
            qs = tuple(sorted(float(q) for q in quantiles))
            if not qs:
                raise RegistryError(
                    f"quantile {name} needs at least one quantile"
                )
            if any(not 0.0 < q < 1.0 for q in qs):
                raise RegistryError(
                    f"quantile {name} quantiles must be in (0, 1)"
                )
        else:
            qs = DEFAULT_QUANTILES
        if family.quantiles is None:
            family.quantiles = qs
        elif family.quantiles != qs:
            raise RegistryError(
                f"quantile {name} re-registered with different quantiles"
            )
        key = _label_key(labels)
        instrument = family.instruments.get(key)
        if instrument is None:
            instrument = Quantile(name, key, family.quantiles, compression)
            family.instruments[key] = instrument
        return instrument

    def _family(self, name: str, kind: str, help: str) -> _Family:
        _check_name(name)
        family = self._families.get(name)
        if family is None:
            family = _Family(name=name, kind=kind, help=help)
            self._families[name] = family
        elif family.kind != kind:
            raise RegistryError(
                f"metric {name} already registered as {family.kind}, not {kind}"
            )
        if help and not family.help:
            family.help = help
        return family

    def _get(self, name: str, kind: str, help: str, labels: dict, factory):
        family = self._family(name, kind, help)
        key = _label_key(labels)
        instrument = family.instruments.get(key)
        if instrument is None:
            instrument = factory(name, key)
            family.instruments[key] = instrument
        return instrument

    # -- read access ------------------------------------------------------------

    def families(self) -> Iterator[_Family]:
        """Families sorted by name (deterministic export order)."""
        for name in sorted(self._families):
            yield self._families[name]

    def instruments(self) -> Iterator[Union[Counter, Gauge, Histogram, Quantile]]:
        """All instruments, sorted by (name, labels)."""
        for family in self.families():
            for key in sorted(family.instruments):
                yield family.instruments[key]

    def value(self, name: str, **labels) -> Number:
        """Current value of a counter/gauge; 0 when never touched."""
        family = self._families.get(name)
        if family is None:
            return 0
        instrument = family.instruments.get(_label_key(labels))
        if instrument is None:
            return 0
        if isinstance(instrument, (Histogram, Quantile)):
            raise RegistryError(
                f"{name} is a {instrument.kind}; read .sum/.count instead"
            )
        return instrument.value

    def total(self, name: str, **labels) -> Number:
        """Sum of a family's values across series matching ``labels``.

        A series matches when every given (label, value) pair appears in
        its label set; extra labels on the series are ignored.
        """
        family = self._families.get(name)
        if family is None:
            return 0
        want = set(_label_key(labels))
        total: Number = 0
        for key, instrument in family.instruments.items():
            if want <= set(key):
                if isinstance(instrument, (Histogram, Quantile)):
                    total += instrument.count
                else:
                    total += instrument.value
        return total
