"""ObsPlane: attach one registry + span recorder to a running cluster.

The plane wires itself in through hooks the layers already expose — the
optional ``obs`` attribute on :class:`~repro.sgx.enclave.Enclave`,
:class:`~repro.troxy.host.TroxyHost`, :class:`~repro.troxy.core.TroxyCore`
and :class:`~repro.hybster.replica.Replica`, the conflict monitor's
``switch_hooks``, and a network send filter. The instrumented modules
never import this package; they call duck-typed ``obs.*`` methods only
when a plane was attached, so the dependency points strictly upward.

Non-perturbation guarantee: the plane schedules **zero** simulation
events and consumes no randomness. Every probe runs synchronously
inside an already-executing process and only appends to plain-Python
metric/span state, so a run with an ObsPlane attached is event-for-event
identical to the same run without one.

Span taxonomy (one tree per request, trace id ``client#request_id``):

========================  =============================================
``client.invoke``          legacy/BFT client call, root of the tree
``troxy.host``             untrusted host handling one inbound message
``enclave.ecall:<name>``   one enclave boundary crossing
``troxy.cache``            fast-read cache check (Fig. 4 check_cache)
``troxy.fast_read``        instant event: hit / conflict / timeout
``hybster.queue``          leader batch-queue wait (enqueue -> take)
``hybster.order``          leader slot assignment + certification
``hybster.commit``         instant event: slot reached commit quorum
``hybster.execute``        state-machine execution of the request
``troxy.vote``             one reply vote at the convergence Troxy
``shard.forward``          forwarding hop to the owning group
``monitor.switch``         instant event: adaptive mode switch
========================  =============================================

Every span of a trace links (directly or transitively) to the trace's
``client.invoke`` root, so each trace is a connected tree — the
invariant :mod:`repro.obs.critpath` reconstructs causal chains from.
Spans that would otherwise dangle (batch-queue waits recorded on the
leader, per-request order spans of a batched slot) are parented to the
root explicitly.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from .registry import Registry
from .spans import Span, SpanRecorder, trace_key


def _maybe_trace(message) -> Optional[str]:
    """Trace id of anything carrying client_id/request_id, else None.

    Unwraps the common single-payload envelopes (``SecureEnvelope.body``,
    ``ForwardedRequest.request``, ``ShardFastReply.reply``,
    ``Tagged.msg``/``Forward.request``, ``Order.request``) so spans for
    wrapped protocol messages still join their request's trace tree.
    """
    for _ in range(3):
        if message is None:
            return None
        client_id = getattr(message, "client_id", None)
        request_id = getattr(message, "request_id", None)
        if client_id is not None and request_id is not None:
            return f"{client_id}#{request_id}"
        message = (
            getattr(message, "body", None)
            or getattr(message, "request", None)
            or getattr(message, "reply", None)
            or getattr(message, "msg", None)
        )
    return None


class _ObservedClient:
    """Transparent client proxy that records one span per invocation.

    Mirrors the ``_RecordingClient`` idiom from :mod:`repro.analysis.history`
    but adds no timeouts and schedules nothing: it only brackets the
    delegate's ``invoke`` generator with span/metric updates.
    """

    def __init__(self, plane: "ObsPlane", client):
        self._plane = plane
        self._client = client

    def __getattr__(self, name):
        return getattr(self._client, name)

    def invoke(self, op):
        return self._plane._observed_invoke(self._client, op)


class ObsPlane:
    """One observability plane: a registry, a span recorder, probes."""

    def __init__(self, registry: Optional[Registry] = None,
                 spans: Optional[SpanRecorder] = None):
        self.registry = registry if registry is not None else Registry()
        # Not `spans or ...`: an empty recorder is falsy (__len__ == 0)
        # and a caller-supplied recorder must never be dropped.
        self.spans = spans if spans is not None else SpanRecorder()
        self.cluster = None
        self._env = None
        self._core_by_enclave: dict[int, object] = {}
        # (monitor, hook) pairs installed by attach(), so detach() can
        # remove exactly what it added.
        self._monitor_hooks: list[tuple[object, object]] = []
        # Trace currently being certified per node (set only while the
        # leader holds the order lock, so at most one per node).
        self._certify_trace: dict[str, str] = {}
        # The (leader's) order span per trace: execution on every replica
        # is parented here even though it runs on other nodes after the
        # order span closed.
        self._order_span: dict[str, Span] = {}
        # The root client.invoke span per in-flight trace: spans recorded
        # on nodes where no ancestor is open (batch-queue waits, batched
        # order members) are parented here to keep the tree connected.
        self._root_span: dict[str, Span] = {}
        # Open batch-queue span per trace (leader side).
        self._queue_span: dict[str, Span] = {}
        # Open forwarding-hop span per trace (fronting Troxy side).
        self._forward_span: dict[str, Span] = {}

    # -- attachment -----------------------------------------------------------

    def attach(self, cluster) -> "ObsPlane":
        """Install probes on every layer of a built cluster.

        Works for any cluster shape from :mod:`repro.bench.clusters`;
        sections that a deployment lacks (no Troxy hosts on the
        baseline) are simply skipped.

        Idempotent: re-attaching to the cluster the plane is already on
        is a no-op (probes are installed exactly once); attaching to a
        *different* cluster while attached raises — call :meth:`detach`
        first, double-installed hooks would double-count every metric.
        """
        if self.cluster is cluster:
            return self
        if self.cluster is not None:
            raise RuntimeError(
                "ObsPlane is already attached to another cluster; detach() first"
            )
        self.cluster = cluster
        self._env = cluster.env
        for replica in getattr(cluster, "replicas", ()):
            replica.obs = self
            replica.boundary.obs = self
        for host in getattr(cluster, "hosts", ()):
            host.obs = self
            host.core.obs = self
            host.enclave.obs = self
            self._core_by_enclave[id(host.enclave)] = host.core
            hook = self._make_monitor_hook(host.replica_id)
            host.core.monitor.switch_hooks.append(hook)
            self._monitor_hooks.append((host.core.monitor, hook))
        net = getattr(cluster, "net", None)
        if net is not None:
            net.add_send_filter(self._net_tap)
        return self

    def detach(self) -> "ObsPlane":
        """Remove every probe attach() installed.

        The cluster keeps running untouched afterwards; recorded
        metrics and spans stay readable on the plane. A detached plane
        can be re-attached (to the same or another cluster). Idempotent:
        detaching an unattached plane is a no-op, and hooks installed by
        one attach() are removed exactly once however often detach()
        runs.
        """
        cluster, self.cluster = self.cluster, None
        if cluster is None:
            return self
        for replica in getattr(cluster, "replicas", ()):
            replica.obs = None
            replica.boundary.obs = None
        for host in getattr(cluster, "hosts", ()):
            host.obs = None
            host.core.obs = None
            host.enclave.obs = None
        for monitor, hook in self._monitor_hooks:
            monitor.switch_hooks.remove(hook)
        self._monitor_hooks = []
        self._core_by_enclave = {}
        net = getattr(cluster, "net", None)
        if net is not None:
            net.remove_send_filter(self._net_tap)
        self._env = None
        return self

    def wrap_clients(self, clients) -> list:
        """Wrap clients so each ``invoke`` opens the root span."""
        return [_ObservedClient(self, c) for c in clients]

    @property
    def now(self) -> float:
        return self._env.now if self._env is not None else 0.0

    # -- client ----------------------------------------------------------------

    def _observed_invoke(self, client, op):
        # The delegate assigns request ids sequentially at invoke start.
        request_id = getattr(client, "_request_id", 0) + 1
        trace = f"{client.client_id}#{request_id}"
        node = getattr(client, "node", None) or client.machine.node
        span = self.spans.begin(
            "client.invoke", self.now, trace_id=trace, node=node.name,
            client=client.client_id, op=op.name, read=op.is_read,
        )
        self._root_span[trace] = span
        self.registry.counter(
            "client_invocations_total", "Client operations started",
            node=node.name,
        ).inc()
        result = yield from client.invoke(op)
        self._root_span.pop(trace, None)
        self._end(span, retries=result.retries)
        self.registry.histogram(
            "client_latency_seconds", "End-to-end client latency",
            node=node.name,
        ).observe(result.latency)
        self.registry.quantile(
            "client_latency_quantile", "Streaming client-latency quantiles",
            node=node.name, op_class="read" if op.is_read else "write",
        ).observe(result.latency)
        return result

    # -- enclave boundary ---------------------------------------------------------

    def ecall_begin(self, enclave, name: str, args, bytes_in: int, bytes_out: int):
        trace = None
        for arg in args:
            trace = _maybe_trace(arg)
            if trace is None:
                nonce = getattr(arg, "nonce", None)  # CacheEntryReply
                if nonce is not None:
                    core = self._core_by_enclave.get(id(enclave))
                    state = core._fast_reads.get(nonce) if core is not None else None
                    if state is not None:
                        trace = trace_key(state.client_request)
            if trace is not None:
                break
        if trace is None:
            # Certify ecalls carry only (counter, value, digest); while
            # the leader certifies an ORDER we know whose request it is.
            trace = self._certify_trace.get(enclave.node.name)
        self.registry.counter(
            "ecall_transitions_total", "Enclave boundary crossings",
            node=enclave.node.name, enclave=enclave.name, ecall=name,
        ).inc()
        return self.spans.begin(
            f"enclave.ecall:{name}", self.now, trace_id=trace,
            node=enclave.node.name, enclave=enclave.name,
            bytes_in=bytes_in, bytes_out=bytes_out,
        )

    def ecall_end(self, span: Span) -> None:
        if not self._end(span):
            return
        self.registry.histogram(
            "ecall_seconds", "Sim-time spent inside one ecall",
            node=span.node, ecall=span.name.split(":", 1)[1],
        ).observe(span.duration)

    # -- troxy host -----------------------------------------------------------------

    def host_begin(self, host, payload, src: str):
        trace = _maybe_trace(payload)
        attrs = {"type": type(payload).__name__, "src": src}
        nonce = getattr(payload, "nonce", None)
        if trace is None and nonce is not None:
            state = host.core._fast_reads.get(nonce)
            if state is not None:
                trace = trace_key(state.client_request)
            else:
                attrs["nonce"] = nonce
        self.registry.counter(
            "troxy_host_messages_total", "Messages pumped by the untrusted host",
            node=host.node.name, type=type(payload).__name__,
        ).inc()
        return self.spans.begin(
            "troxy.host", self.now, trace_id=trace, node=host.node.name, **attrs
        )

    def host_end(self, span: Span) -> None:
        self._end(span)

    # -- troxy core: fast reads & voting ------------------------------------------------

    def cache_begin(self, core, client_request):
        return self.spans.begin(
            "troxy.cache", self.now, trace_id=trace_key(client_request),
            node=core.node.name,
        )

    def cache_end(self, span: Span, outcome: str) -> None:
        if not self._end(span, outcome=outcome):
            return
        self.registry.counter(
            "cache_lookups_total", "Fast-read cache checks",
            node=span.node, outcome=outcome,
        ).inc()

    def fast_read_result(self, core, client_request, outcome: str) -> None:
        """Terminal fast-read verdict: hit, conflict, or timeout."""
        self.spans.event(
            "troxy.fast_read", self.now, trace_id=trace_key(client_request),
            node=core.node.name, outcome=outcome,
        )
        self.registry.counter(
            "fast_read_results_total", "Fast-read protocol outcomes",
            node=core.node.name, outcome=outcome,
        ).inc()

    def lease_result(self, core, client_request, outcome: str) -> None:
        """Lease read path verdict (docs/READS.md): ``hit`` (served
        locally under a valid lease) or ``cold`` (leased but no
        f+1-corroborated entry; ordered instead)."""
        self.spans.event(
            "troxy.lease_read", self.now, trace_id=trace_key(client_request),
            node=core.node.name, outcome=outcome,
        )
        self.registry.counter(
            "lease_read_results_total", "Lease read path outcomes",
            node=core.node.name, outcome=outcome,
        ).inc()

    def lease_install(self, core, grant, outcome: str) -> None:
        """A grant reached the holder's enclave: installed, expired,
        stale, or fenced by the sealed lease counter."""
        self.spans.event(
            "troxy.lease_install", self.now, trace_id=None,
            node=core.node.name, key=grant.key, outcome=outcome,
        )
        self.registry.counter(
            "lease_installs_total", "Lease grant install outcomes",
            node=core.node.name, outcome=outcome,
        ).inc()

    def lease_revoked(self, core, key: str) -> None:
        """The holder processed a revocation: lease dropped, epoch
        burned, key's cache entries invalidated."""
        self.spans.event(
            "troxy.lease_revoke", self.now, trace_id=None,
            node=core.node.name, key=key,
        )
        self.registry.counter(
            "lease_revocations_total", "Lease revocations processed",
            node=core.node.name,
        ).inc()

    def vote_begin(self, core, reply):
        return self.spans.begin(
            "troxy.vote", self.now, trace_id=_maybe_trace(reply),
            node=core.node.name, voter=reply.replica_id,
        )

    def vote_end(self, span: Span, outcome: str) -> None:
        if not self._end(span, outcome=outcome):
            return
        self.registry.counter(
            "votes_total", "Reply votes processed by the server-side voter",
            node=span.node, outcome=outcome,
        ).inc()

    # -- hybster ordering & execution ------------------------------------------------------

    def order_begin(self, replica, payload):
        requests = getattr(payload, "requests", None)  # Batch
        if requests is None:
            trace = _maybe_trace(payload)
            span = self.spans.begin(
                "hybster.order", self.now, trace_id=trace, node=replica.node.name,
            )
            if trace is not None:
                self._order_span[trace] = span
            return span
        # Batched slot: one order span *per member request* (all spanning
        # the same agreement round), so each trace's tree stays connected
        # and per-request ordering time stays attributable after batching
        # aggregated the agreement step. Members are parented to their
        # trace roots — no ancestor is open on the leader at order time.
        spans = []
        for request in requests:
            trace = _maybe_trace(request)
            span = self.spans.begin(
                "hybster.order", self.now, trace_id=trace,
                node=replica.node.name, batch=len(requests),
                parent=self._root_span.get(trace) if trace is not None else None,
            )
            if trace is not None:
                self._order_span[trace] = span
            spans.append(span)
        return tuple(spans)

    def order_end(self, span, seq: int) -> None:
        members = span if isinstance(span, tuple) else (span,)
        ended = False
        for member in members:
            ended = self._end(member, seq=seq) or ended
        if not ended:
            return
        # One slot per order round, however many member spans cover it.
        self.registry.counter(
            "orders_total", "Slots assigned by the leader",
            node=members[0].node,
        ).inc()

    def certify_scope(self, node_name: str, payload) -> None:
        """Leader is about to certify ``payload``'s slot on this node.

        For a batched slot the certification is attributed to the first
        request of the batch (one counter value covers all of them)."""
        requests = getattr(payload, "requests", None)  # Batch
        if requests is not None:
            payload = requests[0] if requests else None
        trace = _maybe_trace(payload) if payload is not None else None
        if trace is not None:
            self._certify_trace[node_name] = trace

    def certify_scope_end(self, node_name: str) -> None:
        self._certify_trace.pop(node_name, None)

    def batch_flush(self, replica, size: int, reason: str, depth: int) -> None:
        """Leader cut one batch: occupancy, flush reason, pipeline depth."""
        node = replica.node.name
        self.registry.counter(
            "batch_flushes_total", "Batches cut by the leader",
            node=node, reason=reason,
        ).inc()
        self.registry.histogram(
            "batch_occupancy", "Requests per cut batch", node=node,
        ).observe(size)
        self.registry.gauge(
            "batch_pipeline_depth", "Batches in flight after this flush",
            node=node,
        ).set(depth)

    # -- hybster batch queue ---------------------------------------------------------

    def queue_enter(self, replica, request) -> Optional[Span]:
        """Leader buffered ``request`` into the batch assembler."""
        trace = _maybe_trace(request)
        if trace is None:
            return None
        span = self.spans.begin(
            "hybster.queue", self.now, trace_id=trace, node=replica.node.name,
            parent=self._root_span.get(trace),
        )
        self._queue_span[trace] = span
        return span

    def queue_leave(self, replica, request, reason: str, size: int) -> None:
        """``request`` left the batch queue into a cut batch (``reason``
        is the flush trigger, ``size`` the batch it joined)."""
        trace = _maybe_trace(request)
        span = self._queue_span.pop(trace, None) if trace is not None else None
        if span is None or not self._end(span, reason=reason, batch=size):
            return
        self.registry.counter(
            "queue_requests_total", "Requests leaving the leader batch queue",
            node=span.node, reason=reason,
        ).inc()
        self.registry.histogram(
            "queue_wait_seconds", "Sim-time spent in the leader batch queue",
            node=span.node,
        ).observe(span.duration)

    def queue_drop(self, replica, request) -> None:
        """``request`` was drained unordered (view change / restart)."""
        self.queue_leave(replica, request, "dropped", 0)

    # -- shard forwarding hop -----------------------------------------------------------

    def forward_begin(self, core, request, target: str) -> Optional[Span]:
        """Fronting Troxy hands ``request`` to its owning group."""
        trace = _maybe_trace(request)
        if trace is None:
            return None
        span = self.spans.begin(
            "shard.forward", self.now, trace_id=trace, node=core.node.name,
            target=target,
        )
        self._forward_span[trace] = span
        self.registry.counter(
            "shard_forwards_total", "Requests forwarded to their owning group",
            node=core.node.name, target=target,
        ).inc()
        return span

    def forward_received(self, core, request) -> None:
        """The owning group accepted a forwarded request: the hop —
        transit plus remote host queueing — ends here; the owning
        group's handling continues inside its own ecall span."""
        trace = _maybe_trace(request)
        span = self._forward_span.pop(trace, None) if trace is not None else None
        if span is None or not self._end(span, received_by=core.node.name):
            return
        self.registry.histogram(
            "forward_hop_seconds", "Fronting-to-owning-group hop time",
            node=span.node,
        ).observe(span.duration)

    def order_committed(self, replica, request, seq: int) -> None:
        self.spans.event(
            "hybster.commit", self.now, trace_id=_maybe_trace(request),
            node=replica.node.name, seq=seq,
        )
        self.registry.counter(
            "commits_total", "Slots that reached commit quorum",
            node=replica.node.name,
        ).inc()

    def execute_begin(self, replica, request, seq: int):
        trace = _maybe_trace(request)
        parent = self._order_span.get(trace) if trace is not None else None
        if parent is not None:
            return self.spans.begin(
                "hybster.execute", self.now, trace_id=trace,
                node=replica.node.name, parent=parent, seq=seq,
            )
        return self.spans.begin(
            "hybster.execute", self.now, trace_id=trace,
            node=replica.node.name, seq=seq,
        )

    def execute_end(self, span: Span) -> None:
        if not self._end(span):
            return
        self.registry.counter(
            "executions_total", "Requests executed by the state machine",
            node=span.node,
        ).inc()

    # -- monitor & network -----------------------------------------------------------------

    def _make_monitor_hook(self, replica_id: str):
        def hook(mode: str) -> None:
            self.spans.event(
                "monitor.switch", self.now, node=replica_id, mode=mode
            )
            self.registry.counter(
                "monitor_mode_switches_total", "Adaptive total-order switches",
                node=replica_id, mode=mode,
            ).inc()

        return hook

    def _net_tap(self, attempt) -> None:
        labels = {
            "src": attempt.src,
            "dst": attempt.dst,
            "type": type(attempt.payload).__name__,
        }
        self.registry.counter(
            "net_messages_total", "Messages offered to the network", **labels
        ).inc()
        self.registry.counter(
            "net_bytes_total", "Payload bytes offered to the network", **labels
        ).inc(attempt.size)

    # -- snapshots & lifecycle -----------------------------------------------------------------

    def _mirror(self, prefix: str, stats, **labels) -> None:
        """Copy every field of a stats dataclass into gauges."""
        for f in dataclasses.fields(stats):
            self.registry.gauge(f"{prefix}_{f.name}", **labels).set(
                getattr(stats, f.name)
            )

    def snapshot(self) -> None:
        """Mirror the layers' own stats counters into gauges.

        These gauges match ``EnclaveStats`` / ``MonitorStats`` / … by
        construction — they *are* those values at snapshot time — which
        is what ties the obs exports to the pre-existing counters.
        """
        cluster = self.cluster
        if cluster is None:
            return
        for replica in getattr(cluster, "replicas", ()):
            self._mirror("replica", replica.stats, node=replica.replica_id)
            self._mirror(
                "enclave", replica.boundary.stats,
                node=replica.replica_id, enclave=replica.boundary.name,
            )
        for host in getattr(cluster, "hosts", ()):
            node = host.replica_id
            self._mirror("troxy", host.core.stats, node=node)
            self._mirror("cache", host.core.cache.stats, node=node)
            self._mirror("monitor", host.core.monitor.stats, node=node)
            self._mirror(
                "enclave", host.enclave.stats, node=node, enclave=host.enclave.name
            )
            self.registry.gauge("monitor_total_order_mode", node=node).set(
                int(host.core.monitor.total_order_mode)
            )
        net = getattr(cluster, "net", None)
        if net is not None:
            self.registry.gauge(
                "net_messages_sent", "Transfers accepted by the network"
            ).set(net.messages_sent)
            self.registry.gauge("net_bytes_sent").set(net.bytes_sent)
        env = self._env
        if env is not None:
            self.registry.gauge("sim_now_seconds", "Simulated clock").set(env.now)
            self.registry.gauge(
                "sim_events_scheduled", "Events ever pushed on the schedule"
            ).set(env.scheduled_events)
            self.registry.gauge(
                "sim_steps", "Scheduler steps processed"
            ).set(env.steps)

    def finalize(self) -> int:
        """End-of-run: close in-flight spans and snapshot all stats.

        Returns the number of spans that were still open (requests in
        flight when the simulation horizon was reached).
        """
        unfinished = self.spans.finish(self.now)
        self.registry.gauge(
            "spans_unfinished", "Spans still open at the end of the run"
        ).set(unfinished)
        self.snapshot()
        return unfinished

    # -- internal ---------------------------------------------------------------------------------

    def _end(self, span: Span, **attrs) -> bool:
        """Close a span idempotently.

        ``*_end`` probes sit in ``finally`` blocks, which also run when a
        half-finished process generator is torn down after the horizon —
        by then :meth:`finalize` already force-closed the span.
        """
        if span.end is not None:
            return False
        self.spans.end(span, self.now, **attrs)
        self.registry.histogram(
            "phase_seconds", "Sim-time per protocol phase (span name)",
            phase=span.name,
        ).observe(span.duration)
        return True
