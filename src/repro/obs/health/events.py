"""Typed health verdicts and the evidence attached to them.

A :class:`HealthEvent` is the health plane's unit of output: one
detector (or SLO tracker) judging one node (or the whole cell) at one
simulated instant, with the metric deltas and span ids that justify the
verdict carried along. Events are plain data — JSON-serialisable via
:meth:`HealthEvent.as_dict` with deterministic key order — so two
same-seed runs produce byte-identical event logs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

SEVERITIES = ("info", "warn", "critical")


@dataclass(frozen=True)
class Evidence:
    """What the detector saw: metric deltas plus relevant span ids."""

    #: (metric description, value) pairs — window deltas or sampled
    #: absolutes, labelled by the detector.
    metrics: tuple[tuple[str, float], ...] = ()
    #: Recent span ids on the offending node (flight-recorder ring) at
    #: detection time; resolvable against the run's span table.
    span_ids: tuple[int, ...] = ()

    def as_dict(self) -> dict:
        return {
            "metrics": [[name, value] for name, value in self.metrics],
            "span_ids": list(self.span_ids),
        }


@dataclass(frozen=True)
class HealthEvent:
    """One diagnosis: ``kind`` happened on ``node`` in ``window``."""

    kind: str
    t: float  # sim-time of detection (the evaluating window's end)
    node: str  # offending node, or "" for cell-wide verdicts
    severity: str
    detail: dict = field(default_factory=dict)
    evidence: Evidence = Evidence()
    window: tuple[float, float] = (0.0, 0.0)

    def __post_init__(self):
        if self.severity not in SEVERITIES:
            raise ValueError(
                f"severity must be one of {SEVERITIES}: {self.severity!r}"
            )

    def as_dict(self) -> dict:
        return {
            "kind": self.kind,
            "t": self.t,
            "node": self.node,
            "severity": self.severity,
            "detail": dict(self.detail),
            "evidence": self.evidence.as_dict(),
            "window": list(self.window),
        }

    def describe(self) -> str:
        where = self.node or "cell"
        return f"[{self.severity}] t={self.t:.3f}s {self.kind} @ {where}"
