"""Declarative SLO specs evaluated over sliding sim-time windows.

An :class:`SloSpec` names one service-level objective of the paper's
evaluation (§V/§VI): a latency quantile ceiling per operation class, a
fast-read hit-rate floor (the Troxy's whole point is serving reads from
the enclave cache), or a progress guarantee (some request completes in
every window with work in flight). An :class:`SloTracker` evaluates one
spec per window, keeps cumulative compliance, and reports breaches as
:class:`~repro.obs.health.detectors.Finding`\\ s the plane turns into
``slo_violation`` health events.

Latency quantiles come from the per-window
:class:`~repro.obs.quantiles.QuantileSketch`, which the tracker also
merges into a run-total sketch — the sketches are mergeable precisely
so windowed and whole-run views stay consistent.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..quantiles import QuantileSketch
from .detectors import Finding
from .window import WindowSnapshot

KINDS = ("latency_quantile", "hit_rate_floor", "progress")


@dataclass(frozen=True)
class SloSpec:
    """One declarative objective.

    ``latency_quantile``: quantile ``q`` of ``op_class`` latencies must
    stay <= ``limit`` seconds. ``hit_rate_floor``: resolved fast reads
    must hit at a rate >= ``limit``. ``progress``: at least ``limit``
    invocations must complete in any window that ends with requests
    still in flight.
    """

    name: str
    kind: str
    limit: float
    q: float = 0.99
    op_class: str = "all"
    min_samples: int = 8
    severity: str = "warn"
    description: str = ""

    def __post_init__(self):
        if self.kind not in KINDS:
            raise ValueError(f"unknown SLO kind {self.kind!r} (known: {KINDS})")
        if self.kind == "latency_quantile" and not 0.0 < self.q < 1.0:
            raise ValueError(f"latency quantile must be in (0, 1): {self.q}")


class SloTracker:
    """Evaluates one spec per window; edge-triggered like detectors."""

    def __init__(self, spec: SloSpec):
        self.spec = spec
        self.windows_evaluated = 0
        self.windows_violated = 0
        self.worst: float = math.nan
        self._breached = False
        #: Run-total latency sketch (merged from the window sketches).
        self.total_sketch = QuantileSketch()

    def evaluate(self, win: WindowSnapshot) -> Finding | None:
        spec = self.spec
        value = self._measure(win)
        if value is None:
            self._breached = False
            return None
        self.windows_evaluated += 1
        violated = self._violated(value)
        if violated:
            self.windows_violated += 1
            if math.isnan(self.worst) or self._worse(value, self.worst):
                self.worst = value
        fire = violated and not self._breached
        self._breached = violated
        if not fire:
            return None
        return Finding(
            kind="slo_violation", node="", severity=spec.severity,
            detail={
                "slo": spec.name,
                "kind": spec.kind,
                "value": round(value, 6),
                "limit": spec.limit,
            },
            metrics=((f"slo.{spec.name}.value", value),
                     (f"slo.{spec.name}.limit", spec.limit)),
        )

    # -- measurement -----------------------------------------------------------

    def _measure(self, win: WindowSnapshot) -> float | None:
        """The spec's measured value for this window; None = no data."""
        spec = self.spec
        if spec.kind == "latency_quantile":
            sketch = win.latency.get(spec.op_class)
            if sketch is not None:
                self.total_sketch.merge(sketch_copy(sketch))
            if sketch is None or sketch.count < spec.min_samples:
                return None
            return sketch.quantile(spec.q)
        if spec.kind == "hit_rate_floor":
            hits = sum(d.fast_hits for d in win.per_node.values())
            attempts = sum(d.fast_attempts for d in win.per_node.values())
            if attempts < spec.min_samples:
                return None
            return hits / attempts
        # progress: only meaningful when requests were in flight.
        if win.open_invokes <= 0 and win.completed == 0:
            return None
        return float(win.completed)

    def _violated(self, value: float) -> bool:
        if self.spec.kind == "latency_quantile":
            return value > self.spec.limit
        return value < self.spec.limit

    def _worse(self, a: float, b: float) -> bool:
        if self.spec.kind == "latency_quantile":
            return a > b
        return a < b

    def summary(self) -> dict:
        return {
            "slo": self.spec.name,
            "kind": self.spec.kind,
            "limit": self.spec.limit,
            "q": self.spec.q if self.spec.kind == "latency_quantile" else None,
            "op_class": self.spec.op_class,
            "windows_evaluated": self.windows_evaluated,
            "windows_violated": self.windows_violated,
            "worst": None if math.isnan(self.worst) else round(self.worst, 6),
            "compliant": self.windows_violated == 0,
        }


def sketch_copy(sketch: QuantileSketch) -> QuantileSketch:
    """Cheap value-copy so merging never mutates the window's sketch."""
    clone = QuantileSketch(compression=sketch.compression)
    clone.merge(sketch)
    return clone


def default_slos() -> tuple[SloSpec, ...]:
    """Objectives calibrated against the healthy LAN chaos workload.

    Healthy-cell client latencies sit in the low milliseconds (reads)
    to ~10 ms (ordered writes under contention); the limits leave an
    order-of-magnitude margin so fault-free runs never breach while WAN
    delay bursts (+80 ms, §VI-C3) and crash stalls still trip them.
    ``min_samples`` is 2 for the latency objectives: a delay burst
    throttles the closed loop to a handful of completions per window
    (each hundreds of ms), so a high floor would mask exactly the
    windows that matter, while requiring two slow completions still
    keeps a lone outlier from paging.
    """
    return (
        SloSpec(
            name="read_latency_p99", kind="latency_quantile",
            limit=0.060, q=0.99, op_class="read", min_samples=2,
            description="p99 read latency ceiling (fast-read regime)",
        ),
        SloSpec(
            name="write_latency_p99", kind="latency_quantile",
            limit=0.100, q=0.99, op_class="write", min_samples=2,
            description="p99 ordered-write latency ceiling",
        ),
        SloSpec(
            name="fast_read_hit_rate", kind="hit_rate_floor",
            limit=0.5, min_samples=8,
            description="resolved fast reads must mostly hit",
        ),
        SloSpec(
            name="progress", kind="progress", limit=1.0,
            severity="critical",
            description="some request completes while work is in flight",
        ),
    )
