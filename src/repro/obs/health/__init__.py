"""repro.obs.health — online BFT health diagnosis on the obs plane.

Layers on top of :mod:`repro.obs`:

- :mod:`~repro.obs.health.slo` — declarative SLO specs over sliding
  sim-time windows (latency quantiles, fast-read hit-rate floor,
  progress);
- :mod:`~repro.obs.health.detectors` — BFT-aware anomaly detectors
  (replica divergence, abort storms, view/mode churn, sealed-counter
  stalls, enclave reboots);
- :mod:`~repro.obs.health.recorder` — bounded flight recorder dumping
  deterministic forensic bundles when detectors fire;
- :mod:`~repro.obs.health.plane` — the :class:`HealthPlane` tying them
  together with zero perturbation of the simulation;
- :mod:`~repro.obs.health.harness` — detection-latency measurement over
  the :mod:`repro.faults` scenario catalogue.
"""

from .detectors import (
    CacheStalenessDetector,
    ClientRetrySpikeDetector,
    Detector,
    EnclaveRebootDetector,
    FastReadAbortStormDetector,
    Finding,
    MigrationStallDetector,
    ModeSwitchChurnDetector,
    QueueSaturationDetector,
    ReplicaDivergenceDetector,
    SealedCounterStallDetector,
    ShardImbalanceDetector,
    ViewChangeDetector,
    default_detectors,
    shard_of_node,
)
from .events import Evidence, HealthEvent
from .harness import EXPECTED, render_table, run_detection, run_harness
from .plane import HealthPlane, render_health, write_health_report
from .recorder import FlightRecorder
from .slo import SloSpec, SloTracker, default_slos
from .window import NodeDelta, RegistryDeltas, WindowSnapshot

__all__ = [
    "CacheStalenessDetector",
    "ClientRetrySpikeDetector",
    "Detector",
    "EnclaveRebootDetector",
    "EXPECTED",
    "Evidence",
    "FastReadAbortStormDetector",
    "Finding",
    "FlightRecorder",
    "HealthEvent",
    "HealthPlane",
    "MigrationStallDetector",
    "ModeSwitchChurnDetector",
    "NodeDelta",
    "QueueSaturationDetector",
    "RegistryDeltas",
    "ReplicaDivergenceDetector",
    "SealedCounterStallDetector",
    "ShardImbalanceDetector",
    "SloSpec",
    "SloTracker",
    "ViewChangeDetector",
    "WindowSnapshot",
    "default_detectors",
    "default_slos",
    "render_health",
    "render_table",
    "run_detection",
    "run_harness",
    "write_health_report",
]
