"""BFT-aware anomaly detectors over window snapshots.

Each detector turns one :class:`~repro.obs.health.window.WindowSnapshot`
into zero or more :class:`Finding`\\ s. Detectors are *edge-triggered*:
a condition that stays true across consecutive windows fires once when
it appears and re-arms when it clears, so a replica that stays crashed
for twenty windows produces one diagnosis, not twenty.

The catalogue maps the failure modes the paper's evaluation provokes
(DSN 2018 §VI) — and the ones related work flags as the critical
observables for trusted-component BFT (arXiv:2312.05714: what the
untrusted majority gets away with; arXiv:2107.11144: fast-read abort
storms as the canonical liveness failure) — onto the signals the obs
registry already carries:

======================  ==================================================
``replica_divergence``   one replica's execute counter drifts from quorum
``fast_read_abort_storm``  conflict+timeout rate of resolved fast reads
``cache_staleness``      stale-entry conflicts dominate cache-backed reads
``mode_switch`` / ``mode_switch_churn``  adaptive total-order flapping
``view_change``          a replica advanced its view
``sealed_counter_stall`` trusted counter frozen while the cell progresses
``enclave_reboot``       reboot + cache-clear signature on one Troxy
``client_retry_spike``   client-side retransmissions (tamper/corrupt/loss)
``shard_imbalance``      one agreement group executing far above fair share
``migration_stall``      a live shard handoff frozen past its expected window
``queue_saturation``     leader batch-queue wait dwarfing ordering service
======================  ==================================================

Everything here is pure arithmetic on snapshot fields: no simulation
events, no randomness, no wall clock.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from .window import WindowSnapshot


@dataclass(frozen=True)
class Finding:
    """One detector verdict, before the plane attaches time/evidence."""

    kind: str
    node: str
    severity: str
    detail: dict = field(default_factory=dict)
    metrics: tuple[tuple[str, float], ...] = ()
    #: Extra key component so recurrences that are genuinely distinct
    #: (a second view change, a second reboot) re-fire despite the
    #: edge-trigger (e.g. the new view number).
    instance: object = None

    @property
    def key(self) -> tuple:
        return (self.kind, self.node, self.instance)


class Detector:
    """Base: subclasses implement ``_conditions(win) -> list[Finding]``."""

    name = "detector"

    def __init__(self):
        self._active: set[tuple] = set()

    def evaluate(self, win: WindowSnapshot) -> list[Finding]:
        conditions = self._conditions(win)
        current = {finding.key for finding in conditions}
        fired = [f for f in conditions if f.key not in self._active]
        self._active = current
        return fired

    def _conditions(self, win: WindowSnapshot) -> list[Finding]:
        raise NotImplementedError


def _median(values: list[int]) -> float:
    ordered = sorted(values)
    n = len(ordered)
    if n == 0:
        return 0.0
    mid = n // 2
    if n % 2:
        return float(ordered[mid])
    return (ordered[mid - 1] + ordered[mid]) / 2.0


class ReplicaDivergenceDetector(Detector):
    """One replica's execution counter drifting below the quorum's.

    The execute counter is the cheapest proxy for "this replica applied
    the same committed prefix as everyone else": a crashed, partitioned
    or silently-withholding replica stops executing while the quorum
    advances. Fires when the per-window quorum median moved by at least
    ``min_quorum_ops`` and one replica covered less than ``lag_ratio``
    of it.
    """

    name = "replica_divergence"

    def __init__(self, min_quorum_ops: int = 4, lag_ratio: float = 0.25):
        super().__init__()
        self.min_quorum_ops = min_quorum_ops
        self.lag_ratio = lag_ratio

    def _conditions(self, win: WindowSnapshot) -> list[Finding]:
        # Quorums are per agreement group: in a sharded cell different
        # groups legitimately execute different volumes (keyspace skew),
        # so each replica is compared against its *own* group's median.
        by_shard: dict = {}
        for node in win.replica_nodes():
            by_shard.setdefault(shard_of_node(node) or "g0", []).append(node)
        out = []
        for shard in sorted(by_shard):
            nodes = by_shard[shard]
            if len(nodes) < 3:
                continue
            executes = {node: win.per_node[node].executes for node in nodes}
            median = _median(list(executes.values()))
            if median < self.min_quorum_ops:
                continue
            for node in nodes:
                if executes[node] < self.lag_ratio * median:
                    out.append(Finding(
                        kind="replica_divergence", node=node, severity="critical",
                        detail={
                            "executes": executes[node],
                            "quorum_median": median,
                            "lag_ratio": self.lag_ratio,
                        },
                        metrics=(
                            ("executions_total.delta", float(executes[node])),
                            ("quorum_median.delta", median),
                        ),
                    ))
        return out


class FastReadAbortStormDetector(Detector):
    """Resolved fast reads aborting (conflict or timeout) en masse.

    arXiv:2107.11144's canonical liveness failure: the fast path keeps
    being tried and keeps failing, burning a round trip per attempt.
    """

    name = "fast_read_abort_storm"

    def __init__(self, min_samples: int = 6, abort_ratio: float = 0.5):
        super().__init__()
        self.min_samples = min_samples
        self.abort_ratio = abort_ratio

    def _conditions(self, win: WindowSnapshot) -> list[Finding]:
        out = []
        for node in win.replica_nodes():
            delta = win.per_node[node]
            attempts = delta.fast_attempts
            if attempts < self.min_samples:
                continue
            ratio = delta.fast_aborts / attempts
            if ratio >= self.abort_ratio:
                out.append(Finding(
                    kind="fast_read_abort_storm", node=node, severity="warn",
                    detail={
                        "attempts": attempts,
                        "conflicts": delta.fast_conflicts,
                        "timeouts": delta.fast_timeouts,
                        "abort_ratio": round(ratio, 4),
                    },
                    metrics=(
                        ("fast_read_results_total{outcome=conflict}.delta",
                         float(delta.fast_conflicts)),
                        ("fast_read_results_total{outcome=timeout}.delta",
                         float(delta.fast_timeouts)),
                        ("fast_read_results_total{outcome=hit}.delta",
                         float(delta.fast_hits)),
                    ),
                ))
        return out


class CacheStalenessDetector(Detector):
    """Stale cache entries dominating the fast-read verdicts.

    A conflict (as opposed to a timeout) means the cached reply did not
    match the read quorum — the entry was stale or invalidated while
    being served. A high conflict share among cache-backed reads is the
    write-contention signature of Fig. 10.
    """

    name = "cache_staleness"

    def __init__(self, min_conflicts: int = 4, conflict_ratio: float = 0.5):
        super().__init__()
        self.min_conflicts = min_conflicts
        self.conflict_ratio = conflict_ratio

    def _conditions(self, win: WindowSnapshot) -> list[Finding]:
        out = []
        for node in win.replica_nodes():
            delta = win.per_node[node]
            resolved = delta.fast_hits + delta.fast_conflicts
            if delta.fast_conflicts < self.min_conflicts or resolved == 0:
                continue
            ratio = delta.fast_conflicts / resolved
            if ratio >= self.conflict_ratio:
                out.append(Finding(
                    kind="cache_staleness", node=node, severity="warn",
                    detail={
                        "conflicts": delta.fast_conflicts,
                        "hits": delta.fast_hits,
                        "conflict_ratio": round(ratio, 4),
                        "cache_misses": delta.cache_misses,
                    },
                    metrics=(
                        ("fast_read_results_total{outcome=conflict}.delta",
                         float(delta.fast_conflicts)),
                        ("cache_lookups_total{outcome=miss}.delta",
                         float(delta.cache_misses)),
                    ),
                ))
        return out


class ModeSwitchChurnDetector(Detector):
    """Adaptive total-order switches, single and flapping.

    One switch is the monitor doing its job (``mode_switch``, info);
    ``churn_threshold`` switches within the last ``trail`` windows means
    the threshold is oscillating (``mode_switch_churn``, warn).
    """

    name = "mode_switch_churn"

    def __init__(self, churn_threshold: int = 3, trail: int = 8):
        super().__init__()
        self.churn_threshold = churn_threshold
        self.trail = trail
        self._history: dict[str, deque] = {}

    def _conditions(self, win: WindowSnapshot) -> list[Finding]:
        out = []
        for node in win.replica_nodes():
            switches = win.per_node[node].switches
            history = self._history.setdefault(node, deque(maxlen=self.trail))
            history.append(switches)
            if switches:
                out.append(Finding(
                    kind="mode_switch", node=node, severity="info",
                    detail={"switches": switches},
                    metrics=(("monitor_mode_switches_total.delta",
                              float(switches)),),
                ))
            trailing = sum(history)
            if trailing >= self.churn_threshold:
                out.append(Finding(
                    kind="mode_switch_churn", node=node, severity="warn",
                    detail={
                        "switches_in_trail": trailing,
                        "trail_windows": len(history),
                    },
                    metrics=(("monitor_mode_switches_total.trail",
                              float(trailing)),),
                ))
        return out


class ViewChangeDetector(Detector):
    """A replica advanced its view (leader suspected/replaced)."""

    name = "view_change"

    def _conditions(self, win: WindowSnapshot) -> list[Finding]:
        out = []
        for node in win.replica_nodes():
            delta = win.per_node[node]
            if delta.view_delta > 0:
                out.append(Finding(
                    kind="view_change", node=node, severity="warn",
                    detail={"view": delta.view, "advanced_by": delta.view_delta},
                    metrics=(("replica.view", float(delta.view)),),
                    instance=delta.view,
                ))
        return out


class SealedCounterStallDetector(Detector):
    """A replica's trusted counters frozen while the cell progresses.

    Hybster certifies every ordered message against a monotonic sealed
    counter; a counter that stops advancing for ``patience`` windows on
    a node that also executes nothing — while the rest of the cell
    keeps ordering — means that node has dropped out of certification
    (crash, partition, or a rollback attempt holding the counter back).
    """

    name = "sealed_counter_stall"

    def __init__(self, patience: int = 3, min_cluster_progress: int = 4):
        super().__init__()
        self.patience = patience
        self.min_cluster_progress = min_cluster_progress
        self._stalled_for: dict[str, int] = {}

    def _conditions(self, win: WindowSnapshot) -> list[Finding]:
        out = []
        # Progress is judged within the node's own agreement group: a
        # group whose keyspace slice is simply cold (sharded cells) is
        # idle, not stalled.
        shard_progress: dict = {}
        for node in win.replica_nodes():
            shard = shard_of_node(node) or "g0"
            shard_progress[shard] = (
                shard_progress.get(shard, 0) + win.per_node[node].executes
            )
        for node in win.replica_nodes():
            delta = win.per_node[node]
            cluster_progress = shard_progress[shard_of_node(node) or "g0"]
            stalled = (
                cluster_progress >= self.min_cluster_progress
                and delta.sealed_delta == 0
                and delta.executes == 0
            )
            if stalled:
                self._stalled_for[node] = self._stalled_for.get(node, 0) + 1
            else:
                self._stalled_for[node] = 0
            if self._stalled_for[node] >= self.patience:
                out.append(Finding(
                    kind="sealed_counter_stall", node=node, severity="critical",
                    detail={
                        "stalled_windows": self._stalled_for[node],
                        "sealed_sum": delta.sealed_sum,
                        "cluster_executes": cluster_progress,
                    },
                    metrics=(
                        ("sealed_counter.sum", float(delta.sealed_sum)),
                        ("executions_total.cluster_delta",
                         float(cluster_progress)),
                    ),
                ))
        return out


class EnclaveRebootDetector(Detector):
    """Enclave power-cycle signature: reboot plus cache cold-clear."""

    name = "enclave_reboot"

    def _conditions(self, win: WindowSnapshot) -> list[Finding]:
        out = []
        for node in win.replica_nodes():
            delta = win.per_node[node]
            if delta.reboots_delta > 0:
                out.append(Finding(
                    kind="enclave_reboot", node=node, severity="critical",
                    detail={
                        "reboots": delta.reboots_delta,
                        "cache_clears": delta.cache_clears_delta,
                    },
                    metrics=(
                        ("enclave.reboots.delta", float(delta.reboots_delta)),
                        ("cache.clears.delta", float(delta.cache_clears_delta)),
                    ),
                    instance=win.index,
                ))
        return out


class ClientRetrySpikeDetector(Detector):
    """Client retransmissions: sealed replies rejected, lost, or late.

    The legacy client only retries when a reply never arrived or failed
    seal verification (tampered/corrupted channel, §VI-B), so any
    retry burst is diagnostic — healthy cells run at zero retries.
    """

    name = "client_retry_spike"

    def __init__(self, min_retries: int = 1):
        super().__init__()
        self.min_retries = min_retries

    def _conditions(self, win: WindowSnapshot) -> list[Finding]:
        if win.retries < self.min_retries:
            return []
        return [Finding(
            kind="client_retry_spike", node="", severity="warn",
            detail={"retries": win.retries, "completed": win.completed},
            metrics=(("client.retries.delta", float(win.retries)),),
        )]


def shard_of_node(node: str):
    """Agreement group of a replica node name (docs/SHARDING.md).

    ``g{N}-replica-{i}`` belongs to ``g{N}``; the unprefixed historical
    ``replica-{i}`` names are group 0. Non-replica nodes map to None.
    """
    if node.startswith("replica-"):
        return "g0"
    head, sep, rest = node.partition("-")
    if sep and rest.startswith("replica-") and len(head) > 1 and head[0] == "g" \
            and head[1:].isdigit():
        return head
    return None


class ShardImbalanceDetector(Detector):
    """One agreement group executing far beyond its fair share.

    Groups per-node execute deltas by shard (node-name prefix). With a
    uniform ring the shards should split the load roughly evenly; a
    group running at ``ratio`` times the fair share for a window means
    the keyspace placement (or a skewed workload) has concentrated the
    traffic — the signal that a rebalance migration is warranted. Only
    meaningful when the window saw at least ``min_total_ops`` executes
    across two or more shards.
    """

    name = "shard_imbalance"

    def __init__(self, ratio: float = 2.0, min_total_ops: int = 12):
        super().__init__()
        self.ratio = ratio
        self.min_total_ops = min_total_ops

    def _conditions(self, win: WindowSnapshot) -> list[Finding]:
        per_shard: dict[str, int] = {}
        for node in win.replica_nodes():
            shard = shard_of_node(node)
            if shard is None:
                continue
            per_shard[shard] = per_shard.get(shard, 0) + win.per_node[node].executes
        if len(per_shard) < 2:
            return []
        total = sum(per_shard.values())
        if total < self.min_total_ops:
            return []
        fair = total / len(per_shard)
        out = []
        for shard in sorted(per_shard):
            if per_shard[shard] >= self.ratio * fair:
                out.append(Finding(
                    kind="shard_imbalance", node=shard, severity="warn",
                    detail={
                        "shard_executes": per_shard[shard],
                        "fair_share": round(fair, 2),
                        "shards": len(per_shard),
                        "ratio": round(per_shard[shard] / fair, 4),
                    },
                    metrics=(
                        ("executions_total.shard_delta", float(per_shard[shard])),
                        ("executions_total.fair_share", fair),
                    ),
                ))
        return out


class MigrationStallDetector(Detector):
    """A live shard handoff stuck past its expected freeze window.

    A healthy migration freezes writes for a few fence round-trips —
    well under one health window. A migration still active (and the
    router still frozen) after ``patience`` consecutive windows means
    the fenced transfer cannot converge (partitioned source quorum,
    crashed destination leader): writes to the moving keys are piling
    up in client retry loops, so this is critical, not cosmetic.
    """

    name = "migration_stall"

    def __init__(self, patience: int = 4):
        super().__init__()
        self.patience = patience
        self._frozen_for = 0
        self._episode = 0

    def _conditions(self, win: WindowSnapshot) -> list[Finding]:
        if win.migrations_active > 0 and win.router_frozen:
            self._frozen_for += 1
        else:
            if self._frozen_for >= self.patience:
                self._episode += 1  # re-arm for a distinct later stall
            self._frozen_for = 0
        if self._frozen_for < self.patience:
            return []
        return [Finding(
            kind="migration_stall", node="", severity="critical",
            detail={
                "frozen_windows": self._frozen_for,
                "migrations_active": win.migrations_active,
                "migrations_completed": win.migrations_completed,
            },
            metrics=(("migration.frozen_windows", float(self._frozen_for)),),
            instance=self._episode,
        )]


class QueueSaturationDetector(Detector):
    """Leader batch-queue wait dwarfing ordering service time.

    The critical-path wait/service split (repro.obs.critpath) made the
    batch queue a first-class phase: ``hybster.queue`` spans measure how
    long each request sat in the leader's :class:`BatchAssembler`, and
    ``hybster.order`` spans how long cutting-plus-certifying a slot
    takes. Healthy batching holds the mean wait within a small multiple
    of the service time (the assembler waits at most ``batch_wait``, and
    adaptively less under light load). When arrivals outrun the drain
    rate — pipeline slots all in flight, cutoff never reached fast
    enough — waits grow with the backlog while service stays flat, so
    the wait/service ratio diverges. Fires when the ratio exceeds
    ``ratio`` for ``patience`` consecutive windows with at least
    ``min_waits`` queued requests per window; that margin keeps a
    healthy adaptive leader (ratio ~15 on the batching benchmark) quiet.
    """

    name = "queue_saturation"

    def __init__(self, ratio: float = 40.0, min_waits: int = 6,
                 patience: int = 2):
        super().__init__()
        self.ratio = ratio
        self.min_waits = min_waits
        self.patience = patience
        self._hot_for: dict[str, int] = {}

    def _conditions(self, win: WindowSnapshot) -> list[Finding]:
        out = []
        for node in win.replica_nodes():
            delta = win.per_node[node]
            service = delta.mean_order_service
            saturated = (
                delta.queue_waits >= self.min_waits
                and service > 0.0
                and delta.mean_queue_wait >= self.ratio * service
            )
            if saturated:
                self._hot_for[node] = self._hot_for.get(node, 0) + 1
            else:
                self._hot_for[node] = 0
            if self._hot_for[node] >= self.patience:
                ratio = delta.mean_queue_wait / service
                out.append(Finding(
                    kind="queue_saturation", node=node, severity="warn",
                    detail={
                        "queued_requests": delta.queue_waits,
                        "mean_queue_wait": round(delta.mean_queue_wait, 9),
                        "mean_order_service": round(service, 9),
                        "wait_service_ratio": round(ratio, 2),
                        "hot_windows": self._hot_for[node],
                    },
                    metrics=(
                        ("queue.wait.mean", delta.mean_queue_wait),
                        ("order.service.mean", service),
                        ("queue.wait_service_ratio", ratio),
                    ),
                ))
        return out


def default_detectors() -> list[Detector]:
    """The full catalogue at its default thresholds."""
    return [
        ReplicaDivergenceDetector(),
        FastReadAbortStormDetector(),
        CacheStalenessDetector(),
        ModeSwitchChurnDetector(),
        ViewChangeDetector(),
        SealedCounterStallDetector(),
        EnclaveRebootDetector(),
        ClientRetrySpikeDetector(),
        ShardImbalanceDetector(),
        MigrationStallDetector(),
        QueueSaturationDetector(),
    ]
