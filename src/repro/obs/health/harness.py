"""Detection-latency harness: chaos scenarios × the health plane.

For every (scenario, seed) pair the harness runs the full
:mod:`repro.faults` campaign machinery with a :class:`HealthPlane`
attached and measures, in sim-time, the gap between the first fault
injection (the scenario's own ``injections`` timeline) and the first
health event of an *expected* kind. Fault-free scenarios invert the
check: any health event at all is a false positive.

The harness is the empirical anchor for every detector threshold: the
tracked ``benchmarks/results/health_detection.txt`` table is
regenerated from here, and the CI health job fails when a catalogued
scenario stops being detected or a quiet cell starts paging.
"""

from __future__ import annotations

from ...faults.campaign import run_scenario
from ...faults.schedule import get_scenario, scenario_names
from .plane import HealthPlane

#: Scenario -> health-event kinds that count as a correct diagnosis.
#: An empty tuple means the scenario is fault-free: the health plane
#: must stay silent and every event is a false positive.
EXPECTED: dict[str, tuple[str, ...]] = {
    "healthy_control": (),
    "troxy_crash_failover": (
        "replica_divergence", "sealed_counter_stall", "client_retry_spike",
    ),
    "leader_crash_view_change": (
        "view_change", "replica_divergence", "sealed_counter_stall",
    ),
    "crash_restart_recovery": (
        "replica_divergence", "sealed_counter_stall",
    ),
    "enclave_reboot_rollback": ("enclave_reboot",),
    "partition_minority": (
        "replica_divergence", "sealed_counter_stall",
    ),
    "message_delay_burst": ("slo_violation", "client_retry_spike"),
    "message_loss_burst": ("client_retry_spike",),
    "reply_corruption": ("client_retry_spike",),
    "host_tamper_replies": ("client_retry_spike",),
    "write_contention_attack": (
        "cache_staleness", "fast_read_abort_storm", "mode_switch",
    ),
    "unresponsive_cache_peer": (
        "fast_read_abort_storm", "mode_switch", "slo_violation",
    ),
    # Lease scenarios (docs/READS.md): leases are enabled and the fault
    # targets the lease machinery itself.
    "lease_partition_expiry": (
        "replica_divergence", "sealed_counter_stall", "client_retry_spike",
        "slo_violation",
    ),
    "lease_enclave_reboot": ("enclave_reboot",),
    "lease_migration_freeze": ("slo_violation", "client_retry_spike"),
    # Sharded scenarios (docs/SHARDING.md) build two agreement groups.
    "shard_migration_partition": (
        "replica_divergence", "sealed_counter_stall", "client_retry_spike",
        "shard_imbalance",
    ),
    "shard_migration_leader_crash": (
        "migration_stall", "view_change", "client_retry_spike",
    ),
    "shard_rebalance_contention": ("mode_switch", "shard_imbalance"),
}


def run_detection(name: str, seed: int, window: float = 0.25) -> dict:
    """One scenario × seed with the health plane attached.

    Returns a JSON-serialisable verdict; the ``plane`` key (the live
    :class:`HealthPlane`, for bundle dumps) is attached as an extra,
    non-serialisable field callers must pop before dumping.
    """
    scenario = get_scenario(name)
    expected = EXPECTED.get(name, ())
    plane = HealthPlane(window=window)
    run = run_scenario(scenario, seed, registry=plane.registry, obs=plane)
    plane.finalize()

    injections = run["injections"]
    injected_t = min((inj["t"] for inj in injections), default=None)

    detected_t = None
    detected_kind = None
    false_positives = 0
    for event in plane.events:
        matches = event.kind in expected and (
            injected_t is None or event.t >= injected_t
        )
        if matches and detected_t is None:
            detected_t = event.t
            detected_kind = event.kind
        if not expected or (injected_t is not None and event.t < injected_t):
            false_positives += 1

    if expected:
        ok = detected_t is not None
    else:
        ok = not plane.events
    report = plane.health_report()
    return {
        "scenario": name,
        "seed": seed,
        "window": window,
        "expected": list(expected),
        "injections": len(injections),
        "injected_t": injected_t,
        "detected_t": detected_t,
        "detected_kind": detected_kind,
        "detection_latency": (
            None if detected_t is None or injected_t is None
            else round(detected_t - injected_t, 9)
        ),
        "events_total": len(plane.events),
        "event_counts": report["event_counts"],
        "false_positives": false_positives,
        "invariants_ok": run["ok"],
        "ok": ok,
        "plane": plane,
    }


def run_harness(
    names: list[str] | None = None,
    seeds: list[int] = (1,),
    window: float = 0.25,
) -> dict:
    """Sweep scenarios × seeds; aggregate a detection-latency report."""
    if names is None:
        names = [n for n in scenario_names() if n in EXPECTED]
    runs = []
    for name in names:
        for seed in seeds:
            runs.append(run_detection(name, seed, window=window))
    missed = [
        {"scenario": r["scenario"], "seed": r["seed"]}
        for r in runs if not r["ok"]
    ]
    false_positives = sum(r["false_positives"] for r in runs)
    return {
        "tool": "repro.obs.health",
        "scenarios": names,
        "seeds": list(seeds),
        "window": window,
        "runs": runs,
        "summary": {
            "total": len(runs),
            "detected": len(runs) - len(missed),
            "missed": missed,
            "false_positives": false_positives,
        },
    }


def _fmt_t(value) -> str:
    return "-" if value is None else f"{value * 1e3:8.1f}"


def render_table(report: dict) -> str:
    """Fixed-width detection-latency table (tracked results format)."""
    lines = [
        "Health-plane detection latency (sim-time, ms)",
        "=" * 45,
        f"{'scenario':<28} {'seed':>4} {'inject':>8} {'detect':>8} "
        f"{'latency':>8}  {'first event':<22} verdict",
        "-" * 96,
    ]
    for run in report["runs"]:
        if run["expected"]:
            verdict = "DETECTED" if run["ok"] else "MISSED"
        else:
            verdict = "QUIET" if run["ok"] else "FALSE-POSITIVE"
        lines.append(
            f"{run['scenario']:<28} {run['seed']:>4} "
            f"{_fmt_t(run['injected_t']):>8} {_fmt_t(run['detected_t']):>8} "
            f"{_fmt_t(run['detection_latency']):>8}  "
            f"{(run['detected_kind'] or '-'):<22} {verdict}"
        )
    summary = report["summary"]
    lines.append("-" * 96)
    lines.append(
        f"{summary['detected']}/{summary['total']} scenarios diagnosed, "
        f"{summary['false_positives']} false positive(s)"
        + ("" if not summary["missed"] else f", missed: {summary['missed']}")
    )
    return "\n".join(lines)
