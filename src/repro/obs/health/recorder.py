"""Fault-forensics flight recorder.

A bounded ring of recently closed spans/events per node, continuously
fed by the health plane's span tap. When any detector fires, the
recorder freezes the rings into a *bundle* — the triggering health
events plus the last N spans of every node — so the forensic context
around a fault survives even though the full span table may be huge or
discarded.

``write()`` dumps each bundle deterministically:

- ``events.jsonl``  — the triggering health events, one per line;
- ``spans.jsonl``   — the frozen ring contents in span-id order;
- ``trace.json``    — the same spans as a Chrome-trace slice, loadable
  in Perfetto next to the full-run trace.

All content derives from sim-time state only, so two same-seed runs
produce byte-identical bundles (the CI health job diffs them).
"""

from __future__ import annotations

import json
from collections import deque
from pathlib import Path
from typing import Optional, Sequence, Union

from ..export import chrome_trace
from ..spans import Span
from .events import HealthEvent


def _dumps(obj) -> str:
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def span_record(span: Span) -> dict:
    """The JSONL shape shared with :func:`repro.obs.export.metrics_jsonl`."""
    return {
        "type": span.kind,
        "span_id": span.span_id,
        "parent_id": span.parent_id,
        "trace_id": span.trace_id,
        "name": span.name,
        "node": span.node,
        "start": span.start,
        "end": span.end,
        "attrs": span.attrs,
    }


class FlightRecorder:
    """Per-node rings of closed spans + frozen forensic bundles."""

    def __init__(self, capacity: int = 128, max_bundles: int = 12):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1: {capacity}")
        self.capacity = capacity
        self.max_bundles = max_bundles
        self._rings: dict[str, deque] = {}
        self.bundles: list[dict] = []
        self.dropped_bundles = 0
        self.recorded_spans = 0

    # -- continuous feed -------------------------------------------------------

    def record(self, span: Span) -> None:
        ring = self._rings.get(span.node)
        if ring is None:
            ring = self._rings[span.node] = deque(maxlen=self.capacity)
        ring.append(span)
        self.recorded_spans += 1

    def recent_span_ids(self, node: str, k: int = 8) -> tuple[int, ...]:
        """Ids of the last ``k`` spans on ``node`` (evidence links)."""
        ring = self._rings.get(node, ())
        tail = list(ring)[-k:]
        return tuple(span.span_id for span in tail)

    # -- capture ---------------------------------------------------------------

    def capture(self, t: float, events: Sequence[HealthEvent]) -> Optional[dict]:
        """Freeze the rings into a bundle; None when at capacity."""
        if len(self.bundles) >= self.max_bundles:
            self.dropped_bundles += 1
            return None
        spans: list[Span] = []
        for node in sorted(self._rings):
            spans.extend(self._rings[node])
        spans.sort(key=lambda s: s.span_id)
        bundle = {
            "seq": len(self.bundles),
            "t": t,
            "events": list(events),
            "spans": spans,
        }
        self.bundles.append(bundle)
        return bundle

    def summary(self) -> dict:
        return {
            "bundles": len(self.bundles),
            "dropped_bundles": self.dropped_bundles,
            "ring_capacity": self.capacity,
            "recorded_spans": self.recorded_spans,
        }

    # -- dump ------------------------------------------------------------------

    def write(self, out_dir: Union[str, Path]) -> list[Path]:
        """Write every bundle under ``out_dir``; returns bundle dirs."""
        out = Path(out_dir)
        out.mkdir(parents=True, exist_ok=True)
        written: list[Path] = []
        for bundle in self.bundles:
            kinds = sorted({event.kind for event in bundle["events"]})
            slug = kinds[0] if kinds else "capture"
            bundle_dir = out / f"bundle-{bundle['seq']:03d}-{slug}"
            bundle_dir.mkdir(parents=True, exist_ok=True)
            events_text = "".join(
                _dumps(event.as_dict()) + "\n" for event in bundle["events"]
            )
            (bundle_dir / "events.jsonl").write_text(events_text)
            spans_text = "".join(
                _dumps(span_record(span)) + "\n" for span in bundle["spans"]
            )
            (bundle_dir / "spans.jsonl").write_text(spans_text)
            trace = chrome_trace(bundle["spans"], process_name="repro.health")
            (bundle_dir / "trace.json").write_text(_dumps(trace) + "\n")
            written.append(bundle_dir)
        return written
