"""HealthPlane: online diagnosis on top of the obs plane.

A :class:`HealthPlane` *is* an :class:`~repro.obs.probes.ObsPlane` — it
attaches through the same duck-typed ``obs.*`` hooks and adds no probe
points — that additionally judges what it records. Evaluation is
piggybacked on probe activity: every span open/close checks whether the
simulated clock crossed a window boundary, and if so the elapsed
window(s) are closed and run through the SLO trackers and the detector
catalogue. The plane therefore schedules **zero** simulation events and
consumes no randomness; an observed-and-judged run is event-for-event
identical to an unobserved one, and two same-seed runs produce
byte-identical health reports and forensic bundles.

Data flow per window::

    registry counter deltas ─┐
    sampled cluster state ───┼─> WindowSnapshot ─> SLO trackers ─┐
    client.invoke closures ──┘                     detectors ────┼─> HealthEvents
                                                                 │
    span tap ──> FlightRecorder rings ── capture on any event <──┘
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Optional, Sequence, Union

from ..probes import ObsPlane
from ..registry import Registry
from ..spans import Span, SpanRecorder
from .detectors import Detector, Finding, default_detectors
from .events import Evidence, HealthEvent
from .recorder import FlightRecorder
from .slo import SloSpec, SloTracker, default_slos
from .window import RegistryDeltas, WindowSnapshot

#: Registry counter families the window delta-tracker watches.
WATCHED_FAMILIES = (
    "executions_total",
    "orders_total",
    "commits_total",
    "fast_read_results_total",
    "cache_lookups_total",
    "votes_total",
    "monitor_mode_switches_total",
)


class _TappedRecorder(SpanRecorder):
    """SpanRecorder that notifies the health plane on open/close.

    This is the single interception point for every span *and* instant
    event any probe records, so the flight recorder and the window
    clock need no per-probe wiring.
    """

    def __init__(self, on_open, on_closed):
        super().__init__()
        self._on_open = on_open
        self._on_closed = on_closed

    def begin(self, name, t, **kwargs):
        span = super().begin(name, t, **kwargs)
        self._on_open(span)
        return span

    def end(self, span, t, **attrs):
        span = super().end(span, t, **attrs)
        self._on_closed(span)
        return span

    def event(self, name, t, **kwargs):
        span = super().event(name, t, **kwargs)
        self._on_closed(span)
        return span


class HealthPlane(ObsPlane):
    """Obs plane + SLO tracking + anomaly detection + flight recorder."""

    def __init__(
        self,
        registry: Optional[Registry] = None,
        window: float = 0.25,
        slos: Optional[Sequence[SloSpec]] = None,
        detectors: Optional[Sequence[Detector]] = None,
        flight_capacity: int = 128,
        max_bundles: int = 12,
    ):
        recorder = _TappedRecorder(self._span_opened, self._span_closed)
        super().__init__(registry=registry, spans=recorder)
        if window <= 0:
            raise ValueError(f"window must be positive: {window}")
        self.window = float(window)
        self.slos = [
            SloTracker(spec)
            for spec in (slos if slos is not None else default_slos())
        ]
        self.detectors = (
            list(detectors) if detectors is not None else default_detectors()
        )
        self.flight = FlightRecorder(
            capacity=flight_capacity, max_bundles=max_bundles
        )
        self.events: list[HealthEvent] = []
        self.windows_evaluated = 0
        self._deltas = RegistryDeltas(self.registry, WATCHED_FAMILIES)
        self._win: Optional[WindowSnapshot] = None
        self._open_invokes = 0
        self._sampled: dict[tuple, float] = {}
        self._replica_ids: list[str] = []

    # -- attachment -----------------------------------------------------------

    def attach(self, cluster) -> "HealthPlane":
        if self.cluster is cluster:
            return self  # idempotent, like ObsPlane: don't re-baseline
        super().attach(cluster)
        self._replica_ids = sorted(
            replica.replica_id for replica in getattr(cluster, "replicas", ())
        )
        # Baseline: deltas and samples are measured from attach time.
        self._deltas.collect()
        self._prime_samples()
        start = self.now
        self._win = WindowSnapshot(
            start=start, end=start + self.window, index=0
        )
        return self

    def _prime_samples(self) -> None:
        cluster = self.cluster
        for replica in getattr(cluster, "replicas", ()):
            rid = replica.replica_id
            self._sampled[("view", rid)] = replica.view
            self._sampled[("sealed", rid)] = self._sealed_sum(replica)
            self._sampled[("invalid", rid)] = replica.stats.invalid_messages
        for host in getattr(cluster, "hosts", ()):
            rid = host.replica_id
            self._sampled[("reboots", rid)] = host.enclave.stats.reboots
            self._sampled[("clears", rid)] = host.core.cache.stats.clears

    @staticmethod
    def _sealed_sum(replica) -> int:
        counters = getattr(replica, "counters", None)
        if counters is None:
            return 0
        return sum(counters.snapshot().values())

    # -- span tap (window clock + flight recorder + client progress) ----------

    def _span_opened(self, span: Span) -> None:
        if self._win is None:
            return
        self._maybe_tick()
        if span.name == "client.invoke":
            self._win.started += 1
            self._open_invokes += 1

    def _span_closed(self, span: Span) -> None:
        self.flight.record(span)
        if self._win is None:
            return
        self._maybe_tick()
        # Batch-queue wait vs ordering service feed the queue_saturation
        # detector; force-closed (unfinished) spans have no real duration.
        if span.node is not None and not span.attrs.get("unfinished"):
            if span.name == "hybster.queue":
                nd = self._win.node(span.node)
                nd.queue_waits += 1
                nd.queue_wait_sum += span.duration
            elif span.name == "hybster.order":
                nd = self._win.node(span.node)
                nd.order_services += 1
                nd.order_service_sum += span.duration
        if span.name != "client.invoke":
            return
        self._open_invokes -= 1
        if span.attrs.get("unfinished"):
            return
        win = self._win
        win.completed += 1
        win.retries += int(span.attrs.get("retries", 0))
        op_class = "read" if span.attrs.get("read") else "write"
        win.observe_latency(op_class, span.duration)

    def _maybe_tick(self) -> None:
        if self._win is None or self._env is None:
            return
        now = self.now
        while now >= self._win.end:
            self._close_window()

    # -- window evaluation ------------------------------------------------------

    def _close_window(self, advance: bool = True) -> None:
        win = self._win
        self._populate(win)
        findings: list[Finding] = []
        for tracker in self.slos:
            finding = tracker.evaluate(win)
            if finding is not None:
                findings.append(finding)
        for detector in self.detectors:
            findings.extend(detector.evaluate(win))
        if findings:
            events = [self._event_from(finding, win) for finding in findings]
            self.events.extend(events)
            for event in events:
                self.registry.counter(
                    "health_events_total", "Health diagnoses emitted",
                    kind=event.kind, severity=event.severity,
                ).inc()
            self.flight.capture(win.end, events)
        self.windows_evaluated += 1
        if advance:
            self._win = WindowSnapshot(
                start=win.end, end=win.end + self.window, index=win.index + 1
            )
        else:
            self._win = None

    def _populate(self, win: WindowSnapshot) -> None:
        """Fill the snapshot: counter deltas + sampled cluster state."""
        for (name, labels), delta in self._deltas.collect().items():
            label_map = dict(labels)
            node = label_map.get("node")
            if node is None:
                continue
            nd = win.node(node)
            amount = int(delta)
            if name == "executions_total":
                nd.executes += amount
            elif name == "orders_total":
                nd.orders += amount
            elif name == "commits_total":
                nd.commits += amount
            elif name == "fast_read_results_total":
                outcome = label_map.get("outcome")
                if outcome == "hit":
                    nd.fast_hits += amount
                elif outcome == "conflict":
                    nd.fast_conflicts += amount
                elif outcome == "timeout":
                    nd.fast_timeouts += amount
            elif name == "cache_lookups_total":
                if label_map.get("outcome") == "miss":
                    nd.cache_misses += amount
            elif name == "votes_total":
                if label_map.get("outcome") == "decided":
                    nd.votes_decided += amount
            elif name == "monitor_mode_switches_total":
                nd.switches += amount
        for rid in self._replica_ids:
            win.node(rid)
        win.open_invokes = self._open_invokes
        cluster = self.cluster
        if cluster is None:
            return
        for replica in getattr(cluster, "replicas", ()):
            rid = replica.replica_id
            nd = win.node(rid)
            nd.view = replica.view
            nd.view_delta = int(self._sample(("view", rid), replica.view))
            sealed = self._sealed_sum(replica)
            nd.sealed_sum = sealed
            nd.sealed_delta = int(self._sample(("sealed", rid), sealed))
            nd.invalid_messages = int(self._sample(
                ("invalid", rid), replica.stats.invalid_messages
            ))
        for host in getattr(cluster, "hosts", ()):
            rid = host.replica_id
            nd = win.node(rid)
            nd.reboots_delta = int(self._sample(
                ("reboots", rid), host.enclave.stats.reboots
            ))
            nd.cache_clears_delta = int(self._sample(
                ("clears", rid), host.core.cache.stats.clears
            ))
        # Shard state (repro.shard): read-only samples off the router
        # and migrator, absent on single-group clusters.
        router = getattr(cluster, "router", None)
        if router is not None:
            win.router_frozen = router.frozen
        migrator = getattr(cluster, "migrator", None)
        if migrator is not None:
            reports = migrator.reports
            win.migrations_completed = sum(1 for r in reports if r.completed)
            win.migrations_active = sum(
                1 for r in reports if not r.completed and not r.reason
            )

    def _sample(self, key: tuple, current) -> float:
        """Delta of a sampled absolute since the previous window."""
        delta = current - self._sampled.get(key, 0)
        self._sampled[key] = current
        return delta

    def _event_from(self, finding: Finding, win: WindowSnapshot) -> HealthEvent:
        return HealthEvent(
            kind=finding.kind,
            t=win.end,
            node=finding.node,
            severity=finding.severity,
            detail=finding.detail,
            evidence=Evidence(
                metrics=finding.metrics,
                span_ids=self.flight.recent_span_ids(finding.node)
                if finding.node else (),
            ),
            window=(win.start, win.end),
        )

    # -- lifecycle --------------------------------------------------------------

    def finalize(self) -> int:
        """Close spans, evaluate the final (partial) window, snapshot."""
        unfinished = super().finalize()
        if self._win is not None:
            # The run may end mid-window; evaluate what accumulated.
            self._win.end = max(self.now, self._win.start)
            self._close_window(advance=False)
        self.registry.gauge(
            "health_windows_evaluated", "Sliding windows judged"
        ).set(self.windows_evaluated)
        self.registry.gauge(
            "health_flight_bundles", "Forensic bundles captured"
        ).set(len(self.flight.bundles))
        return unfinished

    # -- reporting ---------------------------------------------------------------

    def health_report(self) -> dict:
        """JSON-serialisable verdict summary (byte-stable when dumped)."""
        counts: dict[str, int] = {}
        for event in self.events:
            counts[event.kind] = counts.get(event.kind, 0) + 1
        return {
            "tool": "repro.obs.health",
            "window_seconds": self.window,
            "windows_evaluated": self.windows_evaluated,
            "event_count": len(self.events),
            "event_counts": counts,
            "events": [event.as_dict() for event in self.events],
            "slos": [tracker.summary() for tracker in self.slos],
            "detectors": sorted(detector.name for detector in self.detectors),
            "flight": self.flight.summary(),
        }


def render_health(plane: HealthPlane) -> str:
    """Deterministic terminal summary of one judged run."""
    report = plane.health_report()
    lines = [
        f"windows evaluated: {report['windows_evaluated']} "
        f"(window = {report['window_seconds']:g}s)",
        f"health events: {report['event_count']}",
    ]
    for event in plane.events:
        lines.append("  " + event.describe())
    for slo in report["slos"]:
        verdict = "OK " if slo["compliant"] else "VIOLATED"
        lines.append(
            f"slo {slo['slo']:<22} {verdict} "
            f"({slo['windows_violated']}/{slo['windows_evaluated']} windows)"
        )
    flight = report["flight"]
    lines.append(
        f"flight recorder: {flight['bundles']} bundle(s), "
        f"{flight['dropped_bundles']} dropped"
    )
    return "\n".join(lines)


def write_health_report(
    out_dir: Union[str, Path], plane: HealthPlane
) -> dict[str, Path]:
    """Write ``health.json`` + forensic bundles under ``out_dir``."""
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    written: dict[str, Path] = {}
    health_path = out / "health.json"
    health_path.write_text(
        json.dumps(plane.health_report(), indent=2, sort_keys=True) + "\n"
    )
    written["health"] = health_path
    if plane.flight.bundles:
        bundle_dirs = plane.flight.write(out / "bundles")
        written["bundles"] = out / "bundles"
        for path in bundle_dirs:
            written[path.name] = path
    return written
