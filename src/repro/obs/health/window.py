"""Sliding sim-time windows over registry counters and cluster state.

The health plane evaluates detectors and SLOs once per window. A
:class:`WindowSnapshot` is everything one evaluation sees: per-node
counter *deltas* accumulated since the previous window boundary (from
the obs registry, via :class:`RegistryDeltas`) plus a few sampled
absolutes read straight off the cluster objects (views, sealed-counter
sums, enclave reboot counts). Sampling is read-only — no simulation
events, no randomness — so the health plane inherits the obs plane's
non-perturbation guarantee.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..quantiles import QuantileSketch


@dataclass
class NodeDelta:
    """One node's activity within one window."""

    node: str
    executes: int = 0
    orders: int = 0
    commits: int = 0
    fast_hits: int = 0
    fast_conflicts: int = 0
    fast_timeouts: int = 0
    cache_misses: int = 0
    votes_decided: int = 0
    switches: int = 0
    invalid_messages: int = 0
    # Batch-queue wait vs ordering service, accumulated from closed
    # hybster.queue / hybster.order spans (repro.obs.critpath phases).
    queue_waits: int = 0
    queue_wait_sum: float = 0.0
    order_services: int = 0
    order_service_sum: float = 0.0
    # Sampled absolutes (value at window end) and their window deltas.
    view: int = 0
    view_delta: int = 0
    reboots_delta: int = 0
    sealed_sum: int = 0
    sealed_delta: int = 0
    cache_clears_delta: int = 0

    @property
    def fast_attempts(self) -> int:
        return self.fast_hits + self.fast_conflicts + self.fast_timeouts

    @property
    def mean_queue_wait(self) -> float:
        return self.queue_wait_sum / self.queue_waits if self.queue_waits else 0.0

    @property
    def mean_order_service(self) -> float:
        return (
            self.order_service_sum / self.order_services
            if self.order_services else 0.0
        )

    @property
    def fast_aborts(self) -> int:
        return self.fast_conflicts + self.fast_timeouts


@dataclass
class WindowSnapshot:
    """Everything one health evaluation sees for [start, end)."""

    start: float
    end: float
    index: int
    #: Client-side progress (from root client.invoke spans).
    started: int = 0
    completed: int = 0
    retries: int = 0
    open_invokes: int = 0
    #: op_class ("read" / "write" / "all") -> latency sketch for
    #: invocations that completed inside this window.
    latency: dict = field(default_factory=dict)
    #: replica/host node name -> NodeDelta.
    per_node: dict = field(default_factory=dict)
    #: Sampled shard state (repro.shard); zero/false on unsharded cells.
    router_frozen: bool = False
    migrations_active: int = 0
    migrations_completed: int = 0

    def node(self, name: str) -> NodeDelta:
        delta = self.per_node.get(name)
        if delta is None:
            delta = self.per_node[name] = NodeDelta(node=name)
        return delta

    def latency_sketch(self, op_class: str) -> QuantileSketch:
        sketch = self.latency.get(op_class)
        if sketch is None:
            sketch = self.latency[op_class] = QuantileSketch()
        return sketch

    def observe_latency(self, op_class: str, value: float) -> None:
        self.latency_sketch(op_class).observe(value)
        self.latency_sketch("all").observe(value)

    @property
    def total_executes(self) -> int:
        return sum(d.executes for d in self.per_node.values())

    def replica_nodes(self) -> list[str]:
        """Node names in sorted order (deterministic detector loops)."""
        return sorted(self.per_node)


class RegistryDeltas:
    """Per-instrument deltas of selected counter families.

    ``collect()`` walks the watched families, diffs each instrument's
    current value against the last collection, and returns
    ``{(family, labels): delta}`` for every series that moved. State is
    one float per live series — O(instruments), churn-free.
    """

    def __init__(self, registry, families: tuple[str, ...]):
        self.registry = registry
        self.families = families
        self._last: dict[tuple[str, tuple], float] = {}

    def collect(self) -> dict[tuple[str, tuple], float]:
        moved: dict[tuple[str, tuple], float] = {}
        reg_families = self.registry._families
        for name in self.families:
            family = reg_families.get(name)
            if family is None:
                continue
            for labels in sorted(family.instruments):
                instrument = family.instruments[labels]
                value = float(instrument.value)
                key = (name, labels)
                delta = value - self._last.get(key, 0.0)
                if delta:
                    moved[key] = delta
                self._last[key] = value
        return moved
