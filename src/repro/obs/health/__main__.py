"""CLI: measure health-plane detection latency over chaos scenarios.

Usage::

    python -m repro.obs.health                               # full catalogue
    python -m repro.obs.health --scenarios healthy_control --seeds 3
    python -m repro.obs.health --out health-report --results table.txt

Every run is fully deterministic: the same arguments produce the same
table, the same ``health.json`` files, and byte-identical forensic
bundles — the CI health job runs the command twice and diffs the output
directories. Exit status is non-zero when a catalogued fault scenario
goes undiagnosed or a fault-free scenario raises any health event
(false positive).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from ...faults.campaign import resolve_scenarios
from .harness import EXPECTED, render_table, run_harness
from .plane import write_health_report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.health",
        description="Run chaos scenarios with the online health plane "
        "attached and report sim-time detection latency per scenario.",
    )
    parser.add_argument(
        "--scenarios", default="all",
        help="comma-separated scenario names, or 'all' (default)",
    )
    parser.add_argument(
        "--seeds", type=int, default=1, metavar="N",
        help="run each scenario at seeds 1..N (default: 1)",
    )
    parser.add_argument(
        "--window", type=float, default=0.25,
        help="health-evaluation window in sim seconds (default: 0.25)",
    )
    parser.add_argument(
        "--out", metavar="DIR",
        help="write per-run health.json + forensic bundles under DIR",
    )
    parser.add_argument(
        "--results", metavar="PATH",
        help="write the detection-latency table to PATH",
    )
    args = parser.parse_args(argv)

    try:
        names = resolve_scenarios(args.scenarios)
    except KeyError as exc:
        parser.error(str(exc.args[0]))
    names = [name for name in names if name in EXPECTED]
    if args.seeds < 1:
        parser.error("--seeds must be at least 1")

    report = run_harness(
        names, seeds=list(range(1, args.seeds + 1)), window=args.window
    )

    if args.out:
        out = Path(args.out)
        for run in report["runs"]:
            plane = run["plane"]
            write_health_report(
                out / f"{run['scenario']}-seed{run['seed']}", plane
            )
    for run in report["runs"]:
        run.pop("plane")
    if args.out:
        (out / "detection.json").write_text(
            json.dumps(report, indent=2, sort_keys=True) + "\n"
        )

    table = render_table(report)
    print(table)
    if args.results:
        Path(args.results).write_text(table + "\n")
        print(f"results written to {args.results}")

    summary = report["summary"]
    return 0 if not summary["missed"] and not summary["false_positives"] else 1


if __name__ == "__main__":
    sys.exit(main())
