"""Legacy clients: no BFT library, no voting, one connection.

This is what Troxy buys: the client below is exactly what would talk to
an unreplicated TLS service — one secure channel to one server, one
request, one reply, reconnect-on-timeout. It never learns how many
replicas exist, never verifies votes, and spends no extra CPU or
bandwidth on replication.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..apps.base import Operation, Payload
from ..crypto.keys import KeyRing
from ..crypto.tls import (
    HANDSHAKE_BYTES,
    HANDSHAKE_CPU,
    HANDSHAKE_FLIGHTS,
    TlsError,
    establish_session,
)
from ..hybster.client import ClientMachine, InvokeResult
from ..hybster.messages import Reply, Request
from ..hybster.secure import SecureEnvelope, open_body, seal_body


@dataclass
class LegacyClientStats:
    invocations: int = 0
    timeouts: int = 0
    failovers: int = 0
    invalid_replies: int = 0


class LegacyClient:
    """An unmodified client: speaks TLS + the app protocol to one server."""

    def __init__(
        self,
        machine: ClientMachine,
        client_id: str,
        keyring: KeyRing,
        hosts,
        contact_index: int = 0,
        request_timeout: float = 2.0,
    ):
        self.machine = machine
        self.env = machine.env
        self.net = machine.net
        self.node = machine.node
        self.client_id = client_id
        self.keyring = keyring
        self.hosts = list(hosts)
        self.contact_index = contact_index % len(self.hosts)
        self.request_timeout = request_timeout
        self.stats = LegacyClientStats()
        self._request_id = 0
        self._endpoint = None
        self._inbox = machine.register(client_id)

    @property
    def contact(self):
        return self.hosts[self.contact_index]

    # -- connection management (what a browser/location service would do) ------

    def connect(self):
        """Process generator: TLS handshake with the current contact.

        Costs the handshake round-trips on the wire plus the asymmetric
        crypto on the client's CPU; the session key lands inside the
        contact's Troxy enclave.
        """
        host = self.contact
        session = establish_session(
            self.keyring.tls_master(f"troxy-{host.replica_id}"),
            self.client_id,
            host.replica_id,
        )
        flight = HANDSHAKE_BYTES // HANDSHAKE_FLIGHTS
        for _ in range(HANDSHAKE_FLIGHTS // 2):
            # one round trip: client flight out, server flight back
            self.net.send(self.node.name, host.node.name, f"hs:{self.client_id}", size=flight)
            yield self.env.timeout(0)  # let the send get scheduled
        yield from self.node.compute(HANDSHAKE_CPU)
        yield from host.install_client_session(self.client_id, session.server)
        self._endpoint = session.client

    def connect_instant(self) -> None:
        """Test/benchmark setup helper: establish the session with no
        simulated handshake traffic (pre-warmed connections)."""
        host = self.contact
        session = establish_session(
            self.keyring.tls_master(f"troxy-{host.replica_id}"),
            self.client_id,
            host.replica_id,
        )
        install = host.install_client_session(self.client_id, session.server)
        # Drive the (cost-charging) generator inline at setup time.
        for _ in install:
            pass
        self._endpoint = session.client

    def failover(self):
        """Reconnect to the next server, as any legacy client would after
        a connection timeout (Section III-D)."""
        self.stats.failovers += 1
        self.contact_index = (self.contact_index + 1) % len(self.hosts)
        yield from self.connect()

    # -- invocation -----------------------------------------------------------------

    def invoke(self, op: Operation):
        """Process generator: one request, one (trusted) reply."""
        if self._endpoint is None:
            raise RuntimeError("connect() first")
        start = self.env.now
        self.stats.invocations += 1
        self._request_id += 1
        request_id = self._request_id
        retries = 0
        while True:
            request = Request(
                client_id=self.client_id,
                request_id=request_id,
                op=op,
                origin=self.node.name,
            )
            yield from self.node.compute(self.machine.profile.aead_cost(request.wire_size))
            envelope = seal_body(self._endpoint, request)
            self.net.send(
                self.node.name, self.contact.node.name, envelope, stream=self.client_id
            )
            reply = yield from self._await_reply(request_id, self.request_timeout)
            if reply is not None:
                return InvokeResult(reply.result, self.env.now - start, retries=retries)
            retries += 1
            self.stats.timeouts += 1
            yield from self.failover()

    def _await_reply(self, request_id: int, timeout: float) -> Optional[Reply]:
        deadline = self.env.now + timeout
        while True:
            remaining = deadline - self.env.now
            if remaining <= 0:
                return None
            get_event = self._inbox.get()
            yield self.env.any_of([get_event, self.env.timeout(remaining)])
            if not get_event.triggered:
                self._inbox.cancel(get_event)
                return None
            envelope = get_event.value
            if not isinstance(envelope, SecureEnvelope):
                continue
            yield from self.node.compute(self.machine.profile.aead_cost(envelope.wire_size))
            try:
                reply = open_body(self._endpoint, envelope)
            except TlsError:
                # Corrupted channel (e.g. the untrusted replica part sent
                # bytes not sealed by the Troxy): the legacy reaction is a
                # reconnect, which the timeout path performs.
                self.stats.invalid_replies += 1
                continue
            if not isinstance(reply, Reply) or reply.request_id != request_id:
                continue
            return reply
