"""Load generation: closed-loop and paced clients.

The paper's microbenchmark "creates a configured number of clients to
constantly issue asynchronous requests and measures the average
throughput and latency" — a closed loop per client. The HTTP experiment
instead paces 100 clients to a 500 req/s aggregate so the replicas are
never saturated; :class:`PacedLoop` reproduces that.

Drivers work with anything exposing ``invoke(op) -> InvokeResult``
(process generator): the baseline :class:`BftClient`, the legacy client
against Troxy/Prophecy/standalone — same harness for every system.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from ..analysis.metrics import Collector
from ..apps.base import Operation
from ..sim.engine import Environment


@dataclass
class LoadStats:
    started: int = 0
    completed: int = 0
    errors: int = 0


class ClosedLoop:
    """Each client issues its next request as soon as the previous
    completes (optionally after a think time)."""

    def __init__(
        self,
        env: Environment,
        clients,
        op_source: Callable[[int, int], Operation],
        collector: Collector,
        think_time: float = 0.0,
    ):
        self.env = env
        self.clients = list(clients)
        self.op_source = op_source
        self.collector = collector
        self.think_time = think_time
        self.stats = LoadStats()

    def start(self) -> None:
        for index, client in enumerate(self.clients):
            self.env.process(self._loop(index, client), name=f"load:{index}")

    def _loop(self, index: int, client):
        sequence = 0
        while True:
            op = self.op_source(index, sequence)
            sequence += 1
            self.stats.started += 1
            outcome = yield from client.invoke(op)
            self.stats.completed += 1
            self.collector.record(
                completed_at=self.env.now,
                latency=outcome.latency,
                ordered=getattr(outcome, "ordered", True),
                read=op.is_read,
                conflict=getattr(outcome, "read_conflict", False),
                retries=outcome.retries,
            )
            if self.think_time > 0:
                yield self.env.timeout(self.think_time)


class PacedLoop:
    """Each client issues requests on a fixed schedule (rate per client),
    skipping a beat if the previous request is still outstanding — the
    JMeter-style non-saturating configuration."""

    def __init__(
        self,
        env: Environment,
        clients,
        op_source: Callable[[int, int], Operation],
        collector: Collector,
        rate_per_client: float,
        rng=None,
    ):
        if rate_per_client <= 0:
            raise ValueError(f"rate must be positive: {rate_per_client}")
        self.env = env
        self.clients = list(clients)
        self.op_source = op_source
        self.collector = collector
        self.interval = 1.0 / rate_per_client
        self.rng = rng
        self.stats = LoadStats()

    def start(self) -> None:
        for index, client in enumerate(self.clients):
            self.env.process(self._loop(index, client), name=f"paced:{index}")

    def _loop(self, index: int, client):
        # Stagger client start offsets to avoid a synchronized burst.
        offset = (index / max(1, len(self.clients))) * self.interval
        if self.rng is not None:
            offset = self.rng.uniform(0, self.interval)
        yield self.env.timeout(offset)
        sequence = 0
        next_slot = self.env.now
        while True:
            op = self.op_source(index, sequence)
            sequence += 1
            self.stats.started += 1
            outcome = yield from client.invoke(op)
            self.stats.completed += 1
            self.collector.record(
                completed_at=self.env.now,
                latency=outcome.latency,
                ordered=getattr(outcome, "ordered", True),
                read=op.is_read,
                conflict=getattr(outcome, "read_conflict", False),
                retries=outcome.retries,
            )
            next_slot += self.interval
            if next_slot > self.env.now:
                yield self.env.timeout(next_slot - self.env.now)
            else:
                next_slot = self.env.now


def measure(
    env: Environment,
    loadgen,
    warmup: float,
    duration: float,
    collector: Optional[Collector] = None,
):
    """Run the generator, discard the warm-up, summarize the window."""
    collector = collector or loadgen.collector
    loadgen.start()
    start = env.now
    env.run(until=start + warmup + duration)
    return collector.summarize(start + warmup, start + warmup + duration)
