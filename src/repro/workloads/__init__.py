"""Workload side: legacy clients and load generators."""

from .distributions import (
    HotspotKeys,
    KeyDistribution,
    ShardedKeys,
    UniformKeys,
    ZipfKeys,
)
from .legacy import LegacyClient, LegacyClientStats
from .loadgen import ClosedLoop, LoadStats, PacedLoop, measure

__all__ = [
    "ClosedLoop",
    "HotspotKeys",
    "KeyDistribution",
    "LegacyClient",
    "LegacyClientStats",
    "LoadStats",
    "PacedLoop",
    "ShardedKeys",
    "UniformKeys",
    "ZipfKeys",
    "measure",
]
