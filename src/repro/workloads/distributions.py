"""Key-access distributions for workload generation.

Read-heavy Internet services rarely touch keys uniformly; cache
effectiveness (Fig. 8/9) and write contention (Fig. 10) both depend on
the access skew. Three standard shapes:

* :class:`UniformKeys` — every key equally likely.
* :class:`ZipfKeys` — classic power-law skew (precomputed CDF, O(log n)
  sampling; exponent ~0.99 matches common web traces).
* :class:`HotspotKeys` — a fraction of traffic pinned to a small hot set.
"""

from __future__ import annotations

import bisect


class KeyDistribution:
    """Maps random draws to key names."""

    def sample(self, rng) -> str:
        raise NotImplementedError


class UniformKeys(KeyDistribution):
    """Uniform over ``key_space`` keys."""

    def __init__(self, key_space: int, prefix: str = "k"):
        if key_space < 1:
            raise ValueError(f"key_space must be positive: {key_space}")
        self.key_space = key_space
        self.prefix = prefix

    def sample(self, rng) -> str:
        return f"{self.prefix}{rng.randrange(self.key_space)}"


class ZipfKeys(KeyDistribution):
    """Zipf-distributed keys: rank r is drawn with weight 1 / r^s."""

    def __init__(self, key_space: int, exponent: float = 0.99, prefix: str = "k"):
        if key_space < 1:
            raise ValueError(f"key_space must be positive: {key_space}")
        if exponent <= 0:
            raise ValueError(f"exponent must be positive: {exponent}")
        self.key_space = key_space
        self.exponent = exponent
        self.prefix = prefix
        cumulative = []
        total = 0.0
        for rank in range(1, key_space + 1):
            total += 1.0 / rank ** exponent
            cumulative.append(total)
        self._cdf = [value / total for value in cumulative]

    def sample(self, rng) -> str:
        index = bisect.bisect_left(self._cdf, rng.random())
        return f"{self.prefix}{min(index, self.key_space - 1)}"


class HotspotKeys(KeyDistribution):
    """``hot_fraction`` of accesses hit the first ``hot_keys`` keys."""

    def __init__(
        self,
        key_space: int,
        hot_keys: int = 1,
        hot_fraction: float = 0.9,
        prefix: str = "k",
    ):
        if not 0 < hot_keys <= key_space:
            raise ValueError(f"bad hot set: {hot_keys} of {key_space}")
        if not 0.0 <= hot_fraction <= 1.0:
            raise ValueError(f"bad hot fraction: {hot_fraction}")
        self.key_space = key_space
        self.hot_keys = hot_keys
        self.hot_fraction = hot_fraction
        self.prefix = prefix

    def sample(self, rng) -> str:
        if rng.random() < self.hot_fraction:
            return f"{self.prefix}{rng.randrange(self.hot_keys)}"
        if self.hot_keys == self.key_space:
            return f"{self.prefix}{rng.randrange(self.hot_keys)}"
        return f"{self.prefix}{rng.randrange(self.hot_keys, self.key_space)}"
