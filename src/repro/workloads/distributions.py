"""Key-access distributions for workload generation.

Read-heavy Internet services rarely touch keys uniformly; cache
effectiveness (Fig. 8/9) and write contention (Fig. 10) both depend on
the access skew. Three standard shapes:

* :class:`UniformKeys` — every key equally likely.
* :class:`ZipfKeys` — classic power-law skew (precomputed CDF, O(log n)
  sampling; exponent ~0.99 matches common web traces).
* :class:`HotspotKeys` — a fraction of traffic pinned to a small hot set.
* :class:`ShardedKeys` — shard-aware composition for sharded clusters
  (docs/SHARDING.md): an inner distribution picks the *shard*, a
  per-shard key pool picks the key within it. With a Zipf inner
  distribution this produces deliberately imbalanced shard load (the
  signal the shard-imbalance detector and the rebalance scenarios need);
  with a uniform inner distribution it spreads load evenly for the
  scaling benchmarks.
"""

from __future__ import annotations

import bisect


class KeyDistribution:
    """Maps random draws to key names."""

    def sample(self, rng) -> str:
        raise NotImplementedError


class UniformKeys(KeyDistribution):
    """Uniform over ``key_space`` keys."""

    def __init__(self, key_space: int, prefix: str = "k"):
        if key_space < 1:
            raise ValueError(f"key_space must be positive: {key_space}")
        self.key_space = key_space
        self.prefix = prefix

    def sample(self, rng) -> str:
        return f"{self.prefix}{rng.randrange(self.key_space)}"


class ZipfKeys(KeyDistribution):
    """Zipf-distributed keys: rank r is drawn with weight 1 / r^s."""

    def __init__(self, key_space: int, exponent: float = 0.99, prefix: str = "k"):
        if key_space < 1:
            raise ValueError(f"key_space must be positive: {key_space}")
        if exponent <= 0:
            raise ValueError(f"exponent must be positive: {exponent}")
        self.key_space = key_space
        self.exponent = exponent
        self.prefix = prefix
        cumulative = []
        total = 0.0
        for rank in range(1, key_space + 1):
            total += 1.0 / rank ** exponent
            cumulative.append(total)
        self._cdf = [value / total for value in cumulative]

    def sample(self, rng) -> str:
        index = bisect.bisect_left(self._cdf, rng.random())
        return f"{self.prefix}{min(index, self.key_space - 1)}"


class ShardedKeys(KeyDistribution):
    """Two-level sampling for sharded deployments: shard, then key.

    ``pools`` holds one key pool per shard; a draw first picks the pool
    with Zipf weight ``1 / rank^skew`` (``skew=0`` → uniform across
    shards), then a key uniformly within it. Rank order follows pool
    order, so pool 0 is the hottest shard under skew.
    """

    def __init__(self, pools, skew: float = 0.0):
        self.pools = [tuple(pool) for pool in pools]
        if not self.pools or any(not pool for pool in self.pools):
            raise ValueError("every shard needs a non-empty key pool")
        if skew < 0:
            raise ValueError(f"skew must be >= 0: {skew}")
        self.skew = skew
        cumulative = []
        total = 0.0
        for rank in range(1, len(self.pools) + 1):
            total += 1.0 / rank ** skew
            cumulative.append(total)
        self._cdf = [value / total for value in cumulative]

    def sample(self, rng) -> str:
        index = bisect.bisect_left(self._cdf, rng.random())
        pool = self.pools[min(index, len(self.pools) - 1)]
        return pool[rng.randrange(len(pool))]

    @classmethod
    def pinned(cls, shards: int, keys_per_shard: int = 16, skew: float = 0.0,
               prefix: str = "k") -> "ShardedKeys":
        """Pools of pinned (``__g{N}/``) keys: ownership is deterministic
        and survives migrations, so per-shard load is exactly the drawn
        shard — what the scaling benchmarks need."""
        if shards < 1 or keys_per_shard < 1:
            raise ValueError("shards and keys_per_shard must be positive")
        pools = [
            tuple(f"__g{g}/{prefix}{i}" for i in range(keys_per_shard))
            for g in range(shards)
        ]
        return cls(pools, skew=skew)

    @classmethod
    def from_ring(cls, ring, key_space: int, skew: float = 0.0,
                  prefix: str = "k") -> "ShardedKeys":
        """Bucket ordinary ``k{i}`` keys by their current ring owner.

        Pools follow the ring's sorted group order; groups owning none
        of the sampled keys get no pool (small key spaces).
        """
        if key_space < 1:
            raise ValueError(f"key_space must be positive: {key_space}")
        by_group: dict = {}
        for i in range(key_space):
            key = f"{prefix}{i}"
            by_group.setdefault(ring.owner(key), []).append(key)
        pools = [by_group[group] for group in sorted(by_group)]
        return cls(pools, skew=skew)


class HotspotKeys(KeyDistribution):
    """``hot_fraction`` of accesses hit the first ``hot_keys`` keys."""

    def __init__(
        self,
        key_space: int,
        hot_keys: int = 1,
        hot_fraction: float = 0.9,
        prefix: str = "k",
    ):
        if not 0 < hot_keys <= key_space:
            raise ValueError(f"bad hot set: {hot_keys} of {key_space}")
        if not 0.0 <= hot_fraction <= 1.0:
            raise ValueError(f"bad hot fraction: {hot_fraction}")
        self.key_space = key_space
        self.hot_keys = hot_keys
        self.hot_fraction = hot_fraction
        self.prefix = prefix

    def sample(self, rng) -> str:
        if rng.random() < self.hot_fraction:
            return f"{self.prefix}{rng.randrange(self.hot_keys)}"
        if self.hot_keys == self.key_space:
            return f"{self.prefix}{rng.randrange(self.hot_keys)}"
        return f"{self.prefix}{rng.randrange(self.hot_keys, self.key_space)}"
