"""Deterministic chaos campaigns over the scenario catalogue.

``run_scenario`` builds a fresh Troxy cluster, runs the scenario's
client workload underneath its fault schedule, and evaluates the four
invariants; ``run_campaign`` sweeps scenarios × seeds and aggregates a
JSON-serialisable report. Determinism is absolute: every random choice
flows from ``RngTree(seed)`` streams and the report contains no
wall-clock data, so the same (scenario, seed) pair reproduces the same
report byte for byte.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from ..analysis.history import HistoryRecorder
from ..apps.kvstore import KvStore, get, put
from ..bench.clusters import build_troxy
from ..shard import build_sharded, resolve_shards
from ..sim.rng import RngTree
from .injector import FaultPlane
from .model import (
    Fault,
    HostTamper,
    MessageCorrupt,
    MessageLoss,
    NetworkPartition,
    ReplicaCrash,
    WriteContentionAttack,
)
from .invariants import (
    check_cache_freshness,
    check_counter_monotonicity,
    check_linearizability,
    check_liveness,
)
from .schedule import Scenario, WorkloadSpec, get_scenario, scenario_names


@dataclass
class DriverState:
    """Progress of one workload client."""

    client_id: str
    ops: int = 0
    retries: int = 0
    done: bool = False


def _workload_driver(env, client, spec: WorkloadSpec, rng, state: DriverState):
    for n in range(spec.ops_per_client):
        key = rng.choice(spec.keys)
        if rng.random() < spec.write_ratio:
            # Unique written values make the staleness check sound.
            outcome = yield from client.invoke(
                put(key, f"{state.client_id}/{n}".encode())
            )
        else:
            outcome = yield from client.invoke(get(key))
        state.ops += 1
        state.retries += outcome.retries
        if spec.think_time:
            yield env.timeout(spec.think_time)
    state.done = True


def fault_ground_truth(fault: Fault, plane: FaultPlane) -> dict | None:
    """Structured blame target of one injected fault.

    This is the audit plane's ground truth (docs/OBSERVABILITY.md,
    "Accountability & audit"): for each fault that leaves attributable
    evidence, say *who* a correct auditor must blame. ``required`` marks
    faults the auditor is expected to localize; link-level entries are
    permissive — they whitelist link suspicion without demanding it
    (omission evidence cannot distinguish a quiet link from a lossy
    one). Faults whose wire rules never fired, and benign faults
    (delay, reboot, restart, migration), have no ground truth.
    """
    if isinstance(fault, ReplicaCrash):
        return {"blame": "node", "targets": [fault.replica], "required": True}
    if isinstance(fault, HostTamper):
        if plane.rule_hits(fault) == 0:
            return None
        return {"blame": "tamper", "targets": [fault.replica], "required": True}
    if isinstance(fault, MessageCorrupt):
        if plane.rule_hits(fault) == 0:
            return None
        return {"blame": "tamper", "src": fault.src, "required": True}
    if isinstance(fault, MessageLoss):
        if plane.rule_hits(fault) == 0:
            return None
        return {
            "blame": "link", "src": fault.src, "dst": fault.dst,
            "required": False,
        }
    if isinstance(fault, NetworkPartition):
        pairs = sorted(
            sorted((a, b)) for a, b in plane._cross_group_pairs(fault.groups)
        )
        return {"blame": "link", "pairs": pairs, "required": False}
    if isinstance(fault, WriteContentionAttack):
        clients = sorted(s.client_id for s in plane.attacks.get(fault, ()))
        if not clients:
            return None
        return {"blame": "client", "targets": clients, "required": True}
    return None


def run_scenario(
    scenario: Scenario, seed: int, registry=None, obs=None, batching=None,
    shards=None,
) -> dict:
    """Run one scenario at one seed; returns a JSON-serialisable result.

    ``batching`` optionally forces an agreement-batching setting on the
    cluster (anything :func:`repro.bench.clusters.resolve_batching`
    accepts, e.g. ``"4"`` or ``"adaptive"``); the invariants are
    batching-agnostic, so the same catalogue re-runs at any batch size
    (docs/BATCHING.md).

    ``shards`` optionally forces a group count; the cluster gets
    ``max(scenario.shards, shards)`` agreement groups so migration
    scenarios always have their two groups, and at the effective count
    of 1 the historical single-group builder is used unchanged. The
    invariants are shard-agnostic — linearizability is checked over the
    whole keyspace, counters per replica across all groups
    (docs/SHARDING.md).

    ``registry`` optionally accepts a :class:`repro.obs.Registry`
    (duck-typed — no obs import here): campaign outcomes are emitted as
    ``chaos_*`` counters so chaos results land in the same exports as
    the performance metrics.

    ``obs`` optionally accepts a :class:`repro.obs.ObsPlane` (again
    duck-typed): it is attached to the freshly built cluster and each
    workload client is wrapped so invocations open root spans. The
    caller keeps ownership — call ``obs.finalize()`` after this returns
    to close spans and snapshot stats.
    """
    rng_tree = RngTree(seed)
    effective_shards = max(scenario.shards, resolve_shards(shards))
    if effective_shards > 1:
        cluster = build_sharded(
            seed=seed, shards=effective_shards, app_factory=KvStore,
            batching=batching, **scenario.build_kwargs(),
        )
    else:
        cluster = build_troxy(
            seed=seed, app_factory=KvStore, batching=batching,
            **scenario.build_kwargs(),
        )
    recorder = HistoryRecorder(cluster.env)
    plane = FaultPlane(
        cluster,
        rng=rng_tree.derive("faults", scenario.name),
        recorder=recorder,
    )
    if obs is not None:
        obs.attach(cluster)

    spec = scenario.workload
    drivers: list[DriverState] = []
    for i in range(spec.clients):
        client = recorder.wrap(
            cluster.new_client(request_timeout=spec.request_timeout)
        )
        if obs is not None:
            client = obs.wrap_clients([client])[0]
        state = DriverState(client_id=client.client_id)
        drivers.append(state)
        cluster.env.process(
            _workload_driver(
                cluster.env,
                client,
                spec,
                rng_tree.derive("workload", scenario.name, str(i)),
                state,
            ),
            name=f"chaos:driver-{state.client_id}",
        )

    plane.drive(scenario.schedule)
    cluster.env.run(until=scenario.horizon)

    unfinished = [d.client_id for d in drivers if not d.done]
    unfinished += [s.client_id for s in plane.attack_states if not s.done]
    # A scheduled shard handoff that has not cut over by the horizon is
    # a stalled migration — a liveness failure like an unfinished client.
    migration_reports = [
        r for r in getattr(getattr(cluster, "migrator", None), "reports", [])
    ]
    unfinished += [
        f"migration-{r.migration_id}" for r in migration_reports if not r.completed
    ]

    counter_chains = {
        replica.replica_id: plane.counter_baselines.get(replica.replica_id, [])
        + [replica.counters.snapshot()]
        for replica in cluster.replicas
    }

    invariants = [
        check_linearizability(recorder.records),
        check_liveness(unfinished),
        check_cache_freshness(recorder.records),
        check_counter_monotonicity(counter_chains),
    ]

    stats = {
        "ops_completed": sum(d.ops for d in drivers),
        "client_retries": sum(d.retries for d in drivers),
        "attack_ops": sum(s.completed for s in plane.attack_states),
        "history_length": len(recorder.records),
        "fast_read_hits": sum(c.stats.fast_read_hits for c in cluster.cores),
        "fast_read_conflicts": sum(
            c.stats.fast_read_conflicts for c in cluster.cores
        ),
        "fast_read_timeouts": sum(
            c.stats.fast_read_timeouts for c in cluster.cores
        ),
        "ordered_requests": sum(c.stats.ordered_requests for c in cluster.cores),
        "invalid_messages": sum(c.stats.invalid_messages for c in cluster.cores),
        "switches_to_total_order": sum(
            c.monitor.stats.switches_to_total_order for c in cluster.cores
        ),
        "enclave_reboots": sum(h.enclave.stats.reboots for h in cluster.hosts),
        "lease_read_hits": sum(c.stats.lease_read_hits for c in cluster.cores),
        "lease_grants_installed": sum(
            c.stats.lease_grants_installed for c in cluster.cores
        ),
        "lease_grants_fenced": sum(
            c.stats.lease_grants_fenced for c in cluster.cores
        ),
        "lease_revocations": sum(
            c.stats.lease_revocations for c in cluster.cores
        ),
        "lease_writes_parked": sum(
            r.stats.lease_writes_parked for r in cluster.replicas
        ),
    }
    # Per-kind wire-rule hits: delayed messages arrive late and tapped
    # ones are merely observed, so only tamper/loss/corrupt hits count
    # as actually harmed traffic.
    wire_hits = plane.wire_hit_counts()
    stats["wire_hits"] = wire_hits
    stats["tampered_or_dropped"] = (
        wire_hits["tampered"] + wire_hits["dropped"] + wire_hits["corrupted"]
    )
    router = getattr(cluster, "router", None)
    if router is not None:
        stats["shard_forwards"] = router.stats.forwards
        stats["shard_frozen_rejects"] = router.stats.frozen_rejects
        stats["migrations_completed"] = sum(
            1 for r in migration_reports if r.completed
        )
        stats["migrated_keys"] = sum(r.moved_keys for r in migration_reports)

    # First-class injection timeline: one record per injected fault with
    # its sim-time activation (and, when healed, deactivation) timestamp
    # plus the audit ground truth derived from the fault object.
    injections: list[dict] = []
    pending: dict[str, list[dict]] = {}
    for event, t, fault in plane.fault_timeline:
        if event == "inject":
            record = {
                "fault": fault.describe(), "t": t, "healed_t": None,
                "ground_truth": fault_ground_truth(fault, plane),
            }
            injections.append(record)
            pending.setdefault(record["fault"], []).append(record)
        elif event == "heal":
            live = pending.get(fault.describe())
            if live:
                live.pop(0)["healed_t"] = t

    ok = all(r.ok for r in invariants)
    if registry is not None:
        registry.counter(
            "chaos_runs_total", "Chaos scenario executions",
            scenario=scenario.name,
        ).inc()
        if not ok:
            registry.counter(
                "chaos_failed_runs_total", "Chaos runs with a violated invariant",
                scenario=scenario.name,
            ).inc()
        for result in invariants:
            if not result.ok:
                registry.counter(
                    "chaos_invariant_violations_total", "Invariant violations",
                    scenario=scenario.name,
                    invariant=result.as_dict()["name"],
                ).inc()
        registry.counter(
            "chaos_ops_total", "Workload operations completed under chaos",
            scenario=scenario.name,
        ).inc(stats["ops_completed"])

    return {
        "scenario": scenario.name,
        "seed": seed,
        "batching": "off" if batching is None else str(batching),
        "shards": effective_shards,
        "paper_ref": scenario.paper_ref,
        "horizon": scenario.horizon,
        "ok": ok,
        "invariants": [r.as_dict() for r in invariants],
        "stats": stats,
        "fault_log": plane.log,
        "injections": injections,
    }


def resolve_scenarios(spec: str) -> list[str]:
    """Expand a ``--scenarios`` argument into catalogue names."""
    if spec.strip() == "all":
        return list(scenario_names())
    names = [name.strip() for name in spec.split(",") if name.strip()]
    for name in names:
        get_scenario(name)  # raises KeyError with the known list
    return names


def run_campaign(
    names: list[str], seeds: list[int], registry=None, batching=None, shards=None
) -> dict:
    """Run every (scenario, seed) pair and aggregate a report."""
    results = []
    for name in names:
        scenario = get_scenario(name)
        for seed in seeds:
            results.append(
                run_scenario(
                    scenario, seed, registry=registry, batching=batching,
                    shards=shards,
                )
            )
    failed = [
        {"scenario": r["scenario"], "seed": r["seed"]}
        for r in results
        if not r["ok"]
    ]
    return {
        "tool": "repro.faults",
        "scenarios": names,
        "seeds": seeds,
        "batching": "off" if batching is None else str(batching),
        "shards": resolve_shards(shards),
        "runs": results,
        "summary": {
            "total": len(results),
            "passed": len(results) - len(failed),
            "failed": failed,
        },
    }


def report_to_json(report: dict) -> str:
    """Canonical byte-stable encoding of a campaign report."""
    return json.dumps(report, indent=2, sort_keys=True) + "\n"


def render_text(report: dict) -> str:
    """Terminal summary of a campaign report."""
    lines = []
    for run in report["runs"]:
        verdict = "PASS" if run["ok"] else "FAIL"
        stats = run["stats"]
        lines.append(
            f"{verdict}  {run['scenario']:<28} seed={run['seed']:<3} "
            f"ops={stats['ops_completed']:<4} retries={stats['client_retries']:<3} "
            f"ordered={stats['ordered_requests']:<4} "
            f"to-switches={stats['switches_to_total_order']}"
        )
        if not run["ok"]:
            for inv in run["invariants"]:
                if not inv["ok"]:
                    lines.append(f"      {inv['name']}: {inv['detail']}")
    summary = report["summary"]
    lines.append(
        f"{summary['passed']}/{summary['total']} runs passed"
        + ("" if not summary["failed"] else f", failed: {summary['failed']}")
    )
    return "\n".join(lines)
