"""CLI for deterministic chaos campaigns.

Usage::

    python -m repro.faults --scenarios all --seeds 20 --report out.json
    python -m repro.faults --scenarios troxy_crash_failover,host_tamper_replies
    python -m repro.faults --scenarios all --batch 4   # batched agreement
    python -m repro.faults --scenarios all --shards 2  # sharded deployment
    python -m repro.faults --list

Exit status is non-zero when any (scenario, seed) run violates an
invariant, so the command slots straight into CI.
"""

from __future__ import annotations

import argparse
import sys

from .campaign import render_text, report_to_json, resolve_scenarios, run_campaign
from .schedule import SCENARIOS


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.faults",
        description="Run fault-injection scenarios against a simulated "
        "Troxy cluster and check linearizability, liveness, cache "
        "freshness and counter monotonicity.",
    )
    parser.add_argument(
        "--scenarios",
        default="all",
        help="comma-separated scenario names, or 'all' (default)",
    )
    parser.add_argument(
        "--seeds",
        type=int,
        default=5,
        metavar="N",
        help="run each scenario at seeds 0..N-1 (default: 5)",
    )
    parser.add_argument(
        "--batch",
        default=None,
        metavar="SETTING",
        help="agreement-batching setting for every run: 'off', a batch "
        "size (1/4/16 route through the batch loop), or 'adaptive' "
        "(default: off)",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=1,
        metavar="N",
        help="agreement-group count for every run (default: 1, the "
        "historical single-group deployment); migration scenarios "
        "always get at least their declared minimum",
    )
    parser.add_argument(
        "--report",
        metavar="PATH",
        help="write the full JSON report to PATH ('-' for stdout)",
    )
    parser.add_argument(
        "--list", action="store_true", help="list scenarios and exit"
    )
    args = parser.parse_args(argv)

    if args.list:
        for scenario in SCENARIOS.values():
            print(f"{scenario.name:<28} [{scenario.paper_ref}]")
            print(f"    {scenario.description}")
        return 0

    try:
        names = resolve_scenarios(args.scenarios)
    except KeyError as exc:
        parser.error(str(exc.args[0]))
    if args.seeds < 1:
        parser.error("--seeds must be at least 1")

    if args.shards < 1:
        parser.error("--shards must be at least 1")

    report = run_campaign(
        names, list(range(args.seeds)), batching=args.batch, shards=args.shards
    )

    if args.report == "-":
        print(report_to_json(report), end="")
    else:
        print(render_text(report))
        if args.report:
            with open(args.report, "w", encoding="utf-8") as fh:
                fh.write(report_to_json(report))
            print(f"report written to {args.report}")

    return 0 if not report["summary"]["failed"] else 1


if __name__ == "__main__":
    sys.exit(main())
