"""Declarative fault types (the vocabulary of the chaos campaigns).

Each fault is a frozen dataclass naming *what* goes wrong; the fault
plane (:mod:`repro.faults.injector`) knows *how* to stage it against a
running cluster. Faults that describe a condition rather than an event
(partitions, wire rules, attack traffic) are revertible: the schedule
injects them for a window and heals them afterwards.

The catalogue mirrors the paper's threat model:

* :class:`ReplicaCrash` / :class:`ReplicaRestart` — crash faults of
  whole servers (replica + Troxy), Section III-D.
* :class:`EnclaveReboot` — the rollback attack of Section IV-B: volatile
  enclave state (fast-read cache, TLS sessions) is lost, sealed trusted
  counters must survive.
* :class:`NetworkPartition` — link-level isolation of replica groups.
* :class:`MessageDelay` / :class:`MessageLoss` / :class:`MessageCorrupt`
  — bursts of degraded links (performance attacks, Section VI-C3).
* :class:`HostTamper` — the untrusted replica part mangling sealed
  replies (the "bypassing the Troxy" attack, Section VI-B).
* :class:`WriteContentionAttack` — adversarial write traffic against hot
  keys, driving fast-read conflicts until the conflict monitor falls
  back to total order (Section VI-C3).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class Fault:
    """Base class: a declarative description of one fault."""

    def inject(self, plane) -> None:
        raise NotImplementedError

    def heal(self, plane) -> None:
        """Revert the fault; no-op for instantaneous faults."""

    @property
    def revertible(self) -> bool:
        return type(self).heal is not Fault.heal

    def describe(self) -> str:
        params = ", ".join(
            f"{name}={getattr(self, name)!r}"
            for name in getattr(self, "__dataclass_fields__", {})
        )
        return f"{type(self).__name__}({params})"


@dataclass(frozen=True)
class ReplicaCrash(Fault):
    """Crash one server (replica plus co-located Troxy), Section III-D.

    Scheduled with a duration, the crash heals into a restart (the
    server rejoins via state transfer).
    """

    replica: str

    def inject(self, plane) -> None:
        plane.crash(self.replica)

    def heal(self, plane) -> None:
        plane.restart(self.replica)


@dataclass(frozen=True)
class ReplicaRestart(Fault):
    """Recover a previously crashed server (explicit restart event)."""

    replica: str

    def inject(self, plane) -> None:
        plane.restart(self.replica)


@dataclass(frozen=True)
class EnclaveReboot(Fault):
    """Power-cycle/rollback attack on one Troxy enclave (Section IV-B).

    Volatile state — the fast-read cache and installed client sessions —
    is wiped; the plane snapshots the replica's sealed counters before
    the reboot so the counter-monotonicity invariant can later prove no
    rollback happened.
    """

    replica: str

    def inject(self, plane) -> None:
        plane.reboot_enclave(self.replica)


@dataclass(frozen=True)
class NetworkPartition(Fault):
    """Cut every link between the listed node groups (bidirectional).

    Nodes not named in any group are unaffected. Healing restores all
    cut links.
    """

    groups: tuple[tuple[str, ...], ...]

    def inject(self, plane) -> None:
        plane.partition(self.groups)

    def heal(self, plane) -> None:
        plane.heal_partition(self.groups)


@dataclass(frozen=True)
class _WireFault(Fault):
    """Shared shape of the wire-rule faults: a (src, dst, payload) match.

    ``src``/``dst`` are glob patterns over node names; ``payload_types``
    restricts the rule to payload class names (empty = any payload).
    """

    src: str = "*"
    dst: str = "*"
    payload_types: tuple[str, ...] = ()

    def heal(self, plane) -> None:
        plane.remove_wire_rules(self)


@dataclass(frozen=True)
class MessageDelay(_WireFault):
    """Add ``delay`` (plus uniform ``jitter``) seconds to matching sends."""

    delay: float = 0.05
    jitter: float = 0.0

    def inject(self, plane) -> None:
        plane.add_delay_rule(self)


@dataclass(frozen=True)
class MessageLoss(_WireFault):
    """Drop matching sends with ``probability`` (1.0 = black-hole)."""

    probability: float = 0.2

    def inject(self, plane) -> None:
        plane.add_loss_rule(self)


@dataclass(frozen=True)
class MessageCorrupt(_WireFault):
    """Corrupt matching payloads in flight with ``probability``.

    Sealed envelopes get a flipped body (authentication fails at the
    receiver); bare protocol messages are replaced by unparseable
    garbage of the same wire size.
    """

    probability: float = 1.0

    def inject(self, plane) -> None:
        plane.add_corrupt_rule(self)


@dataclass(frozen=True)
class HostTamper(Fault):
    """The untrusted host of ``replica`` forges results inside sealed
    replies to clients (Section VI-B). The Troxy's seal makes the
    tampering detectable; legacy clients see a corrupted channel and
    fail over. ``count`` limits how many replies are mangled (0 = every
    reply while the fault is active).
    """

    replica: str
    forged_result: bytes = b"\xffforged"
    count: int = 1

    def inject(self, plane) -> None:
        plane.add_tamper_rule(self)

    def heal(self, plane) -> None:
        plane.remove_wire_rules(self)


@dataclass(frozen=True)
class WriteContentionAttack(Fault):
    """Adversarial clients hammering writes at hot keys (Section VI-C3).

    Drives fast-read conflicts until the conflict monitor switches the
    Troxy to total-order mode; healing stops the attack traffic so the
    monitor's probing can switch back.
    """

    keys: tuple[str, ...]
    interval: float = 0.005  # seconds between attack writes (per client)
    clients: int = 1

    def inject(self, plane) -> None:
        plane.start_write_attack(self)

    def heal(self, plane) -> None:
        plane.stop_write_attack(self)


@dataclass(frozen=True)
class ShardMigration(Fault):
    """Start a live shard handoff (docs/SHARDING.md) mid-campaign.

    Moves ``fraction`` of the source group's ring tokens to the
    destination group while the workload keeps running — the migration
    itself is the fault surface: its freeze window, fenced state
    transfer, and ring cut-over run concurrently with whatever other
    faults the schedule stages (partitions, leader crashes, write
    contention). Only meaningful on sharded clusters; injection fails
    on a single-group deployment.
    """

    src: str = "g0"
    dst: str = "g1"
    fraction: float = 0.5

    def inject(self, plane) -> None:
        plane.start_migration(self)


ALL_FAULT_TYPES = (
    ReplicaCrash,
    ReplicaRestart,
    EnclaveReboot,
    NetworkPartition,
    MessageDelay,
    MessageLoss,
    MessageCorrupt,
    HostTamper,
    WriteContentionAttack,
    ShardMigration,
)
