"""Timed fault schedules and the named scenario catalogue.

A :class:`Schedule` is a list of :class:`FaultEvent`\\ s — *inject fault
F at time T, heal it D seconds later* — that the fault plane replays
against a running cluster. Schedules compose with ``+`` so complex
scenarios are built from reusable pieces.

A :class:`Scenario` bundles a schedule with the client workload that
runs underneath it and the simulated horizon by which everything must
have completed (the liveness invariant). The built-in catalogue in
:data:`SCENARIOS` covers the paper's fault-handling claims one by one;
``python -m repro.faults --list`` prints it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..troxy.monitor import ConflictMonitor
from .model import (
    EnclaveReboot,
    Fault,
    HostTamper,
    MessageCorrupt,
    MessageDelay,
    MessageLoss,
    NetworkPartition,
    ReplicaCrash,
    ShardMigration,
    WriteContentionAttack,
)


@dataclass(frozen=True)
class FaultEvent:
    """Inject ``fault`` at ``at`` seconds; heal after ``duration`` if set."""

    at: float
    fault: Fault
    duration: Optional[float] = None

    def __post_init__(self):
        if self.at < 0:
            raise ValueError(f"negative injection time: {self.at}")
        if self.duration is not None:
            if self.duration <= 0:
                raise ValueError(f"non-positive duration: {self.duration}")
            if not self.fault.revertible:
                raise ValueError(
                    f"{type(self.fault).__name__} is instantaneous; "
                    "scheduling it with a duration is meaningless"
                )
        if isinstance(self.fault, WriteContentionAttack) and self.duration is None:
            raise ValueError("WriteContentionAttack must be scheduled with a duration")


@dataclass(frozen=True)
class Schedule:
    """An ordered collection of fault events."""

    events: tuple[FaultEvent, ...] = ()

    def __add__(self, other: "Schedule") -> "Schedule":
        return Schedule(self.events + other.events)

    @staticmethod
    def at(at: float, fault: Fault, duration: Optional[float] = None) -> "Schedule":
        return Schedule((FaultEvent(at, fault, duration),))

    @staticmethod
    def of(*events: FaultEvent) -> "Schedule":
        return Schedule(tuple(events))


@dataclass(frozen=True)
class WorkloadSpec:
    """The client workload running underneath a fault schedule."""

    clients: int = 3
    ops_per_client: int = 14
    keys: tuple[str, ...] = ("k0", "k1", "k2", "k3")
    write_ratio: float = 0.35
    think_time: float = 0.05  # pacing gap between one client's ops
    request_timeout: float = 1.0  # legacy-client retransmission timeout


@dataclass(frozen=True)
class Scenario:
    """One named chaos scenario: schedule + workload + horizon."""

    name: str
    description: str
    paper_ref: str
    schedule: Schedule
    workload: WorkloadSpec = WorkloadSpec()
    horizon: float = 45.0  # sim-seconds before invariants are evaluated
    cluster_kwargs: tuple[tuple[str, object], ...] = ()
    #: minimum agreement-group count this scenario needs (docs/SHARDING.md);
    #: the campaign runner builds max(scenario.shards, CLI --shards) groups.
    shards: int = 1

    def build_kwargs(self) -> dict:
        return dict(self.cluster_kwargs)


def _contention_monitor() -> ConflictMonitor:
    """Monitor variant that samples misses too: under sustained write
    contention every read misses on a freshly invalidated entry, which is
    the signal the paper's adaptive switch reacts to (Section VI-C3)."""
    return ConflictMonitor(count_misses=True)


def _catalogue() -> dict[str, Scenario]:
    replica_links = {"src": "replica-*", "dst": "replica-*"}
    scenarios = [
        Scenario(
            name="healthy_control",
            description="No faults; establishes the invariant baseline.",
            paper_ref="VI-C1 (normal operation)",
            schedule=Schedule(),
            horizon=30.0,
        ),
        Scenario(
            name="troxy_crash_failover",
            description=(
                "A follower's server (replica + Troxy) crashes mid-workload "
                "and restarts later; clients fail over like against any "
                "crashed web server."
            ),
            paper_ref="III-D (fault handling)",
            schedule=Schedule.at(0.25, ReplicaCrash("replica-1"), duration=6.0),
        ),
        Scenario(
            name="leader_crash_view_change",
            description=(
                "The view-0 leader dies for good; a view change elects a new "
                "leader and service continues transparently."
            ),
            paper_ref="III-D (fault handling)",
            schedule=Schedule.at(0.25, ReplicaCrash("replica-0")),
            horizon=60.0,
        ),
        Scenario(
            name="crash_restart_recovery",
            description=(
                "A follower crashes briefly and rejoins via state transfer; "
                "its rebuilt state must stay consistent."
            ),
            paper_ref="III-D (fault handling)",
            schedule=Schedule.at(0.2, ReplicaCrash("replica-2"), duration=3.0),
        ),
        Scenario(
            name="enclave_reboot_rollback",
            description=(
                "Rollback attack: two Troxy enclaves are power-cycled. The "
                "fast-read cache starts cold, sealed counters must never "
                "regress."
            ),
            paper_ref="IV-B (cache recovery, trusted counters)",
            schedule=(
                Schedule.at(0.3, EnclaveReboot("replica-0"))
                + Schedule.at(0.8, EnclaveReboot("replica-1"))
            ),
        ),
        Scenario(
            name="partition_minority",
            description=(
                "One replica is partitioned away for a window; the remaining "
                "2f replicas keep the service live and the victim catches up "
                "after the heal."
            ),
            paper_ref="III-D (fault handling)",
            schedule=Schedule.at(
                0.25,
                NetworkPartition((("replica-2",), ("replica-0", "replica-1"))),
                duration=4.0,
            ),
        ),
        Scenario(
            name="message_delay_burst",
            description=(
                "Replica-to-replica links gain 80±40 ms for two seconds "
                "(performance attack on the ordering path)."
            ),
            paper_ref="VI-C3 (performance attacks)",
            schedule=Schedule.at(
                0.2,
                MessageDelay(delay=0.08, jitter=0.04, **replica_links),
                duration=2.0,
            ),
            horizon=60.0,
        ),
        Scenario(
            name="message_loss_burst",
            description=(
                "Replica-to-replica links drop 25% of traffic for two "
                "seconds; retransmission and refetch paths must recover."
            ),
            paper_ref="VI-C3 (performance attacks)",
            schedule=Schedule.at(
                0.2,
                MessageLoss(probability=0.25, **replica_links),
                duration=2.0,
            ),
            horizon=60.0,
        ),
        Scenario(
            name="reply_corruption",
            description=(
                "Every sealed reply leaving replica-0 for a client machine "
                "is corrupted for 1.5 s; clients must detect the broken "
                "channel and fail over."
            ),
            paper_ref="VI-B (bypassing the Troxy)",
            schedule=Schedule.at(
                0.2,
                MessageCorrupt(
                    src="replica-0",
                    dst="client-machine-*",
                    payload_types=("SecureEnvelope",),
                ),
                duration=1.5,
            ),
        ),
        Scenario(
            name="host_tamper_replies",
            description=(
                "The untrusted host of replica-0 forges the result inside "
                "two sealed replies; the Troxy seal exposes the forgery."
            ),
            paper_ref="VI-B (bypassing the Troxy)",
            schedule=Schedule.at(
                0.25,
                HostTamper("replica-0", forged_result=b"\xffforged", count=2),
                duration=5.0,
            ),
        ),
        Scenario(
            name="write_contention_attack",
            description=(
                "An adversarial client hammers writes at the hottest keys; "
                "the conflict monitor must fall back to total-order mode "
                "instead of livelocking fast reads."
            ),
            paper_ref="VI-C3 (performance attacks)",
            schedule=Schedule.at(
                0.2,
                WriteContentionAttack(keys=("k0", "k1"), interval=0.006),
                duration=1.5,
            ),
            # Read-heavy, tightly paced workload on the attacked keys so
            # each Troxy's monitor accumulates enough fast-read samples
            # to trip the total-order switch during the attack window.
            workload=WorkloadSpec(
                clients=3,
                ops_per_client=40,
                keys=("k0", "k1"),
                write_ratio=0.1,
                think_time=0.01,
            ),
            cluster_kwargs=(("monitor_factory", _contention_monitor),),
        ),
        Scenario(
            name="unresponsive_cache_peer",
            description=(
                "replica-0 never delivers its outgoing cache queries; its "
                "fast reads must time out into the ordered path instead of "
                "hanging, and the repeated timeouts must trip its monitor "
                "into total-order mode."
            ),
            paper_ref="VI-C3 (performance attacks)",
            schedule=Schedule.at(
                0.0,
                MessageLoss(
                    src="replica-0",
                    dst="replica-*",
                    payload_types=("CacheQuery",),
                    probability=1.0,
                ),
                duration=10.0,
            ),
            # Read-heavy so the client contacting replica-0 generates
            # enough timed-out fast reads to reach the switch threshold.
            workload=WorkloadSpec(
                clients=3,
                ops_per_client=30,
                keys=("k0", "k1"),
                write_ratio=0.1,
                think_time=0.01,
            ),
            cluster_kwargs=(("query_timeout", 0.2),),
        ),
        Scenario(
            name="lease_partition_expiry",
            description=(
                "A lease-holding Troxy's server is partitioned away for "
                "far longer than the lease duration: writes parked behind "
                "its leases must proceed once the leases expire on the "
                "shared clock, and the isolated holder must stop serving "
                "lease reads at the same instant — no stale read may "
                "surface after the heal."
            ),
            paper_ref="docs/READS.md (lease expiry under partition)",
            schedule=Schedule.at(
                0.3,
                NetworkPartition((("replica-2",), ("replica-0", "replica-1"))),
                duration=4.0,
            ),
            # Read-heavy so every Troxy (the victim included) holds
            # leases when the partition hits; short leases so several
            # grant/expiry cycles happen inside the isolation window.
            workload=WorkloadSpec(
                clients=3,
                ops_per_client=30,
                keys=("k0", "k1"),
                write_ratio=0.15,
                think_time=0.02,
            ),
            cluster_kwargs=(("leases", 0.3),),
            horizon=60.0,
        ),
        Scenario(
            name="lease_enclave_reboot",
            description=(
                "Two lease-holding Troxy enclaves are power-cycled mid-"
                "workload (rollback attack): the volatile lease table "
                "dies with the enclave and the sealed lease counter must "
                "fence any replayed grant — a rebooted enclave can never "
                "resurrect a lease it held before the crash."
            ),
            paper_ref="docs/READS.md (sealed-counter fencing)",
            schedule=(
                Schedule.at(0.3, EnclaveReboot("replica-0"))
                + Schedule.at(0.8, EnclaveReboot("replica-1"))
            ),
            workload=WorkloadSpec(
                clients=3,
                ops_per_client=30,
                keys=("k0", "k1"),
                write_ratio=0.15,
                think_time=0.02,
            ),
            cluster_kwargs=(("leases", 1.0),),
        ),
        Scenario(
            name="lease_migration_freeze",
            description=(
                "A live shard handoff starts while read leases cover the "
                "moving keys: the migration's quiesce step must revoke "
                "every covering lease before state collection, the write "
                "freeze must veto new grants on moving keys, and reads "
                "fall back to the voted path across the cut-over."
            ),
            paper_ref="docs/READS.md + docs/SHARDING.md (freeze vs leases)",
            schedule=Schedule.at(
                0.5, ShardMigration(src="g0", dst="g1", fraction=0.5)
            ),
            workload=WorkloadSpec(
                clients=3,
                ops_per_client=30,
                keys=("k0", "k1", "k2", "k3"),
                write_ratio=0.15,
                think_time=0.02,
            ),
            cluster_kwargs=(("leases", 0.5),),
            horizon=60.0,
            shards=2,
        ),
        Scenario(
            name="shard_migration_partition",
            description=(
                "A live shard handoff from g0 to g1 starts while a source "
                "follower is partitioned away; the fenced state transfer "
                "must still find f+1 matching snapshots and the workload "
                "must complete across the ring cut-over."
            ),
            paper_ref="docs/SHARDING.md (migration under faults)",
            schedule=(
                Schedule.at(
                    0.2,
                    NetworkPartition((("replica-2",), ("replica-0", "replica-1"))),
                    duration=3.0,
                )
                + Schedule.at(0.5, ShardMigration(src="g0", dst="g1", fraction=0.5))
            ),
            horizon=60.0,
            shards=2,
        ),
        Scenario(
            name="shard_migration_leader_crash",
            description=(
                "The destination group's leader crashes right as a handoff "
                "begins: the ordered state-install must survive the view "
                "change like any client request, and the cut-over completes "
                "against the new leader."
            ),
            paper_ref="docs/SHARDING.md (migration under faults)",
            schedule=(
                Schedule.at(0.3, ShardMigration(src="g0", dst="g1", fraction=0.5))
                + Schedule.at(0.35, ReplicaCrash("g1-replica-0"))
            ),
            horizon=75.0,
            shards=2,
        ),
        Scenario(
            name="shard_rebalance_contention",
            description=(
                "An adversarial client hammers writes at hot keys while "
                "those very keys are being rebalanced between groups: "
                "frozen-window rejects must resolve via client retry with "
                "no write lost or duplicated into the wrong group."
            ),
            paper_ref="docs/SHARDING.md (migration under faults)",
            schedule=(
                Schedule.at(
                    0.2,
                    WriteContentionAttack(keys=("k0", "k1"), interval=0.006),
                    duration=2.0,
                )
                + Schedule.at(0.6, ShardMigration(src="g0", dst="g1", fraction=0.5))
            ),
            # Same read-heavy, tightly paced shape as the plain
            # write_contention_attack scenario, so the contention signals
            # (conflicts, monitor switches) reliably appear while the
            # attacked keys are simultaneously being rebalanced.
            workload=WorkloadSpec(
                clients=3,
                ops_per_client=40,
                keys=("k0", "k1"),
                write_ratio=0.1,
                think_time=0.01,
            ),
            cluster_kwargs=(("monitor_factory", _contention_monitor),),
            horizon=60.0,
            shards=2,
        ),
    ]
    return {scenario.name: scenario for scenario in scenarios}


SCENARIOS: dict[str, Scenario] = _catalogue()


def scenario_names() -> tuple[str, ...]:
    return tuple(SCENARIOS)


def get_scenario(name: str) -> Scenario:
    try:
        return SCENARIOS[name]
    except KeyError:
        known = ", ".join(SCENARIOS)
        raise KeyError(f"unknown scenario {name!r} (known: {known})") from None
