"""The fault plane: stages declarative faults against a live cluster.

One :class:`FaultPlane` wraps a running deployment (usually a
``TroxyCluster`` from :mod:`repro.bench.clusters`) and owns every
interception point the rest of the library exposes for fault injection:

* the network's send-filter chain (:meth:`Network.add_send_filter`) for
  wire rules — loss, delay, corruption, reply tampering, and passive
  taps;
* host/replica ``stop()``/``restart()`` for crash faults;
* enclave ``reboot()`` plus counter snapshots for rollback attacks;
* link ``cut()``/``heal()`` for partitions;
* extra adversarial clients for write-contention attacks.

Everything the plane does is logged with its simulated timestamp
(:attr:`FaultPlane.log`), and all randomness flows through one injected
RNG stream, so campaigns replay byte-identically for a given seed.
"""

from __future__ import annotations

import dataclasses
import random
from collections import deque
from dataclasses import dataclass, field
from fnmatch import fnmatchcase
from typing import Optional

from ..apps.base import Payload
from ..apps.kvstore import put
from ..hybster.messages import Reply, Request
from ..hybster.secure import SecureEnvelope
from ..sim.network import SendAttempt
from .model import (
    Fault,
    HostTamper,
    MessageCorrupt,
    MessageDelay,
    MessageLoss,
    WriteContentionAttack,
)
from .schedule import Schedule


@dataclass(frozen=True)
class Garbage:
    """An unparseable blob standing in for corrupted wire bytes."""

    wire_size: int


#: Stat name each wire-rule kind reports its hits under (campaign
#: ``wire_hits``): delayed messages were delivered late, tapped ones
#: were merely observed — neither is a drop or a forgery.
WIRE_HIT_STATS = {
    "delay": "delayed",
    "loss": "dropped",
    "corrupt": "corrupted",
    "tamper": "tampered",
    "tap": "tapped",
}


@dataclass
class WireRule:
    """One active rule on the network send path."""

    kind: str  # "delay" | "loss" | "corrupt" | "tamper" | "tap"
    src: str = "*"
    dst: str = "*"
    payload_types: tuple[str, ...] = ()
    delay: float = 0.0
    jitter: float = 0.0
    probability: float = 1.0
    forged_result: bytes = b""
    remaining: Optional[int] = None  # tamper budget; None = unlimited
    origin: Optional[Fault] = None  # fault that installed the rule
    hits: int = 0
    #: Ring buffer of the last ``capture_limit`` payloads a tap saw;
    #: older captures are evicted and counted in ``capture_overflow``
    #: so long chaos runs cannot hold every message alive.
    captured: deque = field(default_factory=deque)
    capture_limit: int = 256
    capture_overflow: int = 0

    def matches(self, attempt: SendAttempt) -> bool:
        if not fnmatchcase(attempt.src, self.src):
            return False
        if not fnmatchcase(attempt.dst, self.dst):
            return False
        if self.payload_types:
            return type(attempt.payload).__name__ in self.payload_types
        return True


@dataclass
class AttackState:
    """Progress of one adversarial write client."""

    client_id: str
    issued: int = 0
    completed: int = 0
    stop: bool = False
    done: bool = False


class FaultPlane:
    """Fault-injection and observation plane for one running cluster."""

    def __init__(self, cluster, rng: Optional[random.Random] = None, recorder=None):
        self.cluster = cluster
        self.env = cluster.env
        self.net = cluster.net
        self.rng = rng or random.Random(0)
        #: optional HistoryRecorder; attack-client ops are recorded into
        #: it so consistency checks see the adversarial writes too.
        self.recorder = recorder
        self.log: list[dict] = []
        self.rules: list[WireRule] = []
        #: per-replica counter snapshots taken right before each enclave
        #: reboot (input to the counter-monotonicity invariant).
        self.counter_baselines: dict[str, list[dict[str, int]]] = {}
        #: per-replica ecall counts observed through the enclave taps.
        self.ecall_counts: dict[str, int] = {}
        self.attacks: dict[Fault, list[AttackState]] = {}
        self._retired_hits: dict[Fault, int] = {}
        self._retired_kind_hits: dict[str, int] = {}
        #: (event, t, fault) triples mirroring :attr:`log` but keeping
        #: the fault *objects* — ground-truth plumbing for the audit
        #: plane (campaign blame scoring needs more than describe()).
        self.fault_timeline: list[tuple[str, float, Fault]] = []
        self._filter_installed = False
        for host in getattr(cluster, "hosts", ()) or ():
            host.enclave.ecall_taps.append(self._ecall_tap(host.replica_id))

    # -- cluster access --------------------------------------------------------

    def _replica(self, replica_id: str):
        for replica in self.cluster.replicas:
            if replica.replica_id == replica_id:
                return replica
        raise KeyError(f"unknown replica {replica_id!r}")

    def _host(self, replica_id: str):
        for host in getattr(self.cluster, "hosts", ()) or ():
            if host.replica_id == replica_id:
                return host
        return None

    def _ecall_tap(self, replica_id: str):
        def tap(_name: str) -> None:
            self.ecall_counts[replica_id] = self.ecall_counts.get(replica_id, 0) + 1

        return tap

    # -- entry points ----------------------------------------------------------

    def inject(self, fault: Fault) -> None:
        self._note("inject", fault)
        fault.inject(self)

    def heal(self, fault: Fault) -> None:
        self._note("heal", fault)
        fault.heal(self)

    def drive(self, schedule: Schedule) -> None:
        """Replay ``schedule`` as simulation processes (non-blocking)."""
        for event in schedule.events:
            self.env.process(self._run_event(event), name="fault-plane:event")

    def _run_event(self, event):
        delay = event.at - self.env.now
        if delay > 0:
            yield self.env.timeout(delay)
        self.inject(event.fault)
        if event.duration is not None:
            yield self.env.timeout(event.duration)
            self.heal(event.fault)

    def _note(self, kind: str, fault: Fault) -> None:
        self.log.append({"t": self.env.now, "event": kind, "fault": fault.describe()})
        self.fault_timeline.append((kind, self.env.now, fault))

    # -- crash / restart -------------------------------------------------------

    def crash(self, replica_id: str) -> None:
        host = self._host(replica_id)
        if host is not None:
            host.stop()
        else:
            self._replica(replica_id).stop()

    def restart(self, replica_id: str) -> None:
        host = self._host(replica_id)
        if host is not None:
            host.restart()
        else:
            self._replica(replica_id).restart()

    # -- enclave reboot --------------------------------------------------------

    def reboot_enclave(self, replica_id: str) -> None:
        host = self._host(replica_id)
        if host is None:
            raise ValueError(f"{replica_id} has no Troxy enclave to reboot")
        baseline = self._replica(replica_id).counters.snapshot()
        self.counter_baselines.setdefault(replica_id, []).append(baseline)
        host.enclave.reboot()

    # -- partitions ------------------------------------------------------------

    def _cross_group_pairs(self, groups):
        for i, group_a in enumerate(groups):
            for group_b in groups[i + 1:]:
                for a in group_a:
                    for b in group_b:
                        yield a, b

    def partition(self, groups) -> None:
        for a, b in self._cross_group_pairs(groups):
            self.net.cut(a, b)

    def heal_partition(self, groups) -> None:
        for a, b in self._cross_group_pairs(groups):
            self.net.heal(a, b)

    # -- wire rules ------------------------------------------------------------

    def _ensure_filter(self) -> None:
        if not self._filter_installed:
            self.net.add_send_filter(self._filter)
            self._filter_installed = True

    def _add_rule(self, rule: WireRule) -> WireRule:
        self.rules.append(rule)
        self._ensure_filter()
        return rule

    def add_delay_rule(self, fault: MessageDelay) -> WireRule:
        return self._add_rule(WireRule(
            kind="delay", src=fault.src, dst=fault.dst,
            payload_types=fault.payload_types, delay=fault.delay,
            jitter=fault.jitter, origin=fault,
        ))

    def add_loss_rule(self, fault: MessageLoss) -> WireRule:
        return self._add_rule(WireRule(
            kind="loss", src=fault.src, dst=fault.dst,
            payload_types=fault.payload_types, probability=fault.probability,
            origin=fault,
        ))

    def add_corrupt_rule(self, fault: MessageCorrupt) -> WireRule:
        return self._add_rule(WireRule(
            kind="corrupt", src=fault.src, dst=fault.dst,
            payload_types=fault.payload_types, probability=fault.probability,
            origin=fault,
        ))

    def add_tamper_rule(self, fault: HostTamper) -> WireRule:
        return self._add_rule(WireRule(
            kind="tamper", src=fault.replica, dst="client-machine-*",
            payload_types=("SecureEnvelope",),
            forged_result=fault.forged_result,
            remaining=fault.count if fault.count > 0 else None,
            origin=fault,
        ))

    def tap(self, src: str = "*", dst: str = "*", payload_types=()) -> WireRule:
        """Install a passive observation rule; read ``rule.captured``."""
        return self._add_rule(WireRule(
            kind="tap", src=src, dst=dst, payload_types=tuple(payload_types),
        ))

    def remove_wire_rules(self, fault: Fault) -> None:
        for rule in self.rules:
            if rule.origin == fault:
                self._retired_hits[fault] = self._retired_hits.get(fault, 0) + rule.hits
                self._retired_kind_hits[rule.kind] = (
                    self._retired_kind_hits.get(rule.kind, 0) + rule.hits
                )
        self.rules = [rule for rule in self.rules if rule.origin != fault]

    def remove_rule(self, rule: WireRule) -> None:
        self.rules.remove(rule)

    def rule_hits(self, fault: Fault) -> int:
        """Total matches (incl. healed rules) of ``fault``'s wire rules."""
        active = sum(rule.hits for rule in self.rules if rule.origin == fault)
        return active + self._retired_hits.get(fault, 0)

    def wire_hit_counts(self) -> dict[str, int]:
        """Per-kind wire-rule hit totals, active rules plus healed ones."""
        counts = {stat: 0 for stat in WIRE_HIT_STATS.values()}
        for rule in self.rules:
            counts[WIRE_HIT_STATS[rule.kind]] += rule.hits
        for kind, hits in self._retired_kind_hits.items():
            counts[WIRE_HIT_STATS[kind]] += hits
        return counts

    def _filter(self, attempt: SendAttempt) -> None:
        for rule in self.rules:
            if attempt.drop or not rule.matches(attempt):
                continue
            if rule.kind == "tap":
                rule.hits += 1
                if len(rule.captured) >= rule.capture_limit:
                    rule.captured.popleft()
                    rule.capture_overflow += 1
                rule.captured.append(attempt.payload)
            elif rule.kind == "delay":
                rule.hits += 1
                extra = rule.delay
                if rule.jitter:
                    extra += self.rng.uniform(0.0, rule.jitter)
                attempt.extra_delay += extra
            elif rule.kind == "loss":
                if rule.probability >= 1.0 or self.rng.random() < rule.probability:
                    rule.hits += 1
                    attempt.drop = True
            elif rule.kind == "corrupt":
                if rule.probability >= 1.0 or self.rng.random() < rule.probability:
                    rule.hits += 1
                    attempt.payload = self._corrupted(attempt.payload)
            elif rule.kind == "tamper":
                if rule.remaining == 0:
                    continue
                envelope = attempt.payload
                if not isinstance(envelope, SecureEnvelope) or not isinstance(
                    envelope.body, Reply
                ):
                    continue
                rule.hits += 1
                if rule.remaining is not None:
                    rule.remaining -= 1
                forged = dataclasses.replace(
                    envelope.body, result=Payload(rule.forged_result)
                )
                attempt.payload = SecureEnvelope(envelope.record, forged)

    def _corrupted(self, payload):
        """Flip payload content the way a man-on-the-wire could."""
        if isinstance(payload, SecureEnvelope):
            body = payload.body
            if isinstance(body, Reply):
                forged = dataclasses.replace(
                    body, result=Payload(b"\xff" + body.result.content)
                )
            elif isinstance(body, Request):
                forged = dataclasses.replace(body, client_id=body.client_id + "?")
            else:
                return Garbage(payload.wire_size)
            # The TLS record still seals the original body's digest, so
            # the receiver's open_body() detects the mismatch.
            return SecureEnvelope(payload.record, forged)
        return Garbage(getattr(payload, "wire_size", 64))

    # -- shard migrations --------------------------------------------------------

    def start_migration(self, fault) -> None:
        """Spawn a live shard handoff (repro.shard) as a background process.

        The migrator records a :class:`~repro.shard.migrate.MigrationReport`
        on the cluster whether or not the handoff completes; campaign
        invariants read it from ``cluster.migrator.reports``.
        """
        migrator = getattr(self.cluster, "migrator", None)
        if migrator is None:
            raise ValueError("ShardMigration requires a sharded cluster (shards >= 2)")
        self.env.process(
            migrator.migrate(fault.src, fault.dst, fraction=fault.fraction),
            name=f"fault-plane:migrate-{fault.src}-{fault.dst}",
        )

    # -- write-contention attacks ----------------------------------------------

    def start_write_attack(self, fault: WriteContentionAttack) -> None:
        states = []
        for i in range(fault.clients):
            client = self.cluster.new_client(request_timeout=2.0)
            if self.recorder is not None:
                client = self.recorder.wrap(client)
            state = AttackState(client_id=client.client_id)
            states.append(state)
            self.env.process(
                self._attack_loop(client, fault, state),
                name=f"fault-plane:attack-{state.client_id}",
            )
        self.attacks[fault] = states

    def stop_write_attack(self, fault: WriteContentionAttack) -> None:
        for state in self.attacks.get(fault, ()):
            state.stop = True

    def _attack_loop(self, client, fault: WriteContentionAttack, state: AttackState):
        n = 0
        while not state.stop:
            key = fault.keys[n % len(fault.keys)]
            value = f"{state.client_id}/attack-{n}".encode()
            state.issued += 1
            yield from client.invoke(put(key, value))
            state.completed += 1
            n += 1
            if state.stop:
                break
            yield self.env.timeout(fault.interval)
        state.done = True

    @property
    def attack_states(self) -> list[AttackState]:
        return [state for states in self.attacks.values() for state in states]
