"""Declarative fault injection and chaos campaigns for the simulation.

The subsystem has four layers:

* :mod:`repro.faults.model` — declarative fault types (what goes wrong);
* :mod:`repro.faults.schedule` — timed schedules and the named scenario
  catalogue (when it goes wrong);
* :mod:`repro.faults.injector` — the :class:`FaultPlane` that stages
  faults against a live cluster through small interception points (how
  it is made to go wrong);
* :mod:`repro.faults.invariants` / :mod:`repro.faults.campaign` — what
  must still hold afterwards, and the deterministic runner that sweeps
  scenarios × seeds (``python -m repro.faults``).
"""

from .injector import FaultPlane, WireRule
from .invariants import (
    InvariantResult,
    check_cache_freshness,
    check_counter_monotonicity,
    check_linearizability,
    check_liveness,
)
from .model import (
    ALL_FAULT_TYPES,
    EnclaveReboot,
    Fault,
    HostTamper,
    MessageCorrupt,
    MessageDelay,
    MessageLoss,
    NetworkPartition,
    ReplicaCrash,
    ReplicaRestart,
    WriteContentionAttack,
)
from .schedule import (
    SCENARIOS,
    FaultEvent,
    Scenario,
    Schedule,
    WorkloadSpec,
    get_scenario,
    scenario_names,
)

__all__ = [
    "ALL_FAULT_TYPES",
    "EnclaveReboot",
    "Fault",
    "FaultEvent",
    "FaultPlane",
    "HostTamper",
    "InvariantResult",
    "MessageCorrupt",
    "MessageDelay",
    "MessageLoss",
    "NetworkPartition",
    "ReplicaCrash",
    "ReplicaRestart",
    "SCENARIOS",
    "Scenario",
    "Schedule",
    "WireRule",
    "WorkloadSpec",
    "WriteContentionAttack",
    "check_cache_freshness",
    "check_counter_monotonicity",
    "check_linearizability",
    "check_liveness",
    "get_scenario",
    "scenario_names",
]
