"""Invariant checks evaluated after every chaos scenario.

Four properties, mapped to the paper's claims:

* **linearizability** — the Troxy fast-read cache must preserve
  linearizability under every fault (Section IV-A); delegates to
  :mod:`repro.analysis.linearizability`.
* **liveness** — every client driver finishes its workload before the
  scenario horizon. Legacy clients retry forever, so an unfinished
  driver means the service stopped making progress.
* **cache freshness** — a targeted staleness check: a read must never
  observe a value that was overwritten by a put which completed before
  the read began. Weaker than full linearizability but linear-time and
  with a far sharper diagnostic when the fast-read path serves stale
  cache entries (Section IV-A write invalidation).
* **counter monotonicity** — across enclave reboots, sealed trusted
  counters must never move backwards (rollback protection, Section
  IV-B).

Each check returns an :class:`InvariantResult`; ``ok`` plus a detail
string when violated. Checks are pure functions of recorded data so the
known-bad-history unit tests can drive them directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from ..analysis.linearizability import OpRecord, check_key_history, split_by_key

INVARIANT_NAMES = (
    "linearizability",
    "liveness",
    "cache_freshness",
    "counter_monotonicity",
)


@dataclass(frozen=True)
class InvariantResult:
    """Outcome of one invariant check."""

    name: str
    ok: bool
    detail: str = ""

    def as_dict(self) -> dict:
        return {"name": self.name, "ok": self.ok, "detail": self.detail}


# -- linearizability ---------------------------------------------------------


def check_linearizability(history: Sequence[OpRecord]) -> InvariantResult:
    for key, records in sorted(split_by_key(list(history)).items()):
        if not check_key_history(records):
            ops = "; ".join(
                f"[{r.start:.4f},{r.end:.4f}] {r.client} {r.kind} -> {r.value!r}"
                for r in sorted(records, key=lambda r: (r.start, r.end))
            )
            return InvariantResult(
                "linearizability", False,
                f"key {key!r} has no legal witness ordering: {ops}",
            )
    return InvariantResult("linearizability", True)


# -- liveness ----------------------------------------------------------------


def check_liveness(unfinished: Sequence[str]) -> InvariantResult:
    """``unfinished`` names the client drivers still running at horizon."""
    if unfinished:
        return InvariantResult(
            "liveness", False,
            "drivers still running at horizon: " + ", ".join(sorted(unfinished)),
        )
    return InvariantResult("liveness", True)


# -- cache freshness ---------------------------------------------------------


def find_stale_read(history: Sequence[OpRecord]) -> Optional[str]:
    """First read that observed a provably overwritten value.

    A get G is stale iff some put W' on the same key completed before G
    started (``W'.end < G.start``) while the put that produced G's
    observed value had already completed before W' began
    (``W_v.end < W'.start``). A get observing ``None`` (no value) treats
    ``W_v.end`` as minus infinity. Sound provided written values are
    unique per key, which the campaign workload guarantees.
    """
    for key, records in sorted(split_by_key(list(history)).items()):
        puts = [r for r in records if r.kind == "put"]
        if not puts:
            continue
        writes_by_value = {r.value: r for r in puts}
        for get in records:
            if get.kind != "get":
                continue
            if get.value is None:
                observed_end = float("-inf")
            else:
                write = writes_by_value.get(get.value)
                if write is None:
                    continue  # alien value: linearizability will flag it
                observed_end = write.end
            for newer in puts:
                if newer.end < get.start and observed_end < newer.start:
                    return (
                        f"{get.client} read {get.value!r} from key {key!r} at "
                        f"[{get.start:.4f},{get.end:.4f}] but {newer.client} had "
                        f"already overwritten it with {newer.value!r} by "
                        f"t={newer.end:.4f}"
                    )
    return None


def check_cache_freshness(history: Sequence[OpRecord]) -> InvariantResult:
    stale = find_stale_read(history)
    if stale is not None:
        return InvariantResult("cache_freshness", False, stale)
    return InvariantResult("cache_freshness", True)


# -- counter monotonicity ----------------------------------------------------


def find_counter_regression(
    chains: dict[str, list[dict[str, int]]],
) -> Optional[str]:
    """First regression in per-replica counter snapshot chains.

    ``chains[replica]`` is a time-ordered list of counter snapshots
    (taken before each enclave reboot, plus one at scenario end). Sealed
    counters must survive reboots: a later snapshot may never drop or
    decrease a counter present in an earlier one.
    """
    for replica, snapshots in sorted(chains.items()):
        for step, (earlier, later) in enumerate(zip(snapshots, snapshots[1:])):
            for name, value in sorted(earlier.items()):
                after = later.get(name)
                if after is None:
                    return (
                        f"{replica}: counter {name!r} vanished between "
                        f"snapshots {step} and {step + 1}"
                    )
                if after < value:
                    return (
                        f"{replica}: counter {name!r} rolled back "
                        f"{value} -> {after} between snapshots {step} and {step + 1}"
                    )
    return None


def check_counter_monotonicity(
    chains: dict[str, list[dict[str, int]]],
) -> InvariantResult:
    regression = find_counter_regression(chains)
    if regression is not None:
        return InvariantResult("counter_monotonicity", False, regression)
    return InvariantResult("counter_monotonicity", True)
