"""Sharded deployment builder: N Hybster groups behind one Troxy cell.

``build_sharded`` assembles ``shards`` independent agreement groups —
each with its own leader, trusted counters, batch assembler, and
fast-read caches — on one simulated network, and hands every TroxyCore
a reference to one shared :class:`~repro.shard.router.ShardRouter`.
Legacy clients connect to any replica of any group exactly as before;
the fronting Troxy forwards requests whose keys live elsewhere
(docs/SHARDING.md).

Group 0 keeps the historical ``replica-{i}`` node names and is built by
the same per-replica assembly as :func:`repro.bench.clusters.build_troxy`,
so a one-group sharded deployment is wire-identical to the unsharded
path (pinned by ``tests/shard/test_conformance.py``). Groups beyond the
first get a ``g{N}-`` node-name prefix.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace
from typing import Callable, Optional, Union

from ..apps.base import Application
from ..apps.kvstore import decode_key_list, decode_kv_records
from ..bench.clusters import (
    LAN_LATENCY,
    MASTER_SECRET,
    _apply_batching,
    _apply_leases,
    _build_troxy_replica,
    _wan_client_links,
    BOUNDARIES,
)
from ..crypto.keys import KeyRing
from ..hybster.client import ClientMachine
from ..hybster.config import BatchConfig, ClusterConfig, LeaseConfig
from ..hybster.replica import Replica
from ..sgx.attestation import AttestationService
from ..sim.engine import Environment
from ..sim.network import LatencyModel, Network, NicConfig
from ..sim.rng import RngTree
from ..sim.trace import Tracer
from ..troxy.core import TroxyCore
from ..troxy.host import TroxyHost
from ..troxy.monitor import ConflictMonitor
from ..workloads.legacy import LegacyClient
from .migrate import ShardMigrator
from .ring import HashRing, ring_from_rng
from .router import ShardRouter

#: Environment default for the shard count, mirroring REPRO_BATCHING:
#: only consulted when the caller passes ``shards=None``.
SHARDS_ENV = "REPRO_SHARDS"


def resolve_shards(shards: Union[int, str, None]) -> int:
    """Turn a shard knob (CLI/env/int) into a group count >= 1."""
    if shards is None:
        env_default = os.environ.get(SHARDS_ENV, "").strip()
        shards = env_default if env_default else 1
    if isinstance(shards, str):
        shards = int(shards.strip() or "1")
    shards = int(shards)
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    return shards


def shard_keys_fn(op) -> tuple:
    """Key extraction covering the migration bulk ops.

    ``shard_install``/``shard_retire`` carry their affected keys in the
    operation body; every one of them must be invalidated in the
    executing group's fast-read caches, or a cache entry for a migrated
    key could serve the pre-migration value after the handoff.
    """
    if op.name == "shard_install":
        return tuple(key for key, _value in decode_kv_records(op.body.content))
    if op.name == "shard_retire":
        return tuple(decode_key_list(op.body.content))
    return (op.key,)


def group_id(index: int) -> str:
    return f"g{index}"


@dataclass
class ShardGroup:
    """One agreement group of a sharded deployment."""

    group_id: str
    config: ClusterConfig
    replicas: list[Replica]
    hosts: list[TroxyHost]
    cores: list[TroxyCore]

    @property
    def leader(self) -> Replica:
        view = max(replica.view for replica in self.replicas)
        leader_id = self.config.leader_of(view)
        return next(r for r in self.replicas if r.replica_id == leader_id)


@dataclass
class ShardedTroxyCluster:
    """A running multi-group Troxy deployment behind one shard router.

    Duck-types the single-group :class:`~repro.bench.clusters.TroxyCluster`
    where the fault plane and workload drivers need it: ``replicas`` /
    ``hosts`` / ``cores`` flatten across groups (group 0 first, so
    ``replica-{i}`` keep their historical indices), ``config`` and
    ``leader`` refer to group 0.
    """

    env: Environment
    net: Network
    config: ClusterConfig  # group 0's config
    keyring: KeyRing
    groups: list[ShardGroup]
    ring: HashRing
    router: ShardRouter
    machines: list[ClientMachine]
    tracer: Tracer
    attestation: AttestationService
    migrator: ShardMigrator = None
    _client_counter: int = 0

    @property
    def shards(self) -> int:
        return len(self.groups)

    @property
    def replicas(self) -> list[Replica]:
        return [replica for group in self.groups for replica in group.replicas]

    @property
    def hosts(self) -> list[TroxyHost]:
        return [host for group in self.groups for host in group.hosts]

    @property
    def cores(self) -> list[TroxyCore]:
        return [core for group in self.groups for core in group.cores]

    @property
    def leader(self) -> Replica:
        return self.groups[0].leader

    def group(self, gid: str) -> ShardGroup:
        return next(g for g in self.groups if g.group_id == gid)

    def shard_of(self, replica_id: str) -> str:
        return self.router.group_of_replica(replica_id)

    def host_of(self, replica_id: str) -> TroxyHost:
        return next(h for h in self.hosts if h.replica_id == replica_id)

    def new_client(
        self,
        contact_index: Optional[int] = None,
        request_timeout: float = 2.0,
    ) -> LegacyClient:
        """A pre-connected legacy client; may contact any replica of any
        group — the shard topology stays invisible to it."""
        machine = self.machines[self._client_counter % len(self.machines)]
        hosts = self.hosts
        if contact_index is None:
            contact_index = self._client_counter % len(hosts)
        self._client_counter += 1
        client = LegacyClient(
            machine,
            client_id=f"client-{self._client_counter}",
            keyring=self.keyring,
            hosts=hosts,
            contact_index=contact_index,
            request_timeout=request_timeout,
        )
        client.connect_instant()
        return client


def build_sharded(
    seed: int = 0,
    shards: int = 1,
    f: int = 1,
    app_factory: Callable[[], Application] = None,
    boundary: str = "sgx",
    fast_reads: bool = True,
    client_machines: int = 2,
    wan: Optional[LatencyModel] = None,
    client_nic: Optional[NicConfig] = None,
    replica_cores: int = 8,
    config: Optional[ClusterConfig] = None,
    batching: Union[BatchConfig, int, str, None] = None,
    leases: Union[LeaseConfig, bool, float, str, None] = None,
    monitor_factory: Callable[[], ConflictMonitor] = None,
    cache_entries: int = 65536,
    cache_outside: bool = True,
    epc_bytes: Optional[int] = None,
    query_timeout: float = 0.1,
    vnodes: int = 64,
    trace: bool = False,
) -> ShardedTroxyCluster:
    """Assemble a sharded Troxy deployment of ``shards`` agreement groups.

    Accepts every knob :func:`~repro.bench.clusters.build_troxy` does;
    each applies uniformly to all groups. The consistent-hash ring's
    vnode placement is derived from the deployment seed (its own RNG
    stream, so adding shards never perturbs protocol randomness).
    """
    if app_factory is None:
        raise ValueError("app_factory is required")
    if boundary not in BOUNDARIES:
        raise ValueError(f"boundary must be one of {sorted(BOUNDARIES)}: {boundary!r}")
    shards = resolve_shards(shards)
    explicit_config = config is not None
    base_config = _apply_batching(config, f, batching)
    base_config = _apply_leases(base_config, leases, explicit_config)
    if base_config.replica_prefix:
        raise ValueError("build_sharded assigns group prefixes itself")
    configs = [
        base_config if g == 0 else replace(base_config, replica_prefix=f"{group_id(g)}-")
        for g in range(shards)
    ]

    env = Environment()
    rng = RngTree(seed)
    tracer = Tracer(enabled=trace)
    net = Network(env, rng_tree=rng, default_latency=LAN_LATENCY, tracer=tracer)
    keyring = KeyRing(MASTER_SECRET)
    attestation = AttestationService(MASTER_SECRET + b"/ias")

    group_ids = [group_id(g) for g in range(shards)]
    ring = ring_from_rng(group_ids, rng.derive("shard", "ring"), vnodes=vnodes)
    members = {group_ids[g]: configs[g].replica_ids for g in range(shards)}
    router = ShardRouter(ring, members)

    groups = []
    for g in range(shards):
        replicas, hosts, cores = [], [], []
        for replica_id in configs[g].replica_ids:
            replica, host, core = _build_troxy_replica(
                env=env,
                net=net,
                rng=rng,
                keyring=keyring,
                attestation=attestation,
                tracer=tracer,
                config=configs[g],
                replica_id=replica_id,
                app_factory=app_factory,
                boundary=boundary,
                fast_reads=fast_reads,
                replica_cores=replica_cores,
                monitor_factory=monitor_factory,
                cache_entries=cache_entries,
                cache_outside=cache_outside,
                epc_bytes=epc_bytes,
                query_timeout=query_timeout,
                router=router,
                keys_fn=shard_keys_fn,
            )
            if replica.lease_manager is not None:
                # A group leader must only lease keys its group owns and
                # that are not pinned elsewhere or write-frozen by a
                # migration; ownership can change under it, so the veto
                # is evaluated at every grant.
                gid = group_ids[g]
                replica.lease_manager.set_grantable(
                    lambda key, _gid=gid: (
                        router.group_of_key(key) == _gid
                        and not router._write_frozen(key)
                    )
                )
            replicas.append(replica)
            hosts.append(host)
            cores.append(core)
        groups.append(
            ShardGroup(
                group_id=group_ids[g],
                config=configs[g],
                replicas=replicas,
                hosts=hosts,
                cores=cores,
            )
        )

    machines = []
    for i in range(client_machines):
        name = f"client-machine-{i}"
        node = net.add_node(name, cores=replica_cores, nic=client_nic)
        machines.append(ClientMachine(env, net, node))
    all_replica_ids = [rid for cfg in configs for rid in cfg.replica_ids]
    if wan is not None:
        _wan_client_links(net, [m.node.name for m in machines], all_replica_ids, wan)

    cluster = ShardedTroxyCluster(
        env=env,
        net=net,
        config=configs[0],
        keyring=keyring,
        groups=groups,
        ring=ring,
        router=router,
        machines=machines,
        tracer=tracer,
        attestation=attestation,
    )
    cluster.migrator = ShardMigrator(cluster)
    return cluster
