"""Enclave-resident shard routing (docs/SHARDING.md).

Every TroxyCore in a sharded deployment holds a reference to the shared
:class:`ShardRouter`. On each decrypted client request the core asks
the router where the key lives:

* ``local`` — the key belongs to this core's own group: the request
  takes the unchanged Troxy path (fast read, ordering, voting).
* ``forward`` — the key belongs to another group: the core registers
  the voter state locally (it stays the reply convergence point and
  holds the only copy of the client's TLS session) and hands the host a
  Troxy-authenticated :class:`~repro.troxy.messages.ForwardedRequest`
  for the same-index replica of the owning group.
* ``frozen`` — the key sits in a ring slice currently being migrated
  and the operation is a write: dropped; the legacy client's
  timeout-and-retry loop resubmits it after the cut-over.

The router object is shared by all cores of a deployment; it models the
attested routing table every enclave holds a verified copy of, and
sharing it is what makes the migrator's ring cut-over atomic across the
cell. Routing itself is a hash plus a binary search — nanoseconds,
below the simulator's cost floor — so it charges no simulated CPU and
a single-group deployment stays wire-identical to the unsharded path
(pinned by ``tests/shard/test_conformance.py``).

Keys of the form ``__g{N}/...`` bypass the ring and pin to group
``g{N}``; the migrator uses such keys for its fence and state-install
operations (they never move, so they are never frozen), and tests and
benchmarks use them to direct traffic at a specific group.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from .ring import HashRing

PIN_PREFIX = "__g"


def pinned_group(key: str) -> Optional[str]:
    """``"__g{N}/..."`` -> ``"g{N}"``; None for ordinary keys."""
    if not key.startswith(PIN_PREFIX):
        return None
    head, sep, _rest = key.partition("/")
    if not sep:
        return None
    return head[2:]  # strip the "__"


@dataclass(frozen=True)
class RouteDecision:
    """Outcome of one routing lookup.

    ``kind`` is "local", "forward", or "frozen"; ``group`` is the owning
    group id; ``target`` is the replica id to forward to (same index in
    the owning group — empty unless forwarding).
    """

    kind: str
    group: str = ""
    target: str = ""


@dataclass
class RouterStats:
    lookups: int = 0
    forwards: int = 0
    frozen_rejects: int = 0
    forwards_by_group: dict = field(default_factory=dict)


class ShardRouter:
    """Key -> group routing table shared by all Troxy cores of a cell."""

    def __init__(self, ring: HashRing, members: dict[str, tuple[str, ...]]):
        """``members`` maps group id -> that group's replica ids, index
        aligned across groups (same-index forwarding)."""
        self.ring = ring
        self.members = {group: tuple(ids) for group, ids in members.items()}
        self._home: dict[str, tuple[str, int]] = {}
        for group, ids in self.members.items():
            for index, replica_id in enumerate(ids):
                self._home[replica_id] = (group, index)
        self.stats = RouterStats()
        #: active migration freeze: writes to matching keys are rejected
        self._frozen: Optional[Callable[[str], bool]] = None

    # -- membership ------------------------------------------------------------------

    def group_of_replica(self, replica_id: str) -> str:
        return self._home[replica_id][0]

    def group_of_key(self, key: str) -> str:
        pinned = pinned_group(key)
        if pinned is not None:
            if pinned not in self.members:
                raise ValueError(f"key pinned to unknown group: {key!r}")
            return pinned
        return self.ring.owner(key)

    # -- migration freeze ------------------------------------------------------------

    @property
    def frozen(self) -> bool:
        return self._frozen is not None

    def freeze(self, pred: Callable[[str], bool]) -> None:
        if self._frozen is not None:
            raise RuntimeError("a migration freeze is already active")
        self._frozen = pred

    def unfreeze(self) -> None:
        self._frozen = None

    def _write_frozen(self, key: str) -> bool:
        if self._frozen is None or pinned_group(key) is not None:
            return False
        return self._frozen(key)

    # -- the routing decision ---------------------------------------------------------

    def route(self, op, replica_id: str) -> RouteDecision:
        """Route one operation as seen by ``replica_id``'s core."""
        self.stats.lookups += 1
        key = op.key
        if not op.is_read and self._write_frozen(key):
            self.stats.frozen_rejects += 1
            return RouteDecision("frozen")
        owner = self.group_of_key(key)
        group, index = self._home[replica_id]
        if owner == group:
            return RouteDecision("local", group=owner)
        self.stats.forwards += 1
        by_group = self.stats.forwards_by_group
        by_group[owner] = by_group.get(owner, 0) + 1
        target = self.members[owner][index % len(self.members[owner])]
        return RouteDecision("forward", group=owner, target=target)
