"""Live shard migration: move a slice of the ring between groups.

The protocol (docs/SHARDING.md) hands a set of ring tokens — and every
key hashing into them — from a source group to a destination group
while both keep serving traffic for everything else:

1. **Freeze.** Writes to moving keys are rejected at every Troxy (the
   shared router's freeze predicate); legacy clients retry through their
   normal timeout loop and succeed after the cut-over. Reads keep being
   served by the source group throughout.
2. **Fence.** An ordered write of a pinned source-group key. Because
   execution is slot-ordered group-wide, its completion proves f+1
   source replicas have executed every write admitted before the
   freeze *that was ordered before the fence*.
3. **Collect.** Pull application snapshots from source replicas, keep
   only those that contain the fence marker, filter them down to the
   moving keys, and require f+1 replicas agreeing on the filtered
   digest — the untrusted hosts cannot forge the moved state.
4. **Install.** Submit the filtered state as one ordered
   ``shard_install`` operation to the destination group (pinned key),
   so every destination replica applies it at the same slot: the
   transfer is checkpoint-consistent and survives a destination leader
   crash like any other client request.
5. **Stabilise.** Repeat fence/collect until two consecutive rounds
   produce the same digest: a pre-freeze write still in flight past the
   first fence shows up as a digest change and triggers a reinstall.
6. **Certify.** Each live destination replica's trusted subsystem
   creates a migration counter and certifies the manifest digest at
   value 1; f+1 verifying certificates attest that the destination
   group accepted exactly this state.
7. **Cut over.** Reassign the tokens and lift the freeze in one
   indivisible step (no simulated yields between the two), then retire
   the moved keys at the source with an ordered ``shard_retire``.

Known limitation (also in docs/SHARDING.md): a write admitted at the
source before the freeze and retried by its client after the cut-over
can execute in both groups. For the KV store all writes are idempotent
single-key overwrites, so the duplicate execution is harmless.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from ..apps.kvstore import (
    decode_kv_records,
    encode_kv_records,
    shard_install,
    shard_retire,
)
from ..apps.kvstore import put as kv_put
from .router import pinned_group


class MigrationError(Exception):
    """The handoff could not complete; the freeze has been lifted."""


def filter_kv_snapshot(snapshot: bytes, pred) -> list[tuple[str, bytes]]:
    """Decode a KvStore snapshot and keep the keys matching ``pred``.

    Pinned (``__g{N}/``) keys never migrate and are excluded up front,
    whatever ``pred`` says about their ring position.
    """
    return [
        (key, value)
        for key, value in decode_kv_records(snapshot)
        if pinned_group(key) is None and pred(key)
    ]


def manifest_digest(pairs) -> bytes:
    return hashlib.sha256(b"shard-manifest|" + encode_kv_records(pairs)).digest()


@dataclass
class MigrationReport:
    """What one migration did, for the chaos campaigns and tests."""

    migration_id: str
    src: str
    dst: str
    tokens: int
    moved_keys: int = 0
    rounds: int = 0
    certificates: int = 0
    manifest: str = ""
    started_at: float = 0.0
    cutover_at: float = 0.0
    completed_at: float = 0.0
    completed: bool = False
    reason: str = ""

    @property
    def frozen_for(self) -> float:
        return (self.cutover_at or self.completed_at) - self.started_at


@dataclass
class ShardMigrator:
    """Drives live handoffs on one sharded cluster.

    ``migrate`` is a process generator: spawn it on the cluster's
    environment (the ShardMigration fault does) or ``yield from`` it.
    """

    cluster: object
    reports: list = field(default_factory=list)
    #: wait between fence rounds for in-flight pre-freeze writes to land
    drain_delay: float = 0.05
    #: retry interval while waiting for f+1 matching snapshots
    collect_retry: float = 0.02
    max_rounds: int = 8

    def migrate(self, src: str, dst: str, fraction: float = 0.5):
        """Process generator: move ``fraction`` of ``src``'s tokens to ``dst``."""
        cluster = self.cluster
        env = cluster.env
        ring = cluster.ring
        router = cluster.router
        if dst not in router.members:
            raise ValueError(f"unknown destination group: {dst!r}")
        if src == dst:
            raise ValueError("source and destination are the same group")
        mid = f"m{len(self.reports)}"
        tokens = ring.plan_move(src, dst, fraction)
        report = MigrationReport(
            migration_id=mid, src=src, dst=dst, tokens=len(tokens),
            started_at=env.now,
        )
        self.reports.append(report)
        if not tokens:
            report.completed_at = env.now
            report.reason = "nothing to move"
            return report

        moving = ring.keys_moving(tokens)
        router.freeze(moving)
        client = cluster.new_client()
        try:
            yield from self._quiesce_leases(src, moving)
            pairs, rounds = yield from self._stable_state(
                client, src, moving, mid
            )
            report.rounds = rounds
            report.moved_keys = len(pairs)
            digest = manifest_digest(pairs)
            report.manifest = digest.hex()

            if pairs:
                yield from client.invoke(
                    shard_install(f"__{dst}/mig/{mid}/install", pairs)
                )
            report.certificates = self._certify_destination(dst, mid, digest)
        except MigrationError as exc:
            router.unfreeze()
            report.completed_at = env.now
            report.reason = str(exc)
            return report

        # Atomic cut-over: reassign the tokens and lift the freeze with
        # no simulated yields in between — no request can ever observe
        # the new owner while writes are still frozen, or vice versa.
        ring.apply_move(tokens, dst)
        router.unfreeze()
        report.cutover_at = env.now

        retire_keys = [key for key, _value in pairs]
        if retire_keys:
            yield from client.invoke(
                shard_retire(f"__{src}/mig/{mid}/retire", retire_keys)
            )
        report.completed_at = env.now
        report.completed = True
        return report

    # -- lease quiesce -------------------------------------------------------------

    def _quiesce_leases(self, src: str, moving):
        """Revoke read leases covering the moving keys before collection.

        A live lease on a moving key would let its holder keep serving
        local reads from pre-migration state after the cut-over. With
        the write freeze already up no *new* lease can be granted on
        these keys (the grantable veto refuses frozen keys), so one
        sweep — revoke every active grant, then wait for each to be
        acknowledged or to lapse on the shared clock — quiesces them.
        """
        env = self.cluster.env
        leader = self.cluster.group(src).leader
        manager = leader.lease_manager
        if manager is None:
            return
        keys = tuple(key for key in list(manager._active) if moving(key))
        if not keys:
            return
        horizon = max(manager._active[key].expiry for key in keys)
        for key in keys:
            yield from leader._revoke_lease(key)
        deadline = max(horizon, env.now) + 60 * self.collect_retry
        while any(manager.is_revoking(key) for key in keys):
            if env.now >= deadline:
                raise MigrationError(
                    "lease quiesce on moving keys did not settle"
                )
            yield env.timeout(self.collect_retry)

    # -- fenced state collection ---------------------------------------------------

    def _stable_state(self, client, src: str, moving, mid: str):
        """Fence/collect until two consecutive rounds agree on the digest."""
        env = self.cluster.env
        previous = None
        pairs = []
        for round_no in range(1, self.max_rounds + 1):
            yield env.timeout(self.drain_delay)
            fence_key = f"__{src}/mig/{mid}/fence/{round_no}"
            marker = f"fence-{mid}-{round_no}".encode()
            yield from client.invoke(kv_put(fence_key, marker))
            pairs = yield from self._collect(src, moving, fence_key, marker)
            digest = manifest_digest(pairs)
            if previous == digest:
                return pairs, round_no
            previous = digest
        raise MigrationError(
            f"moved-key state did not stabilise in {self.max_rounds} fence rounds"
        )

    def _collect(self, src: str, moving, fence_key: str, marker: bytes):
        """f+1 fence-executed source replicas agreeing on the moved state."""
        env = self.cluster.env
        group = self.cluster.group(src)
        quorum = group.config.commit_quorum
        deadline = env.now + 60 * self.collect_retry
        while True:
            by_digest: dict[bytes, list] = {}
            for replica in group.replicas:
                if replica._stopped:
                    continue
                snapshot = replica.app.snapshot()
                records = dict(decode_kv_records(snapshot))
                if records.get(fence_key) != marker:
                    continue  # has not executed this round's fence yet
                filtered = filter_kv_snapshot(snapshot, moving)
                by_digest.setdefault(manifest_digest(filtered), []).append(filtered)
            for candidates in by_digest.values():
                if len(candidates) >= quorum:
                    return candidates[0]
            if env.now >= deadline:
                raise MigrationError(
                    f"no f+1 matching snapshots from {src} after fence"
                )
            yield env.timeout(self.collect_retry)

    # -- destination counter re-certification ----------------------------------------

    def _certify_destination(self, dst: str, mid: str, digest: bytes) -> int:
        """Each live destination replica certifies the manifest at value 1.

        f+1 verifying certificates prove enough trusted subsystems in
        the destination group bound themselves to exactly this state;
        fewer means the group cannot currently form a commit quorum and
        the migration must not cut over.
        """
        group = self.cluster.group(dst)
        name = f"shard-migration/{mid}"
        certs = []
        for replica in group.replicas:
            if replica._stopped:
                continue
            replica.counters.create(name)
            certs.append(replica.counters.certify_at(name, 1, digest))
        verifier = group.replicas[0].counters
        valid = sum(1 for cert in certs if verifier.verify(cert))
        if valid < group.config.commit_quorum:
            raise MigrationError(
                f"only {valid} destination counter certificates, "
                f"need {group.config.commit_quorum}"
            )
        return valid
