"""Consistent-hash ring with virtual nodes (docs/SHARDING.md).

Every group owns ``vnodes`` tokens placed on a 64-bit ring by hashing
``salt | group | vnode``; a key belongs to the group assigned to the
first token at or after the key's own hash (wrapping around). Placement
is fully determined by ``(salt, groups, vnodes)`` — deployments derive
``salt`` from the simulation's :class:`~repro.sim.rng.RngTree`, so a
seed pins the whole keyspace layout.

Tokens have a permanent identity ``(group, vnode_index)`` separate from
their *assignment*: live migration re-assigns a set of tokens to a new
group without moving any token's position, so exactly the keys covered
by the moved tokens change owner and every other key stays put (the
minimal-remap property, pinned by ``tests/shard``).
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Callable, Iterable, Optional

TokenId = tuple[str, int]  # (home group, vnode index) — permanent identity


def _hash64(data: str) -> int:
    return int.from_bytes(hashlib.sha256(data.encode()).digest()[:8], "big")


class HashRing:
    """Token ring mapping keys to group ids."""

    def __init__(self, groups: Iterable[str], vnodes: int = 64, salt: str = ""):
        groups = list(groups)
        if not groups:
            raise ValueError("a ring needs at least one group")
        if len(set(groups)) != len(groups):
            raise ValueError(f"duplicate group ids: {groups}")
        if vnodes < 1:
            raise ValueError(f"vnodes must be >= 1: {vnodes}")
        self.vnodes = vnodes
        self.salt = salt
        #: token identity -> current owning group (identity == home at birth)
        self.assignment: dict[TokenId, str] = {}
        self._positions: list[tuple[int, TokenId]] = []
        for group in groups:
            self._place_group(group)
        self._sort()

    # -- construction / membership -------------------------------------------------

    def _place_group(self, group: str) -> None:
        for v in range(self.vnodes):
            token = (group, v)
            self.assignment[token] = group
            self._positions.append((self._token_position(token), token))

    def _token_position(self, token: TokenId) -> int:
        return _hash64(f"{self.salt}|{token[0]}|{token[1]}")

    def _sort(self) -> None:
        self._positions.sort()
        self._keys = [pos for pos, _token in self._positions]

    @property
    def groups(self) -> tuple[str, ...]:
        """Groups currently assigned at least one token (sorted)."""
        return tuple(sorted(set(self.assignment.values())))

    def add_group(self, group: str) -> None:
        """Join a new group: place its tokens; only keys whose successor
        token is now one of the new tokens change owner."""
        if any(token[0] == group for token in self.assignment):
            raise ValueError(f"group already on the ring: {group!r}")
        self._place_group(group)
        self._sort()

    def remove_group(self, group: str) -> None:
        """Leave: drop the group's home tokens and re-home any foreign
        tokens assigned to it back to their home groups."""
        remaining = {g for g in self.groups if g != group}
        if not remaining:
            raise ValueError("cannot remove the last group")
        self.assignment = {
            token: (token[0] if owner == group else owner)
            for token, owner in self.assignment.items()
            if token[0] != group
        }
        self._positions = [
            (pos, token) for pos, token in self._positions if token[0] != group
        ]
        self._sort()

    # -- lookup ----------------------------------------------------------------------

    def key_position(self, key: str) -> int:
        return _hash64(f"{self.salt}|key|{key}")

    def token_of_key(self, key: str) -> TokenId:
        """The successor token governing ``key``."""
        index = bisect.bisect_right(self._keys, self.key_position(key))
        if index == len(self._positions):
            index = 0  # wrap around
        return self._positions[index][1]

    def owner(self, key: str) -> str:
        return self.assignment[self.token_of_key(key)]

    # -- migration -------------------------------------------------------------------

    def plan_move(self, src: str, dst: str, fraction: float) -> tuple[TokenId, ...]:
        """Deterministically pick ~``fraction`` of ``src``'s tokens to
        hand to ``dst`` (lowest vnode indices first)."""
        if not 0.0 < fraction <= 1.0:
            raise ValueError(f"fraction must be in (0, 1]: {fraction}")
        owned = sorted(t for t, owner in self.assignment.items() if owner == src)
        if not owned:
            raise ValueError(f"group {src!r} owns no tokens")
        count = max(1, int(len(owned) * fraction))
        return tuple(owned[:count])

    def apply_move(self, tokens: Iterable[TokenId], dst: str) -> None:
        """Atomic cut-over: re-assign ``tokens`` to ``dst``.

        Callers must not yield between freeze-release and this call; in
        the simulation the whole reassignment happens at one instant,
        modelling an attested routing-table broadcast.
        """
        for token in tokens:
            if token not in self.assignment:
                raise ValueError(f"unknown token: {token}")
        for token in tokens:
            self.assignment[token] = dst

    def keys_moving(self, tokens: Iterable[TokenId]) -> Callable[[str], bool]:
        """Predicate: does ``key`` live under one of ``tokens``? Used as
        the migration freeze predicate."""
        moving = frozenset(tokens)
        return lambda key: self.token_of_key(key) in moving

    # -- diagnostics -----------------------------------------------------------------

    def load_split(self, keys: Iterable[str]) -> dict[str, int]:
        """How many of ``keys`` each group owns (balance diagnostics)."""
        split: dict[str, int] = {group: 0 for group in self.groups}
        for key in keys:
            split[self.owner(key)] += 1
        return split


def ring_from_rng(groups: Iterable[str], rng, vnodes: int = 64) -> HashRing:
    """Build a ring whose placement is pinned by a sim RNG stream."""
    return HashRing(groups, vnodes=vnodes, salt=str(rng.getrandbits(64)))
