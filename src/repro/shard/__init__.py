"""repro.shard — sharded multi-group Troxy (docs/SHARDING.md).

Partitions the keyspace across N independent Hybster agreement groups,
each with its own leader, trusted counters, batch assembler, and
fast-read cache, behind an enclave-resident :class:`ShardRouter` with a
consistent-hash ring — legacy clients still see one transparent
endpoint. :class:`ShardMigrator` moves ring slices between groups live
(freeze, fenced state transfer, counter re-certification, atomic ring
cut-over).
"""

from .ring import HashRing
from .router import RouteDecision, ShardRouter
from .cluster import ShardedTroxyCluster, ShardGroup, build_sharded, resolve_shards
from .migrate import MigrationReport, ShardMigrator, filter_kv_snapshot

__all__ = [
    "HashRing",
    "RouteDecision",
    "ShardRouter",
    "ShardGroup",
    "ShardedTroxyCluster",
    "build_sharded",
    "resolve_shards",
    "MigrationReport",
    "ShardMigrator",
    "filter_kv_snapshot",
]
