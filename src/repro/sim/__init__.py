"""Deterministic discrete-event simulation substrate.

Public surface:

* :class:`Environment`, :class:`Event`, :class:`Timeout`, :class:`Process`,
  :class:`Interrupt`, :class:`AllOf`, :class:`AnyOf` — the engine.
* :class:`Store`, :class:`Resource` — waitable queues and counted resources.
* :class:`Network`, :class:`Node`, :class:`NicConfig`, latency models —
  the cluster fabric.
* :class:`RngTree` — reproducible per-component randomness.
* :class:`Tracer` — structured event tracing.
"""

from .engine import (
    AllOf,
    AnyOf,
    Environment,
    Event,
    Interrupt,
    Process,
    SimulationError,
    Timeout,
)
from .network import (
    GBPS,
    ConstantLatency,
    LatencyModel,
    Message,
    Network,
    NicConfig,
    Node,
    NormalLatency,
    UniformLatency,
)
from .resources import Resource, ResourceRequest, Store, StoreGet
from .rng import RngTree
from .trace import TraceRecord, Tracer

__all__ = [
    "AllOf",
    "AnyOf",
    "ConstantLatency",
    "Environment",
    "Event",
    "GBPS",
    "Interrupt",
    "LatencyModel",
    "Message",
    "Network",
    "NicConfig",
    "Node",
    "NormalLatency",
    "Process",
    "Resource",
    "ResourceRequest",
    "RngTree",
    "SimulationError",
    "Store",
    "StoreGet",
    "Timeout",
    "TraceRecord",
    "Tracer",
    "UniformLatency",
]
