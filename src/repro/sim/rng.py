"""Deterministic random-number tree.

Every stochastic component (each link, each client, each Troxy picking
random remote caches, ...) draws from its own ``random.Random`` stream,
derived from a root seed and a stable component name. Adding a component
never perturbs the streams of existing ones, which keeps experiment
results stable across code changes.
"""

from __future__ import annotations

import hashlib
import random


class RngTree:
    """Derives independent, reproducible RNG streams by name."""

    def __init__(self, root_seed: int = 0):
        self.root_seed = int(root_seed)

    def derive(self, *path: str) -> random.Random:
        """Return a ``random.Random`` for the component named by ``path``.

        The same (seed, path) always yields an identically-seeded stream.
        """
        if not path:
            raise ValueError("derive() needs at least one path element")
        label = "/".join(path)
        digest = hashlib.sha256(
            f"{self.root_seed}:{label}".encode("utf-8")
        ).digest()
        return random.Random(int.from_bytes(digest[:8], "big"))

    def child(self, *path: str) -> "RngTree":
        """A subtree rooted at ``path`` (for handing to subsystems)."""
        label = "/".join(path)
        digest = hashlib.sha256(
            f"{self.root_seed}:tree:{label}".encode("utf-8")
        ).digest()
        return RngTree(int.from_bytes(digest[:8], "big"))
