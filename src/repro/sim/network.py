"""Simulated network: nodes, NICs with finite bandwidth, latency models.

The model mirrors the paper's testbed: machines with several 1 Gbps NICs
on a LAN, plus experiments where the *client* links get an extra
100 ± 20 ms normally-distributed delay (Section VI-A).

A transfer occupies a transmit slot on the sender for the serialization
time (``bytes / per_nic_bandwidth``), crosses the link after a sampled
propagation delay, occupies a receive slot on the destination for the
same serialization time, and finally lands in the destination's inbox.

Fault injection: links can be cut (partitions) or lossy, and whole nodes
can be crashed (silently dropping all traffic), which is how replica and
Troxy failures are staged in the tests.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Optional

from .engine import Environment, Timeout
from .resources import Resource, Store
from .rng import RngTree
from .trace import Tracer

GBPS = 1e9 / 8  # bytes per second in one gigabit per second


class LatencyModel:
    """Samples one-way propagation delays in seconds."""

    def sample(self, rng) -> float:
        raise NotImplementedError


class ConstantLatency(LatencyModel):
    """Fixed one-way delay (our LAN default: 50 us)."""

    def __init__(self, delay: float):
        if delay < 0:
            raise ValueError(f"negative latency: {delay}")
        self.delay = delay

    def sample(self, rng) -> float:
        return self.delay

    def __repr__(self) -> str:
        return f"ConstantLatency({self.delay})"


class UniformLatency(LatencyModel):
    """Uniformly distributed delay in [low, high]."""

    def __init__(self, low: float, high: float):
        if not 0 <= low <= high:
            raise ValueError(f"bad uniform bounds: [{low}, {high}]")
        self.low = low
        self.high = high

    def sample(self, rng) -> float:
        return rng.uniform(self.low, self.high)

    def __repr__(self) -> str:
        return f"UniformLatency({self.low}, {self.high})"


class NormalLatency(LatencyModel):
    """Normally distributed delay, clamped below at ``floor``.

    The paper's WAN experiments add 100 +/- 20 ms (normal distribution)
    to the client NICs; ``NormalLatency(0.100, 0.020)`` reproduces that.
    """

    def __init__(self, mean: float, stddev: float, floor: float = 1e-6):
        if mean < 0 or stddev < 0:
            raise ValueError(f"bad normal parameters: mean={mean} stddev={stddev}")
        self.mean = mean
        self.stddev = stddev
        self.floor = floor

    def sample(self, rng) -> float:
        return max(self.floor, rng.gauss(self.mean, self.stddev))

    def __repr__(self) -> str:
        return f"NormalLatency({self.mean}, {self.stddev})"


@dataclass(slots=True)
class Message:
    """Envelope delivered to a node's inbox.

    Treated as immutable by convention; one is allocated per transfer,
    so construction stays on the cheap slotted-dataclass path rather
    than frozen's per-field ``object.__setattr__``.
    """

    src: str
    dst: str
    payload: Any
    size: int
    sent_at: float
    msg_id: int
    # FIFO stream identity, stamped by ``send`` when in-order delivery
    # is on: the (src, dst, stream) key and this message's position in
    # that stream. ``None`` means the message bypasses reordering.
    stream_pair: Any = None
    stream_seq: int = 0


@dataclass
class SendAttempt:
    """Mutable draft of one transfer, offered to registered send filters.

    A filter (the fault plane, a test tap, ...) may observe the draft,
    replace the payload (tampering/corruption), set ``drop`` to swallow
    the message, or add ``extra_delay`` seconds of propagation time.
    Source, destination, and stream identity are fixed: the simulated
    adversary sits *on the wire*, it cannot re-address traffic.
    """

    src: str
    dst: str
    payload: Any
    size: int
    stream: Optional[str]
    drop: bool = False
    extra_delay: float = 0.0


@dataclass
class NicConfig:
    """Network interface capacity of one node."""

    count: int = 4
    bandwidth: float = GBPS  # bytes/second per NIC

    def serialization_delay(self, size: int) -> float:
        return size / self.bandwidth


class Node:
    """A machine in the simulated cluster."""

    def __init__(
        self,
        env: Environment,
        name: str,
        cores: int = 8,
        nic: Optional[NicConfig] = None,
    ):
        self.env = env
        self.name = name
        self.nic = nic or NicConfig()
        self.inbox: Store = Store(env)
        self.cpu = Resource(env, capacity=cores)
        self.tx = Resource(env, capacity=self.nic.count)
        self.rx = Resource(env, capacity=self.nic.count)
        self.crashed = False

    def compute(self, seconds: float):
        """Occupy one core for ``seconds``; use as ``yield from n.compute(s)``.

        Zero-cost work skips the scheduler entirely. Returns an iterable
        rather than being a generator function itself so ``yield from``
        delegates straight into the resource's generator — one less stack
        frame on the hottest resume path in the simulator.
        """
        if seconds <= 0:
            return ()
        return self.cpu.use(seconds)

    def charge(self, *costs: float):
        """Charge several deterministic CPU costs as one core occupancy.

        The fast path for back-to-back cost charges (rx + MAC, transition
        + hash, ...): components are summed and the core is held once, so
        the whole charge is a single heap entry instead of one scheduler
        round-trip per component. Only correct when the caller would have
        charged the components consecutively with no observable action in
        between — see docs/PERFORMANCE.md for the design rule.

        Usage: ``yield from node.charge(rx_cost, mac_cost)``.
        """
        total = 0.0
        for cost in costs:
            total += cost
        if total <= 0:
            return ()
        return self.cpu.use(total)

    def crash(self) -> None:
        """Silently drop all future inbound and outbound traffic."""
        self.crashed = True

    def recover(self) -> None:
        self.crashed = False

    def __repr__(self) -> str:
        return f"Node({self.name!r})"


@dataclass
class _LinkState:
    """Mutable per-direction link condition (fault injection)."""

    cut: bool = False
    loss_probability: float = 0.0
    extra_latency: Optional[LatencyModel] = None


class _StreamRx:
    """Receiver-side in-order delivery state for one (src, dst, stream)."""

    __slots__ = ("next_seq", "buffer")

    def __init__(self):
        self.next_seq = 0
        self.buffer: dict[int, Message] = {}


class _Route:
    """Per-(src, dst, stream) cache of everything the send path touches.

    Built lazily on first use. Holds the endpoint nodes and their NIC
    slot resources, the *shared, mutable* link fault state (``cut``/
    ``heal``/``set_loss`` mutate the same ``_LinkState`` object in
    place, so fault injection remains live), the latency model and the
    per-pair rng, and the FIFO send-sequence counter. One dict lookup
    per message replaces the half-dozen table probes of the naive path;
    ``set_latency`` updates live routes and ``reset_streams`` drops
    them, so nothing observable changes.
    """

    __slots__ = (
        "sender", "receiver", "tx", "rx", "tx_nic", "rx_nic",
        "state", "model", "rng", "pair", "send_seq",
    )


class Network:
    """Connects nodes; owns latency models and link fault state."""

    def __init__(
        self,
        env: Environment,
        rng_tree: Optional[RngTree] = None,
        default_latency: Optional[LatencyModel] = None,
        tracer: Optional[Tracer] = None,
        fifo_delivery: bool = True,
    ):
        self.env = env
        self.rng_tree = rng_tree or RngTree(0)
        self.default_latency = default_latency or ConstantLatency(50e-6)
        self.tracer = tracer or Tracer(enabled=False)
        # In-order delivery per (src, dst) pair, as TCP provides for all
        # client/replica connections in the paper's testbed.
        self.fifo_delivery = fifo_delivery
        self._streams: dict[tuple, _StreamRx] = {}
        self._routes: dict[tuple, _Route] = {}
        self.nodes: dict[str, Node] = {}
        self._latency_overrides: dict[tuple[str, str], LatencyModel] = {}
        self._links: dict[tuple[str, str], _LinkState] = {}
        self._loss_rng = self.rng_tree.derive("network", "loss")
        self._send_filters: list[Any] = []
        self._delivery_taps: list[Any] = []
        self._latency_rngs: dict[tuple[str, str], Any] = {}
        self._msg_ids = itertools.count()
        self.messages_sent = 0
        self.bytes_sent = 0

    # -- topology ----------------------------------------------------------

    def add_node(
        self, name: str, cores: int = 8, nic: Optional[NicConfig] = None
    ) -> Node:
        if name in self.nodes:
            raise ValueError(f"duplicate node name: {name!r}")
        node = Node(self.env, name, cores=cores, nic=nic)
        self.nodes[name] = node
        return node

    def node(self, name: str) -> Node:
        return self.nodes[name]

    def set_latency(self, src: str, dst: str, model: LatencyModel) -> None:
        """Override the one-way latency for the src->dst direction."""
        self._latency_overrides[(src, dst)] = model
        for key, route in self._routes.items():
            if key[0] == src and key[1] == dst:
                route.model = model

    def set_latency_symmetric(self, a: str, b: str, model: LatencyModel) -> None:
        self.set_latency(a, b, model)
        self.set_latency(b, a, model)

    def _link(self, src: str, dst: str) -> _LinkState:
        return self._links.setdefault((src, dst), _LinkState())

    # -- fault injection -----------------------------------------------------

    def cut(self, src: str, dst: str, symmetric: bool = True) -> None:
        """Partition the link (drop everything)."""
        self._link(src, dst).cut = True
        if symmetric:
            self._link(dst, src).cut = True

    def heal(self, src: str, dst: str, symmetric: bool = True) -> None:
        self._link(src, dst).cut = False
        if symmetric:
            self._link(dst, src).cut = False

    def reset_streams(self, node_name: str) -> None:
        """Forget in-order stream state involving ``node_name``.

        Models connections being re-established after a crash/recovery:
        buffered out-of-order packets of the dead connections are
        dropped and sequence tracking starts fresh. (Dropping the route
        resets its send-sequence counter; in-flight messages keep the
        sequence numbers stamped on them at send time, exactly as
        before.)"""
        for table in (self._routes, self._streams):
            for key in [k for k in table if k[0] == node_name or k[1] == node_name]:
                del table[key]

    def set_loss(self, src: str, dst: str, probability: float) -> None:
        if not 0.0 <= probability <= 1.0:
            raise ValueError(f"bad loss probability: {probability}")
        self._link(src, dst).loss_probability = probability

    def add_send_filter(self, fn) -> None:
        """Install ``fn(attempt: SendAttempt) -> None`` on the send path.

        Filters run in registration order on every transfer, after the
        sender-crash check and before link fault state. This is the
        single interception point the fault-injection plane
        (:mod:`repro.faults.injector`) builds on.
        """
        self._send_filters.append(fn)

    def remove_send_filter(self, fn) -> None:
        self._send_filters.remove(fn)

    def add_delivery_tap(self, fn) -> None:
        """Install ``fn(msg: Message) -> None`` on the delivery path.

        Taps run at actual delivery time — after the receiver-crash
        check and after FIFO reordering — so they observe exactly the
        payloads that land in the destination inbox. Unlike send
        filters, taps are read-only: they must not mutate the message.
        The audit ledger (:mod:`repro.obs.audit`) records certified
        receives here.
        """
        self._delivery_taps.append(fn)

    def remove_delivery_tap(self, fn) -> None:
        self._delivery_taps.remove(fn)

    # -- transfer ------------------------------------------------------------

    def _deliver(self, msg: Message, receiver: Node) -> None:
        if receiver.crashed:
            return
        if self.tracer.enabled:
            self.tracer.record(
                self.env.now, "net.deliver", msg.dst,
                f"{msg.src}->{msg.dst} {type(msg.payload).__name__} ({msg.size} B)",
            )
        if self._delivery_taps:
            for fn in tuple(self._delivery_taps):
                fn(msg)
        receiver.inbox.put(msg)

    def _stream_arrived(self, msg: Message, receiver: Node) -> None:
        """In-order (TCP-like) delivery: release the longest in-sequence
        prefix of the (src, dst, stream) connection; buffer anything
        that overtook its predecessors."""
        pair = msg.stream_pair
        if pair is None:
            self._deliver(msg, receiver)
            return
        rx = self._streams.get(pair)
        if rx is None:
            rx = self._streams[pair] = _StreamRx()
        seq = msg.stream_seq
        buffer = rx.buffer
        if seq == rx.next_seq and not buffer:
            # In-sequence arrival with nothing buffered — the common
            # case; skip the buffer insert/pop round-trip.
            rx.next_seq = seq + 1
            self._deliver(msg, receiver)
            return
        buffer[seq] = msg
        next_seq = rx.next_seq
        while next_seq in buffer:
            self._deliver(buffer.pop(next_seq), receiver)
            next_seq += 1
        rx.next_seq = next_seq

    def _route(self, key: tuple) -> _Route:
        """Build (and cache) the route for a (src, dst, stream) key."""
        src, dst, _stream = key
        sender = self.nodes.get(src)
        receiver = self.nodes.get(dst)
        if sender is None or receiver is None:
            raise KeyError(f"unknown endpoint in {src!r}->{dst!r}")
        route = _Route()
        route.sender = sender
        route.receiver = receiver
        route.tx = sender.tx
        route.rx = receiver.rx
        route.tx_nic = sender.nic
        route.rx_nic = receiver.nic
        route.state = self._link(src, dst)
        route.model = self._latency_overrides.get((src, dst), self.default_latency)
        rng = self._latency_rngs.get((src, dst))
        if rng is None:
            rng = self.rng_tree.derive("network", "latency", src, dst)
            self._latency_rngs[(src, dst)] = rng
        route.rng = rng
        route.pair = key
        route.send_seq = 0
        self._routes[key] = route
        return route

    def send(
        self,
        src: str,
        dst: str,
        payload: Any,
        size: Optional[int] = None,
        stream: Optional[str] = None,
    ) -> None:
        """Fire-and-forget transfer of ``payload`` from ``src`` to ``dst``.

        ``size`` defaults to the payload's ``wire_size`` attribute.
        ``stream`` names the TCP connection this message rides on (e.g.
        a client id); in-order delivery is enforced per (src, dst,
        stream). Messages of different streams may overtake each other,
        exactly like independent TCP connections.
        """
        if size is None:
            size = getattr(payload, "wire_size", None)
            if size is None:
                raise ValueError(
                    f"payload {payload!r} has no wire_size; pass size explicitly"
                )
        key = (src, dst, stream)
        route = self._routes.get(key)
        if route is None:
            route = self._route(key)
        if route.sender.crashed:
            return
        extra_delay = 0.0
        if self._send_filters:
            attempt = SendAttempt(src, dst, payload, int(size), stream)
            for fn in tuple(self._send_filters):
                fn(attempt)
                if attempt.drop:
                    self.tracer.record(
                        self.env.now, "net.fault", src,
                        f"->{dst} dropped by filter ({attempt.size} B)",
                    )
                    return
            payload, size = attempt.payload, attempt.size
            extra_delay = attempt.extra_delay
        state = route.state
        if state.cut:
            return
        if state.loss_probability and self._loss_rng.random() < state.loss_probability:
            self.tracer.record(self.env.now, "net.drop", src, f"->{dst} lost ({size} B)")
            return
        self.messages_sent += 1
        self.bytes_sent += size
        if self.fifo_delivery:
            seq = route.send_seq
            route.send_seq = seq + 1
            msg = Message(
                src, dst, payload, int(size), self.env._now,
                next(self._msg_ids), key, seq,
            )
        else:
            msg = Message(
                src, dst, payload, int(size), self.env._now, next(self._msg_ids)
            )
        self._transfer(msg, route, extra_delay)

    def _transfer(self, msg: Message, route: _Route, extra_delay: float = 0.0) -> None:
        """Callback-chained transfer: tx slot -> serialize -> propagate ->
        rx slot -> serialize -> deliver. (Hot path: avoids spawning a
        process per message; NIC slots use the Resource direct-handoff
        path so one scheduled event covers admission + serialization, and
        releases inline the no-waiter case.)"""
        env = self.env
        tx = route.tx
        rx = route.rx

        def on_tx_done(_event) -> None:
            if tx._waiters:
                tx.release()
            else:
                tx._in_use -= 1
            # Latency composed exactly as the classic path: base model
            # sample, then the link's extra latency (if any) from the
            # same per-pair rng, then any filter-added delay.
            delay = route.model.sample(route.rng)
            extra = route.state.extra_latency
            if extra is not None:
                delay += extra.sample(route.rng)
            arrival = Timeout(env, delay + extra_delay)
            arrival.callbacks.append(on_arrival)

        def on_arrival(_event) -> None:
            # Crashed receivers still consume stream sequence numbers
            # (the final _deliver drops the payload); otherwise in-order
            # streams would wedge forever across a crash.
            rx.request_hold(msg.size / route.rx_nic.bandwidth).callbacks.append(
                on_rx_done
            )

        def on_rx_done(_event) -> None:
            if rx._waiters:
                rx.release()
            else:
                rx._in_use -= 1
            if self.fifo_delivery:
                # TCP semantics: each (src,dst,stream) connection
                # delivers in send order. A packet that overtook its
                # predecessors waits in the reorder buffer
                # (head-of-line blocking).
                self._stream_arrived(msg, route.receiver)
                return
            self._deliver(msg, route.receiver)

        tx.request_hold(msg.size / route.tx_nic.bandwidth).callbacks.append(on_tx_done)
