"""Simulated network: nodes, NICs with finite bandwidth, latency models.

The model mirrors the paper's testbed: machines with several 1 Gbps NICs
on a LAN, plus experiments where the *client* links get an extra
100 ± 20 ms normally-distributed delay (Section VI-A).

A transfer occupies a transmit slot on the sender for the serialization
time (``bytes / per_nic_bandwidth``), crosses the link after a sampled
propagation delay, occupies a receive slot on the destination for the
same serialization time, and finally lands in the destination's inbox.

Fault injection: links can be cut (partitions) or lossy, and whole nodes
can be crashed (silently dropping all traffic), which is how replica and
Troxy failures are staged in the tests.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Optional

from .engine import Environment
from .resources import Resource, Store
from .rng import RngTree
from .trace import Tracer

GBPS = 1e9 / 8  # bytes per second in one gigabit per second


class LatencyModel:
    """Samples one-way propagation delays in seconds."""

    def sample(self, rng) -> float:
        raise NotImplementedError


class ConstantLatency(LatencyModel):
    """Fixed one-way delay (our LAN default: 50 us)."""

    def __init__(self, delay: float):
        if delay < 0:
            raise ValueError(f"negative latency: {delay}")
        self.delay = delay

    def sample(self, rng) -> float:
        return self.delay

    def __repr__(self) -> str:
        return f"ConstantLatency({self.delay})"


class UniformLatency(LatencyModel):
    """Uniformly distributed delay in [low, high]."""

    def __init__(self, low: float, high: float):
        if not 0 <= low <= high:
            raise ValueError(f"bad uniform bounds: [{low}, {high}]")
        self.low = low
        self.high = high

    def sample(self, rng) -> float:
        return rng.uniform(self.low, self.high)

    def __repr__(self) -> str:
        return f"UniformLatency({self.low}, {self.high})"


class NormalLatency(LatencyModel):
    """Normally distributed delay, clamped below at ``floor``.

    The paper's WAN experiments add 100 +/- 20 ms (normal distribution)
    to the client NICs; ``NormalLatency(0.100, 0.020)`` reproduces that.
    """

    def __init__(self, mean: float, stddev: float, floor: float = 1e-6):
        if mean < 0 or stddev < 0:
            raise ValueError(f"bad normal parameters: mean={mean} stddev={stddev}")
        self.mean = mean
        self.stddev = stddev
        self.floor = floor

    def sample(self, rng) -> float:
        return max(self.floor, rng.gauss(self.mean, self.stddev))

    def __repr__(self) -> str:
        return f"NormalLatency({self.mean}, {self.stddev})"


@dataclass(frozen=True)
class Message:
    """Envelope delivered to a node's inbox."""

    src: str
    dst: str
    payload: Any
    size: int
    sent_at: float
    msg_id: int


@dataclass
class SendAttempt:
    """Mutable draft of one transfer, offered to registered send filters.

    A filter (the fault plane, a test tap, ...) may observe the draft,
    replace the payload (tampering/corruption), set ``drop`` to swallow
    the message, or add ``extra_delay`` seconds of propagation time.
    Source, destination, and stream identity are fixed: the simulated
    adversary sits *on the wire*, it cannot re-address traffic.
    """

    src: str
    dst: str
    payload: Any
    size: int
    stream: Optional[str]
    drop: bool = False
    extra_delay: float = 0.0


@dataclass
class NicConfig:
    """Network interface capacity of one node."""

    count: int = 4
    bandwidth: float = GBPS  # bytes/second per NIC

    def serialization_delay(self, size: int) -> float:
        return size / self.bandwidth


class Node:
    """A machine in the simulated cluster."""

    def __init__(
        self,
        env: Environment,
        name: str,
        cores: int = 8,
        nic: Optional[NicConfig] = None,
    ):
        self.env = env
        self.name = name
        self.nic = nic or NicConfig()
        self.inbox: Store = Store(env)
        self.cpu = Resource(env, capacity=cores)
        self.tx = Resource(env, capacity=self.nic.count)
        self.rx = Resource(env, capacity=self.nic.count)
        self.crashed = False

    def compute(self, seconds: float):
        """Process generator: occupy one core for ``seconds``.

        Zero-cost work skips the scheduler entirely.
        """
        if seconds <= 0:
            return
            yield  # pragma: no cover - makes this a generator
        yield from self.cpu.use(seconds)

    def crash(self) -> None:
        """Silently drop all future inbound and outbound traffic."""
        self.crashed = True

    def recover(self) -> None:
        self.crashed = False

    def __repr__(self) -> str:
        return f"Node({self.name!r})"


@dataclass
class _LinkState:
    """Mutable per-direction link condition (fault injection)."""

    cut: bool = False
    loss_probability: float = 0.0
    extra_latency: Optional[LatencyModel] = None


class Network:
    """Connects nodes; owns latency models and link fault state."""

    def __init__(
        self,
        env: Environment,
        rng_tree: Optional[RngTree] = None,
        default_latency: Optional[LatencyModel] = None,
        tracer: Optional[Tracer] = None,
        fifo_delivery: bool = True,
    ):
        self.env = env
        self.rng_tree = rng_tree or RngTree(0)
        self.default_latency = default_latency or ConstantLatency(50e-6)
        self.tracer = tracer or Tracer(enabled=False)
        # In-order delivery per (src, dst) pair, as TCP provides for all
        # client/replica connections in the paper's testbed.
        self.fifo_delivery = fifo_delivery
        self._stream_send_seq: dict[tuple, int] = {}
        self._stream_next: dict[tuple, int] = {}
        self._stream_buffer: dict[tuple, dict[int, Message]] = {}
        self._stream_seq_of: dict[int, tuple] = {}
        self.nodes: dict[str, Node] = {}
        self._latency_overrides: dict[tuple[str, str], LatencyModel] = {}
        self._links: dict[tuple[str, str], _LinkState] = {}
        self._loss_rng = self.rng_tree.derive("network", "loss")
        self._send_filters: list[Any] = []
        self._latency_rngs: dict[tuple[str, str], Any] = {}
        self._msg_ids = itertools.count()
        self.messages_sent = 0
        self.bytes_sent = 0

    # -- topology ----------------------------------------------------------

    def add_node(
        self, name: str, cores: int = 8, nic: Optional[NicConfig] = None
    ) -> Node:
        if name in self.nodes:
            raise ValueError(f"duplicate node name: {name!r}")
        node = Node(self.env, name, cores=cores, nic=nic)
        self.nodes[name] = node
        return node

    def node(self, name: str) -> Node:
        return self.nodes[name]

    def set_latency(self, src: str, dst: str, model: LatencyModel) -> None:
        """Override the one-way latency for the src->dst direction."""
        self._latency_overrides[(src, dst)] = model

    def set_latency_symmetric(self, a: str, b: str, model: LatencyModel) -> None:
        self.set_latency(a, b, model)
        self.set_latency(b, a, model)

    def _link(self, src: str, dst: str) -> _LinkState:
        return self._links.setdefault((src, dst), _LinkState())

    # -- fault injection -----------------------------------------------------

    def cut(self, src: str, dst: str, symmetric: bool = True) -> None:
        """Partition the link (drop everything)."""
        self._link(src, dst).cut = True
        if symmetric:
            self._link(dst, src).cut = True

    def heal(self, src: str, dst: str, symmetric: bool = True) -> None:
        self._link(src, dst).cut = False
        if symmetric:
            self._link(dst, src).cut = False

    def reset_streams(self, node_name: str) -> None:
        """Forget in-order stream state involving ``node_name``.

        Models connections being re-established after a crash/recovery:
        buffered out-of-order packets of the dead connections are
        dropped and sequence tracking starts fresh."""
        for table in (self._stream_send_seq, self._stream_next, self._stream_buffer):
            for key in [k for k in table if k[0] == node_name or k[1] == node_name]:
                del table[key]

    def set_loss(self, src: str, dst: str, probability: float) -> None:
        if not 0.0 <= probability <= 1.0:
            raise ValueError(f"bad loss probability: {probability}")
        self._link(src, dst).loss_probability = probability

    def add_send_filter(self, fn) -> None:
        """Install ``fn(attempt: SendAttempt) -> None`` on the send path.

        Filters run in registration order on every transfer, after the
        sender-crash check and before link fault state. This is the
        single interception point the fault-injection plane
        (:mod:`repro.faults.injector`) builds on.
        """
        self._send_filters.append(fn)

    def remove_send_filter(self, fn) -> None:
        self._send_filters.remove(fn)

    # -- transfer ------------------------------------------------------------

    def _deliver(self, msg: Message, receiver: Node) -> None:
        if receiver.crashed:
            return
        self.tracer.record(
            self.env.now, "net.deliver", msg.dst,
            f"{msg.src}->{msg.dst} {type(msg.payload).__name__} ({msg.size} B)",
        )
        receiver.inbox.put(msg)

    def _stream_arrived(self, msg: Message, receiver: Node) -> None:
        """In-order (TCP-like) delivery: release the longest in-sequence
        prefix of the (src, dst) stream; buffer anything that overtook
        its predecessors."""
        entry = self._stream_seq_of.pop(msg.msg_id, None)
        if entry is None:
            self._deliver(msg, receiver)
            return
        pair, seq = entry
        buffer = self._stream_buffer.setdefault(pair, {})
        buffer[seq] = msg
        next_seq = self._stream_next.get(pair, 0)
        while next_seq in buffer:
            self._deliver(buffer.pop(next_seq), receiver)
            next_seq += 1
        self._stream_next[pair] = next_seq

    def _latency_for(self, src: str, dst: str) -> float:
        model = self._latency_overrides.get((src, dst), self.default_latency)
        key = (src, dst)
        rng = self._latency_rngs.get(key)
        if rng is None:
            rng = self.rng_tree.derive("network", "latency", src, dst)
            self._latency_rngs[key] = rng
        delay = model.sample(rng)
        state = self._links.get(key)
        if state is not None and state.extra_latency is not None:
            delay += state.extra_latency.sample(rng)
        return delay

    def send(
        self,
        src: str,
        dst: str,
        payload: Any,
        size: Optional[int] = None,
        stream: Optional[str] = None,
    ) -> None:
        """Fire-and-forget transfer of ``payload`` from ``src`` to ``dst``.

        ``size`` defaults to the payload's ``wire_size`` attribute.
        ``stream`` names the TCP connection this message rides on (e.g.
        a client id); in-order delivery is enforced per (src, dst,
        stream). Messages of different streams may overtake each other,
        exactly like independent TCP connections.
        """
        if size is None:
            size = getattr(payload, "wire_size", None)
            if size is None:
                raise ValueError(
                    f"payload {payload!r} has no wire_size; pass size explicitly"
                )
        if src not in self.nodes or dst not in self.nodes:
            raise KeyError(f"unknown endpoint in {src!r}->{dst!r}")
        sender = self.nodes[src]
        receiver = self.nodes[dst]
        if sender.crashed:
            return
        extra_delay = 0.0
        if self._send_filters:
            attempt = SendAttempt(src, dst, payload, int(size), stream)
            for fn in tuple(self._send_filters):
                fn(attempt)
                if attempt.drop:
                    self.tracer.record(
                        self.env.now, "net.fault", src,
                        f"->{dst} dropped by filter ({attempt.size} B)",
                    )
                    return
            payload, size = attempt.payload, attempt.size
            extra_delay = attempt.extra_delay
        state = self._links.get((src, dst))
        if state is not None:
            if state.cut:
                return
            if state.loss_probability and self._loss_rng.random() < state.loss_probability:
                self.tracer.record(self.env.now, "net.drop", src, f"->{dst} lost ({size} B)")
                return
        self.messages_sent += 1
        self.bytes_sent += size
        msg = Message(
            src=src,
            dst=dst,
            payload=payload,
            size=int(size),
            sent_at=self.env.now,
            msg_id=next(self._msg_ids),
        )
        if self.fifo_delivery:
            pair = (src, dst, stream)
            seq = self._stream_send_seq.get(pair, 0)
            self._stream_send_seq[pair] = seq + 1
            self._stream_seq_of[msg.msg_id] = (pair, seq)
        self._transfer(msg, sender, receiver, extra_delay=extra_delay)

    def _transfer(
        self, msg: Message, sender: Node, receiver: Node, extra_delay: float = 0.0
    ) -> None:
        """Callback-chained transfer: tx slot -> serialize -> propagate ->
        rx slot -> serialize -> deliver. (Hot path: avoids spawning a
        process per message.)"""
        env = self.env

        def on_tx_granted(_event=None) -> None:
            done = env.timeout(sender.nic.serialization_delay(msg.size))
            done.callbacks.append(on_tx_done)

        def on_tx_done(_event) -> None:
            sender.tx.release()
            arrival = env.timeout(self._latency_for(msg.src, msg.dst) + extra_delay)
            arrival.callbacks.append(on_arrival)

        def on_arrival(_event) -> None:
            # Crashed receivers still consume stream sequence numbers
            # (the final _deliver drops the payload); otherwise in-order
            # streams would wedge forever across a crash.
            if receiver.rx.try_acquire():
                on_rx_granted()
            else:
                receiver.rx.request().callbacks.append(on_rx_granted)

        def on_rx_granted(_event=None) -> None:
            done = env.timeout(receiver.nic.serialization_delay(msg.size))
            done.callbacks.append(on_rx_done)

        def on_rx_done(_event) -> None:
            receiver.rx.release()
            if self.fifo_delivery:
                # TCP semantics: each (src,dst) stream delivers in send
                # order. A packet that overtook its predecessors waits in
                # the reorder buffer (head-of-line blocking).
                self._stream_arrived(msg, receiver)
                return
            self._deliver(msg, receiver)

        if sender.tx.try_acquire():
            on_tx_granted()
        else:
            sender.tx.request().callbacks.append(on_tx_granted)
