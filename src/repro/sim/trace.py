"""Structured event tracing.

A :class:`Tracer` collects (time, category, node, detail) records. It is
cheap when disabled, filterable when enabled, and is what the Fig. 5
message-flow benchmark uses to count protocol phases.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Optional


@dataclass(frozen=True)
class TraceRecord:
    """One traced occurrence."""

    time: float
    category: str
    node: str
    detail: str
    data: Any = None

    def __str__(self) -> str:
        return f"[{self.time * 1000:10.3f} ms] {self.category:<12} {self.node:<14} {self.detail}"


class Tracer:
    """Collects trace records; disabled tracers drop everything."""

    def __init__(self, enabled: bool = False, categories: Optional[set[str]] = None):
        self.enabled = enabled
        self.categories = categories
        self.records: list[TraceRecord] = []

    def record(
        self, time: float, category: str, node: str, detail: str, data: Any = None
    ) -> None:
        if not self.enabled:
            return
        if self.categories is not None and category not in self.categories:
            return
        self.records.append(TraceRecord(time, category, node, detail, data))

    def filter(
        self, category: Optional[str] = None, node: Optional[str] = None
    ) -> list[TraceRecord]:
        """Records matching the given category and/or node."""
        return [
            r
            for r in self.records
            if (category is None or r.category == category)
            and (node is None or r.node == node)
        ]

    def clear(self) -> None:
        self.records.clear()

    def dump(self, records: Optional[Iterable[TraceRecord]] = None) -> str:
        """Human-readable rendering of the (filtered) trace."""
        return "\n".join(str(r) for r in (records if records is not None else self.records))
