"""Structured event tracing.

A :class:`Tracer` collects (time, category, node, detail) records. It is
cheap when disabled, filterable when enabled, and is what the Fig. 5
message-flow benchmark uses to count protocol phases.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Iterable, Optional


@dataclass(frozen=True)
class TraceRecord:
    """One traced occurrence."""

    time: float
    category: str
    node: str
    detail: str
    data: Any = None

    def __str__(self) -> str:
        return f"[{self.time * 1000:10.3f} ms] {self.category:<12} {self.node:<14} {self.detail}"


class Tracer:
    """Collects trace records; disabled tracers drop everything.

    With ``max_records`` set the tracer becomes a ring buffer: once full,
    each new record evicts the oldest one and ``dropped`` counts the
    evictions, so a long soak run keeps the trace tail at bounded memory
    instead of growing without limit.
    """

    def __init__(
        self,
        enabled: bool = False,
        categories: Optional[set[str]] = None,
        max_records: Optional[int] = None,
    ):
        if max_records is not None and max_records < 1:
            raise ValueError(f"max_records must be >= 1: {max_records}")
        self.enabled = enabled
        self.categories = categories
        self.max_records = max_records
        self.dropped = 0
        # A plain list when unbounded keeps equality with list literals
        # working for callers; deque(maxlen=...) only when capped.
        self.records: "list[TraceRecord] | deque[TraceRecord]" = (
            [] if max_records is None else deque(maxlen=max_records)
        )

    def record(
        self, time: float, category: str, node: str, detail: str, data: Any = None
    ) -> None:
        if not self.enabled:
            return
        if self.categories is not None and category not in self.categories:
            return
        if self.max_records is not None and len(self.records) >= self.max_records:
            self.dropped += 1
        self.records.append(TraceRecord(time, category, node, detail, data))

    def filter(
        self, category: Optional[str] = None, node: Optional[str] = None
    ) -> list[TraceRecord]:
        """Records matching the given category and/or node."""
        return [
            r
            for r in self.records
            if (category is None or r.category == category)
            and (node is None or r.node == node)
        ]

    def clear(self) -> None:
        self.records.clear()

    def dump(self, records: Optional[Iterable[TraceRecord]] = None) -> str:
        """Human-readable rendering of the (filtered) trace."""
        return "\n".join(str(r) for r in (records if records is not None else self.records))
