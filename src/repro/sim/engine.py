"""Deterministic discrete-event simulation engine.

This is the substrate every other subsystem runs on. It is a small,
self-contained cousin of SimPy: an :class:`Environment` owns a priority
queue of timestamped events, and *processes* are Python generators that
``yield`` events to suspend until those events fire.

Event lifecycle follows SimPy's two-stage model:

* *triggered* — the event has a value (or exception) and sits in the
  schedule; ``succeed()``/``fail()`` or construction (for ``Timeout``)
  put it there.
* *processed* — the scheduler popped it and ran its callbacks. A process
  yielding an already-processed event resumes on the next scheduler step.

Determinism guarantees
----------------------
Events scheduled for the same simulated time are processed in schedule
order (a monotonically increasing tiebreaker is part of the heap key), so
two runs with the same seeds produce byte-identical traces. Nothing in the
engine consults wall-clock time or global randomness.

Hot-path design (see docs/PERFORMANCE.md)
-----------------------------------------
The scheduler is the single hottest code in the repository: a saturated
Fig. 6 cell pushes and pops hundreds of thousands of heap entries per
simulated second. Three rules keep it fast without changing semantics:

* ``run()`` inlines the event-pop loop instead of calling :meth:`step`
  per event (attribute loads and method dispatch dominate otherwise).
* Internal wake-ups (already-processed targets, process initialization,
  pre-processed condition children) use lightweight ``__slots__`` relay
  objects instead of full :class:`Event` instances. A relay occupies
  exactly the heap slot the old bridge event did — same schedule counter,
  same priority — so event ordering (and therefore every simulated
  result) is bit-for-bit unchanged.
* ``Timeout`` writes its fields directly instead of chaining through
  ``Event.__init__`` (roughly half of all scheduled events are timeouts).

Example
-------
>>> env = Environment()
>>> def hello(env, log):
...     yield env.timeout(3.0)
...     log.append(env.now)
>>> log = []
>>> _ = env.process(hello(env, log))
>>> env.run()
>>> log
[3.0]
"""

from __future__ import annotations

import gc as _gc
from heapq import heappop, heappush
from typing import Any, Callable, Generator, Iterable, Optional


class SimulationError(Exception):
    """Base class for errors raised by the simulation engine."""


class Interrupt(SimulationError):
    """Raised inside a process that another process interrupted.

    The ``cause`` attribute carries the value passed to
    :meth:`Process.interrupt`.
    """

    def __init__(self, cause: Any = None):
        super().__init__(f"process interrupted: {cause!r}")
        self.cause = cause


class Event:
    """A condition that will fire at some simulated time.

    Processes wait on events by yielding them. An event may succeed with a
    value or fail with an exception; either way it triggers exactly once.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_triggered", "_defused")

    def __init__(self, env: "Environment"):
        self.env = env
        # None once processed; a list while callbacks may still be added.
        self.callbacks: Optional[list[Callable[["Event"], None]]] = []
        self._value: Any = None
        self._ok: bool = True
        self._triggered = False
        self._defused = False

    @property
    def triggered(self) -> bool:
        """Whether the event has a value and is (or was) scheduled."""
        return self._triggered

    @property
    def processed(self) -> bool:
        """Whether the scheduler already ran this event's callbacks."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """Whether the event succeeded; only meaningful once triggered."""
        return self._ok

    @property
    def value(self) -> Any:
        if not self._triggered:
            raise SimulationError("event value read before trigger")
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._triggered:
            raise SimulationError("event already triggered")
        self._triggered = True
        self._ok = True
        self._value = value
        self.env._schedule(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception.

        Any process waiting on the event will have the exception thrown
        into it at its yield point.
        """
        if self._triggered:
            raise SimulationError("event already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._triggered = True
        self._ok = False
        self._value = exception
        self.env._schedule(self)
        return self

    def defused(self) -> "Event":
        """Mark a failed event as handled so the scheduler won't re-raise."""
        self._defused = True
        return self


class Timeout(Event):
    """An event that fires after a fixed simulated delay."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay}")
        # Flattened Event.__init__ + succeed(): timeouts are born
        # triggered, and they are the single most allocated event type.
        self.env = env
        self.callbacks = []
        self._value = value
        self._ok = True
        self._triggered = True
        self._defused = False
        self.delay = delay
        env._counter = counter = env._counter + 1
        heappush(env._queue, (env._now + delay, 1, counter, self))


class _Relay:
    """Allocation-light heap entry that re-delivers a finished result.

    Used where the engine used to allocate a bridge :class:`Event`: a
    process (or condition) waiting on an *already-processed* target must
    resume on the next scheduler step, in schedule order. A relay carries
    just the four fields the scheduler loop touches and occupies exactly
    the heap slot the bridge event occupied, so ordering is unchanged.
    """

    __slots__ = ("callbacks", "_value", "_ok", "_defused")

    def __init__(self, ok: bool, value: Any):
        self.callbacks: Optional[list] = []
        self._value = value
        self._ok = ok
        self._defused = True


class _Initialize(Event):
    """Internal event used to start a new process at the current time."""

    __slots__ = ()

    def __init__(self, env: "Environment", process: "Process"):
        self.env = env
        self.callbacks = [process._resume]
        self._value = None
        self._ok = True
        self._triggered = True
        self._defused = False
        env._counter = counter = env._counter + 1
        heappush(env._queue, (env._now, 1, counter, self))


class _Interruption(Event):
    """Internal failed event delivering an Interrupt into a process."""

    __slots__ = ()

    def __init__(self, process: "Process", cause: Any):
        super().__init__(process.env)
        self._triggered = True
        self._ok = False
        self._value = Interrupt(cause)
        self._defused = True
        # Detach the process from whatever it is waiting on right now so a
        # later trigger of that event cannot resume the process twice.
        target = process._target
        if target is not None and target.callbacks is not None:
            try:
                target.callbacks.remove(process._resume)
            except ValueError:
                pass
        process._target = None
        self.callbacks.append(process._resume)
        process.env._schedule(self, priority_boost=True)


class Process(Event):
    """A running generator; also an event that fires when it returns.

    The process's return value (via ``return x`` in the generator) becomes
    the event value other processes see when waiting on it.
    """

    __slots__ = ("_generator", "_target", "name")

    def __init__(self, env: "Environment", generator: Generator, name: str = ""):
        # Flattened Event.__init__: one process is spawned per handled
        # message, making this one of the hottest constructors.
        self.env = env
        self.callbacks: Optional[list] = []
        self._value: Any = None
        self._ok = True
        self._triggered = False
        self._defused = False
        self._generator = generator
        self._target: Optional[Event] = None
        self.name = name or getattr(generator, "__name__", "process")
        _Initialize(env, self)

    @property
    def is_alive(self) -> bool:
        return not self._triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at its yield point."""
        if self._triggered:
            return
        if self.env.active_process is self:
            raise SimulationError("a process cannot interrupt itself")
        _Interruption(self, cause)

    def _resume(self, event: Event) -> None:
        if self._triggered:
            return
        # Detach from the event we were waiting on (interrupt case).
        target = self._target
        if target is not None and target is not event:
            if target.callbacks is not None:
                try:
                    target.callbacks.remove(self._resume)
                except ValueError:
                    pass
        self._target = None
        env = self.env
        env._active_process = self
        generator = self._generator
        try:
            if event._ok:
                next_target = generator.send(event._value)
            else:
                event._defused = True
                next_target = generator.throw(event._value)
        except StopIteration as stop:
            env._active_process = None
            self._triggered = True
            self._ok = True
            self._value = stop.value
            env._counter = counter = env._counter + 1
            heappush(env._queue, (env._now, 1, counter, self))
            return
        except BaseException as exc:
            env._active_process = None
            self._triggered = True
            self._ok = False
            self._value = exc
            env._counter = counter = env._counter + 1
            heappush(env._queue, (env._now, 1, counter, self))
            return
        env._active_process = None
        callbacks = getattr(next_target, "callbacks", False)
        if callbacks is False:
            raise SimulationError(
                f"process {self.name!r} yielded {next_target!r}, expected an Event"
            )
        if callbacks is None:
            # Already processed: resume on the next scheduler step. The
            # relay becomes our wait target so an interrupt arriving
            # before it fires detaches us from it (and cannot leave a
            # stale resume behind).
            relay = _Relay(next_target._ok, next_target._value)
            relay.callbacks.append(self._resume)
            self._target = relay  # type: ignore[assignment]
            env._counter = counter = env._counter + 1
            heappush(env._queue, (env._now, 1, counter, relay))
        else:
            self._target = next_target
            callbacks.append(self._resume)


class Condition(Event):
    """Base for AllOf / AnyOf composite wait conditions."""

    __slots__ = ("events",)

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env)
        self.events = list(events)
        if not self.events:
            self.succeed({})
            return
        for event in self.events:
            if event.callbacks is None:
                # Already processed: deliver on the next scheduler step so
                # ordering stays deterministic.
                relay = _Relay(event._ok, event._value)
                relay.callbacks.append(
                    lambda _r, e=event: self._on_child(e)
                )
                env._counter = counter = env._counter + 1
                heappush(env._queue, (env._now, 1, counter, relay))
            else:
                event.callbacks.append(self._on_child)

    def _collect(self) -> dict:
        return {
            i: event._value
            for i, event in enumerate(self.events)
            if event.processed and event._ok
        }

    def _on_child(self, event: Event) -> None:
        raise NotImplementedError


class AllOf(Condition):
    """Fires when every child event has fired; value maps index -> value."""

    __slots__ = ()

    def _on_child(self, event: Event) -> None:
        if self._triggered:
            return
        if not event._ok:
            event._defused = True
            self.fail(event._value)
            return
        if all(e.processed for e in self.events):
            self.succeed(self._collect())


class AnyOf(Condition):
    """Fires as soon as one child event fires; value maps index -> value."""

    __slots__ = ()

    def _on_child(self, event: Event) -> None:
        if self._triggered:
            return
        if event._ok:
            self.succeed(self._collect())
        else:
            event._defused = True
            self.fail(event._value)


class Environment:
    """The simulation clock and scheduler."""

    # The engine and resource internals read/write these fields millions
    # of times per simulated second; __slots__ turns every one of those
    # instance-dict probes into a fixed-offset load.
    __slots__ = ("_now", "_queue", "_counter", "_steps", "_active_process")

    def __init__(self, initial_time: float = 0.0):
        self._now = float(initial_time)
        self._queue: list[tuple[float, int, int, Event]] = []
        self._counter = 0
        self._steps = 0
        self._active_process: Optional[Process] = None

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def steps(self) -> int:
        """Scheduler steps processed so far (observability counter)."""
        return self._steps

    @property
    def scheduled_events(self) -> int:
        """Events ever pushed onto the schedule (observability counter)."""
        return self._counter

    @property
    def active_process(self) -> Optional[Process]:
        return self._active_process

    # -- scheduling ------------------------------------------------------

    def _schedule(
        self, event: Event, delay: float = 0.0, priority_boost: bool = False
    ) -> None:
        self._counter += 1
        priority = 0 if priority_boost else 1
        heappush(self._queue, (self._now + delay, priority, self._counter, event))

    # -- event factories --------------------------------------------------

    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def process(self, generator: Generator, name: str = "") -> Process:
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    # -- execution ---------------------------------------------------------

    def step(self) -> None:
        """Process the next scheduled event."""
        if not self._queue:
            raise SimulationError("step() on an empty schedule")
        time, _priority, _tick, event = heappop(self._queue)
        if time < self._now:
            raise SimulationError("scheduler time went backwards")
        self._now = time
        self._steps += 1
        if event.callbacks is None:
            return
        callbacks, event.callbacks = event.callbacks, None
        for callback in callbacks:
            callback(event)
        if not event._ok and not event._defused:
            raise event._value

    def peek(self) -> float:
        """Time of the next scheduled event, or +inf when idle."""
        return self._queue[0][0] if self._queue else float("inf")

    def run(self, until: Optional[float] = None) -> None:
        """Run until the schedule drains or simulated time reaches ``until``.

        This is :meth:`step` inlined into a tight loop — the hottest few
        lines of the whole repository; keep it allocation-free.
        """
        if until is not None and until < self._now:
            raise ValueError(f"until={until} is in the past (now={self._now})")
        queue = self._queue
        pop = heappop
        steps = self._steps
        # Processed events drop their callback lists, which breaks the
        # reference cycles events/processes form — the refcounter reclaims
        # everything and the cycle collector finds no garbage. Pausing it
        # for the duration of the run avoids periodic full-heap scans in
        # the middle of the hot loop.
        gc_was_enabled = _gc.isenabled()
        if gc_was_enabled:
            _gc.disable()
        try:
            if until is None:
                while queue:
                    time, _priority, _tick, event = pop(queue)
                    if time < self._now:
                        raise SimulationError("scheduler time went backwards")
                    self._now = time
                    steps += 1
                    callbacks = event.callbacks
                    if callbacks is None:
                        continue
                    event.callbacks = None
                    for callback in callbacks:
                        callback(event)
                    if not event._ok and not event._defused:
                        raise event._value
            else:
                while queue:
                    time = queue[0][0]
                    if time > until:
                        self._now = until
                        return
                    time, _priority, _tick, event = pop(queue)
                    if time < self._now:
                        raise SimulationError("scheduler time went backwards")
                    self._now = time
                    steps += 1
                    callbacks = event.callbacks
                    if callbacks is None:
                        continue
                    event.callbacks = None
                    for callback in callbacks:
                        callback(event)
                    if not event._ok and not event._defused:
                        raise event._value
        finally:
            self._steps = steps
            if gc_was_enabled:
                _gc.enable()
        if until is not None:
            self._now = until
