"""Deterministic discrete-event simulation engine.

This is the substrate every other subsystem runs on. It is a small,
self-contained cousin of SimPy: an :class:`Environment` owns a priority
queue of timestamped events, and *processes* are Python generators that
``yield`` events to suspend until those events fire.

Event lifecycle follows SimPy's two-stage model:

* *triggered* — the event has a value (or exception) and sits in the
  schedule; ``succeed()``/``fail()`` or construction (for ``Timeout``)
  put it there.
* *processed* — the scheduler popped it and ran its callbacks. A process
  yielding an already-processed event resumes on the next scheduler step.

Determinism guarantees
----------------------
Events scheduled for the same simulated time are processed in schedule
order (a monotonically increasing tiebreaker is part of the heap key), so
two runs with the same seeds produce byte-identical traces. Nothing in the
engine consults wall-clock time or global randomness.

Example
-------
>>> env = Environment()
>>> def hello(env, log):
...     yield env.timeout(3.0)
...     log.append(env.now)
>>> log = []
>>> _ = env.process(hello(env, log))
>>> env.run()
>>> log
[3.0]
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, Optional


class SimulationError(Exception):
    """Base class for errors raised by the simulation engine."""


class Interrupt(SimulationError):
    """Raised inside a process that another process interrupted.

    The ``cause`` attribute carries the value passed to
    :meth:`Process.interrupt`.
    """

    def __init__(self, cause: Any = None):
        super().__init__(f"process interrupted: {cause!r}")
        self.cause = cause


class Event:
    """A condition that will fire at some simulated time.

    Processes wait on events by yielding them. An event may succeed with a
    value or fail with an exception; either way it triggers exactly once.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_triggered", "_defused")

    def __init__(self, env: "Environment"):
        self.env = env
        # None once processed; a list while callbacks may still be added.
        self.callbacks: Optional[list[Callable[["Event"], None]]] = []
        self._value: Any = None
        self._ok: bool = True
        self._triggered = False
        self._defused = False

    @property
    def triggered(self) -> bool:
        """Whether the event has a value and is (or was) scheduled."""
        return self._triggered

    @property
    def processed(self) -> bool:
        """Whether the scheduler already ran this event's callbacks."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """Whether the event succeeded; only meaningful once triggered."""
        return self._ok

    @property
    def value(self) -> Any:
        if not self._triggered:
            raise SimulationError("event value read before trigger")
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._triggered:
            raise SimulationError("event already triggered")
        self._triggered = True
        self._ok = True
        self._value = value
        self.env._schedule(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception.

        Any process waiting on the event will have the exception thrown
        into it at its yield point.
        """
        if self._triggered:
            raise SimulationError("event already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._triggered = True
        self._ok = False
        self._value = exception
        self.env._schedule(self)
        return self

    def defused(self) -> "Event":
        """Mark a failed event as handled so the scheduler won't re-raise."""
        self._defused = True
        return self


class Timeout(Event):
    """An event that fires after a fixed simulated delay."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay}")
        super().__init__(env)
        self.delay = delay
        self._triggered = True
        self._ok = True
        self._value = value
        env._schedule(self, delay=delay)


class _Initialize(Event):
    """Internal event used to start a new process at the current time."""

    __slots__ = ()

    def __init__(self, env: "Environment", process: "Process"):
        super().__init__(env)
        self._triggered = True
        self._ok = True
        self.callbacks.append(process._resume)
        env._schedule(self)


class _Interruption(Event):
    """Internal failed event delivering an Interrupt into a process."""

    __slots__ = ()

    def __init__(self, process: "Process", cause: Any):
        super().__init__(process.env)
        self._triggered = True
        self._ok = False
        self._value = Interrupt(cause)
        self._defused = True
        # Detach the process from whatever it is waiting on right now so a
        # later trigger of that event cannot resume the process twice.
        target = process._target
        if target is not None and target.callbacks is not None:
            try:
                target.callbacks.remove(process._resume)
            except ValueError:
                pass
        process._target = None
        self.callbacks.append(process._resume)
        process.env._schedule(self, priority_boost=True)


class Process(Event):
    """A running generator; also an event that fires when it returns.

    The process's return value (via ``return x`` in the generator) becomes
    the event value other processes see when waiting on it.
    """

    __slots__ = ("_generator", "_target", "name")

    def __init__(self, env: "Environment", generator: Generator, name: str = ""):
        super().__init__(env)
        self._generator = generator
        self._target: Optional[Event] = None
        self.name = name or getattr(generator, "__name__", "process")
        _Initialize(env, self)

    @property
    def is_alive(self) -> bool:
        return not self._triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at its yield point."""
        if self._triggered:
            return
        if self.env.active_process is self:
            raise SimulationError("a process cannot interrupt itself")
        _Interruption(self, cause)

    def _resume(self, event: Event) -> None:
        if self._triggered:
            return
        # Detach from the event we were waiting on (interrupt case).
        if self._target is not None and self._target is not event:
            if self._target.callbacks is not None:
                try:
                    self._target.callbacks.remove(self._resume)
                except ValueError:
                    pass
        self._target = None
        self.env._active_process = self
        try:
            if event._ok:
                next_target = self._generator.send(event._value)
            else:
                event._defused = True
                next_target = self._generator.throw(event._value)
        except StopIteration as stop:
            self.env._active_process = None
            self._triggered = True
            self._ok = True
            self._value = stop.value
            self.env._schedule(self)
            return
        except BaseException as exc:
            self.env._active_process = None
            self._triggered = True
            self._ok = False
            self._value = exc
            self.env._schedule(self)
            return
        self.env._active_process = None
        if not isinstance(next_target, Event):
            raise SimulationError(
                f"process {self.name!r} yielded {next_target!r}, expected an Event"
            )
        self._target = next_target
        if next_target.callbacks is None:
            # Already processed: resume on the next scheduler step.
            bridge = Event(self.env)
            bridge._triggered = True
            bridge._ok = next_target._ok
            bridge._value = next_target._value
            bridge._defused = True
            bridge.callbacks.append(self._resume)
            self.env._schedule(bridge)
        else:
            next_target.callbacks.append(self._resume)


class Condition(Event):
    """Base for AllOf / AnyOf composite wait conditions."""

    __slots__ = ("events",)

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env)
        self.events = list(events)
        if not self.events:
            self.succeed({})
            return
        for event in self.events:
            if event.callbacks is None:
                # Already processed: deliver on the next scheduler step so
                # ordering stays deterministic.
                bridge = Event(env)
                bridge._triggered = True
                bridge._ok = event._ok
                bridge._value = event._value
                bridge._defused = True
                bridge.callbacks.append(lambda _b, e=event: self._on_child(e))
                env._schedule(bridge)
            else:
                event.callbacks.append(self._on_child)

    def _collect(self) -> dict:
        return {
            i: event._value
            for i, event in enumerate(self.events)
            if event.processed and event._ok
        }

    def _on_child(self, event: Event) -> None:
        raise NotImplementedError


class AllOf(Condition):
    """Fires when every child event has fired; value maps index -> value."""

    __slots__ = ()

    def _on_child(self, event: Event) -> None:
        if self._triggered:
            return
        if not event._ok:
            event._defused = True
            self.fail(event._value)
            return
        if all(e.processed for e in self.events):
            self.succeed(self._collect())


class AnyOf(Condition):
    """Fires as soon as one child event fires; value maps index -> value."""

    __slots__ = ()

    def _on_child(self, event: Event) -> None:
        if self._triggered:
            return
        if event._ok:
            self.succeed(self._collect())
        else:
            event._defused = True
            self.fail(event._value)


class Environment:
    """The simulation clock and scheduler."""

    def __init__(self, initial_time: float = 0.0):
        self._now = float(initial_time)
        self._queue: list[tuple[float, int, int, Event]] = []
        self._counter = 0
        self._steps = 0
        self._active_process: Optional[Process] = None

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def steps(self) -> int:
        """Scheduler steps processed so far (observability counter)."""
        return self._steps

    @property
    def scheduled_events(self) -> int:
        """Events ever pushed onto the schedule (observability counter)."""
        return self._counter

    @property
    def active_process(self) -> Optional[Process]:
        return self._active_process

    # -- scheduling ------------------------------------------------------

    def _schedule(
        self, event: Event, delay: float = 0.0, priority_boost: bool = False
    ) -> None:
        self._counter += 1
        priority = 0 if priority_boost else 1
        heapq.heappush(self._queue, (self._now + delay, priority, self._counter, event))

    # -- event factories --------------------------------------------------

    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def process(self, generator: Generator, name: str = "") -> Process:
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    # -- execution ---------------------------------------------------------

    def step(self) -> None:
        """Process the next scheduled event."""
        if not self._queue:
            raise SimulationError("step() on an empty schedule")
        time, _priority, _tick, event = heapq.heappop(self._queue)
        if time < self._now:
            raise SimulationError("scheduler time went backwards")
        self._now = time
        self._steps += 1
        if event.callbacks is None:
            return
        callbacks, event.callbacks = event.callbacks, None
        for callback in callbacks:
            callback(event)
        if not event._ok and not event._defused:
            raise event._value

    def peek(self) -> float:
        """Time of the next scheduled event, or +inf when idle."""
        return self._queue[0][0] if self._queue else float("inf")

    def run(self, until: Optional[float] = None) -> None:
        """Run until the schedule drains or simulated time reaches ``until``."""
        if until is not None and until < self._now:
            raise ValueError(f"until={until} is in the past (now={self._now})")
        while self._queue:
            if until is not None and self._queue[0][0] > until:
                self._now = until
                return
            self.step()
        if until is not None:
            self._now = until
