"""Waitable resources for simulation processes.

Two primitives cover everything the rest of the library needs:

* :class:`Store` — an unbounded FIFO queue of items; ``get()`` returns an
  event that fires when an item is available. Used for message inboxes.
* :class:`Resource` — a counted resource with FIFO admission (e.g. CPU
  cores, NIC transmit queues). ``request()``/``release()`` or the
  higher-level ``use(duration)`` process.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Generator

from .engine import Environment, Event


class StoreGet(Event):
    """Event returned by :meth:`Store.get`; fires with the item."""

    __slots__ = ()


class Store:
    """Unbounded FIFO store; the backbone of message passing."""

    def __init__(self, env: Environment):
        self.env = env
        self._items: deque[Any] = deque()
        self._getters: deque[StoreGet] = deque()

    def __len__(self) -> int:
        return len(self._items)

    @property
    def items(self) -> tuple:
        """Snapshot of queued items (for inspection in tests)."""
        return tuple(self._items)

    def put(self, item: Any) -> None:
        """Add an item; wakes the oldest waiting getter, if any."""
        while self._getters:
            getter = self._getters.popleft()
            if getter.triggered:
                continue
            getter.succeed(item)
            return
        self._items.append(item)

    def get(self) -> StoreGet:
        """Return an event that fires with the next item."""
        event = StoreGet(self.env)
        if self._items:
            event.succeed(self._items.popleft())
        else:
            self._getters.append(event)
        return event

    def cancel(self, event: StoreGet) -> None:
        """Withdraw an un-triggered get request (e.g. on timeout)."""
        try:
            self._getters.remove(event)
        except ValueError:
            pass


class ResourceRequest(Event):
    """Event returned by :meth:`Resource.request`; fires on admission."""

    __slots__ = ()


class Resource:
    """A counted FIFO resource (CPU cores, transmit slots, ...)."""

    def __init__(self, env: Environment, capacity: int = 1):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.env = env
        self.capacity = capacity
        self._in_use = 0
        self._waiters: deque[ResourceRequest] = deque()

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def queue_length(self) -> int:
        return len(self._waiters)

    def try_acquire(self) -> bool:
        """Non-blocking fast path: grab a unit now or return False.

        No event is scheduled; pair with :meth:`release`.
        """
        if self._in_use < self.capacity:
            self._in_use += 1
            return True
        return False

    def request(self) -> ResourceRequest:
        """Return an event that fires when a unit is granted."""
        event = ResourceRequest(self.env)
        if self._in_use < self.capacity:
            self._in_use += 1
            event.succeed()
        else:
            self._waiters.append(event)
        return event

    def release(self) -> None:
        """Return one unit; admits the oldest waiter, if any."""
        if self._in_use <= 0:
            raise RuntimeError("release() without a matching request()")
        while self._waiters:
            waiter = self._waiters.popleft()
            if waiter.triggered:
                continue
            waiter.succeed()
            return
        self._in_use -= 1

    def use(self, duration: float) -> Generator:
        """Process generator: hold one unit for ``duration`` seconds.

        Usage inside a process::

            yield from cpu.use(0.000'02)
        """
        if self._in_use < self.capacity:
            # Fast path: grant immediately without a request event.
            self._in_use += 1
            try:
                yield self.env.timeout(duration)
            finally:
                self.release()
            return
        yield self.request()
        try:
            yield self.env.timeout(duration)
        finally:
            self.release()
