"""Waitable resources for simulation processes.

Two primitives cover everything the rest of the library needs:

* :class:`Store` — an unbounded FIFO queue of items; ``get()`` returns an
  event that fires when an item is available. Used for message inboxes.
* :class:`Resource` — a counted resource with FIFO admission (e.g. CPU
  cores, NIC transmit queues). ``request()``/``release()`` or the
  higher-level ``use(duration)``/``request_hold(duration)``.

Hot-path design (see docs/PERFORMANCE.md)
-----------------------------------------
``Resource`` is the second-hottest object in the repository after the
scheduler itself: every ``compute()`` and every network serialization
goes through one. Two fast paths keep event churn down without changing
admission order or timing:

* *Uncontended*: when a unit is free, ``use``/``request_hold`` skip the
  request event entirely and schedule only the hold timeout — one heap
  entry per acquisition.
* *Direct handoff*: when the resource is saturated, the waiter records
  its hold duration up front and admission schedules the waiter's
  *completion* directly — the waiting process resumes once (when its
  hold ends) instead of twice (admission, then timeout). The admission
  bookkeeping is a tiny relay that occupies exactly the heap slot the
  classic request event occupied and assigns the completion its
  schedule counter at the same moment the classic path would have, so
  same-time tiebreak order — and therefore every simulated result — is
  bit-for-bit identical to the two-resume dance.
"""

from __future__ import annotations

from collections import deque
from heapq import heappush
from typing import Any, Generator, Optional

from .engine import Environment, Event, Timeout


class StoreGet(Event):
    """Event returned by :meth:`Store.get`; fires with the item."""

    __slots__ = ()


class Store:
    """Unbounded FIFO store; the backbone of message passing."""

    __slots__ = ("env", "_items", "_getters")

    def __init__(self, env: Environment):
        self.env = env
        self._items: deque[Any] = deque()
        self._getters: deque[StoreGet] = deque()

    def __len__(self) -> int:
        return len(self._items)

    @property
    def items(self) -> tuple:
        """Snapshot of queued items (for inspection in tests)."""
        return tuple(self._items)

    def put(self, item: Any) -> None:
        """Add an item; wakes the oldest waiting getter, if any."""
        while self._getters:
            getter = self._getters.popleft()
            if getter._triggered:
                continue
            # Inlined Event.succeed() + Environment._schedule(): the
            # inbox put/get pair runs once per delivered message.
            getter._triggered = True
            getter._value = item
            env = getter.env
            env._counter = counter = env._counter + 1
            heappush(env._queue, (env._now, 1, counter, getter))
            return
        self._items.append(item)

    def get(self) -> StoreGet:
        """Return an event that fires with the next item."""
        env = self.env
        event = StoreGet(env)
        if self._items:
            event._triggered = True
            event._value = self._items.popleft()
            env._counter = counter = env._counter + 1
            heappush(env._queue, (env._now, 1, counter, event))
        else:
            self._getters.append(event)
        return event

    def cancel(self, event: StoreGet) -> None:
        """Withdraw an un-triggered get request (e.g. on timeout)."""
        try:
            self._getters.remove(event)
        except ValueError:
            pass


class _AdmitRelay:
    """Heap-entry stand-in for the classic admission event.

    Scheduled by :meth:`Resource.release` when it hands a unit to a
    ``request_hold`` waiter. It pops in exactly the slot the old
    admission event popped in, and only then schedules the waiter's
    completion — so the completion gets the same schedule counter the
    classic request-then-timeout path would have assigned, preserving
    deterministic tiebreak order among same-time events.
    """

    __slots__ = ("callbacks", "_value", "_ok", "_defused", "waiter")

    def __init__(self, waiter: "ResourceRequest"):
        self.callbacks = [self._fire]
        self._value = None
        self._ok = True
        self._defused = True
        self.waiter = waiter

    def _fire(self, _event) -> None:
        waiter = self.waiter
        waiter._triggered = True
        waiter.env._schedule(waiter, delay=waiter.hold)


class ResourceRequest(Event):
    """Event returned by :meth:`Resource.request`; fires on admission.

    When created through :meth:`Resource.request_hold`, ``hold`` carries
    the intended hold duration and the event fires at *admission + hold*
    instead (the releasing side schedules the completion directly).
    """

    __slots__ = ("hold",)

    def __init__(self, env: Environment):
        # Flattened Event.__init__ (no super() chain): requests are
        # allocated on every contended acquisition.
        self.env = env
        self.callbacks: Optional[list] = []
        self._value: Any = None
        self._ok = True
        self._triggered = False
        self._defused = False
        self.hold: Optional[float] = None


class Resource:
    """A counted FIFO resource (CPU cores, transmit slots, ...)."""

    __slots__ = ("env", "capacity", "_in_use", "_waiters")

    def __init__(self, env: Environment, capacity: int = 1):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.env = env
        self.capacity = capacity
        self._in_use = 0
        self._waiters: deque[ResourceRequest] = deque()

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def queue_length(self) -> int:
        return len(self._waiters)

    def try_acquire(self) -> bool:
        """Non-blocking fast path: grab a unit now or return False.

        No event is scheduled; pair with :meth:`release`.
        """
        if self._in_use < self.capacity:
            self._in_use += 1
            return True
        return False

    def request(self) -> ResourceRequest:
        """Return an event that fires when a unit is granted."""
        event = ResourceRequest(self.env)
        if self._in_use < self.capacity:
            self._in_use += 1
            event.succeed()
        else:
            self._waiters.append(event)
        return event

    def request_hold(self, duration: float) -> Event:
        """Acquire a unit (FIFO) and hold it for ``duration`` seconds.

        The returned event fires when the *hold completes* — either a
        plain timeout (uncontended) or a handoff-scheduled completion
        (saturated). The caller owns the unit from admission until it
        calls :meth:`release`, exactly as with ``request()`` + timeout,
        but with a single scheduled event either way.
        """
        if self._in_use < self.capacity:
            self._in_use += 1
            return Timeout(self.env, duration)
        event = ResourceRequest(self.env)
        event.hold = duration
        self._waiters.append(event)
        return event

    def release(self) -> None:
        """Return one unit; admits the oldest waiter, if any."""
        if self._in_use <= 0:
            raise RuntimeError("release() without a matching request()")
        waiters = self._waiters
        while waiters:
            waiter = waiters.popleft()
            if waiter._triggered:
                continue
            if waiter.hold is None:
                waiter.succeed()
            else:
                # Direct handoff: the unit transfers now; the relay pops
                # in the classic admission slot and schedules the
                # waiter's completion there (see module docstring).
                env = self.env
                env._counter = counter = env._counter + 1
                heappush(env._queue, (env._now, 1, counter, _AdmitRelay(waiter)))
            return
        self._in_use -= 1

    def use(self, duration: float) -> Generator:
        """Process generator: hold one unit for ``duration`` seconds.

        Usage inside a process::

            yield from cpu.use(0.000'02)
        """
        # request_hold() inlined: this generator wraps every compute().
        if self._in_use < self.capacity:
            self._in_use += 1
            event = Timeout(self.env, duration)
        else:
            event = ResourceRequest(self.env)
            event.hold = duration
            self._waiters.append(event)
        try:
            yield event
        except BaseException:
            # Interrupted. Release only if we actually held the unit;
            # an un-admitted waiter never acquired anything.
            if event._triggered:
                self.release()
            raise
        # release() inlined for the common no-waiter case: we provably
        # hold a unit here, so the underflow guard cannot fire.
        if self._waiters:
            self.release()
        else:
            self._in_use -= 1
