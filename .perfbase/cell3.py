"""Time the full profiled Fig. 6 cell (all 3 systems) for BENCH_sim_core."""
import json, sys, time
from repro.bench.experiments import _run_system, write_source

out = {}
for system in ("bl", "ctroxy", "etroxy"):
    t0 = time.perf_counter()
    cluster, summary = _run_system(system, write_source(128), reply_size=10,
                                   n_clients=32, warmup=0.1, duration=0.25)
    wall = time.perf_counter() - t0
    out[system] = {
        "wall_seconds": wall,
        "steps": cluster.env.steps,
        "scheduled_events": cluster.env.scheduled_events,
        "throughput": summary.throughput,
        "mean_latency": repr(summary.mean_latency),
        "p50": repr(summary.p50), "p95": repr(summary.p95), "p99": repr(summary.p99),
        "count": summary.count,
    }
    print(system, wall, flush=True)
out["total_wall_seconds"] = sum(v["wall_seconds"] for v in out.values()
                               if isinstance(v, dict))
json.dump(out, open(sys.argv[1], "w"), indent=1)
print("wrote", sys.argv[1])
