import cProfile, pstats, sys
from repro.bench.experiments import _run_system, write_source
system = sys.argv[1]
prof = cProfile.Profile()
prof.enable()
_run_system(system, write_source(128), reply_size=10,
            n_clients=32, warmup=0.1, duration=0.25)
prof.disable()
stats = pstats.Stats(prof)
stats.sort_stats("tottime").print_stats(30)
