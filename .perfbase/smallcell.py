import sys, time
from repro.bench.experiments import _run_system, write_source
t0=time.perf_counter()
cluster, summary = _run_system("etroxy", write_source(128), reply_size=10, n_clients=8, warmup=0.02, duration=0.05)
print(sys.argv[1] if len(sys.argv)>1 else "", "wall", round(time.perf_counter()-t0,3), "steps", cluster.env.steps, "events", cluster.env.scheduled_events)
