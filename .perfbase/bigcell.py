import json, sys, time
from repro.bench.experiments import _run_system, write_source
t0 = time.time()
cluster, summary = _run_system("etroxy", write_source(128), reply_size=10,
                               n_clients=32, warmup=0.1, duration=0.25)
wall = time.time() - t0
out = {"wall_seconds": wall, "steps": cluster.env.steps,
       "scheduled_events": cluster.env.scheduled_events,
       "throughput": summary.throughput, "mean_latency": summary.mean_latency,
       "count": summary.count}
json.dump(out, open(sys.argv[1], "w"), indent=1)
print(out)
