"""Capture full-precision figure summaries for before/after comparison."""
import json, sys
from repro.bench import experiments as E

def s2d(p):
    s = p.summary
    return {"figure": p.figure, "system": p.system, "x": p.x,
            "count": s.count, "throughput": repr(s.throughput),
            "mean_latency": repr(s.mean_latency), "p50": repr(s.p50),
            "p95": repr(s.p95), "p99": repr(s.p99),
            "conflict_rate": repr(s.conflict_rate),
            "extra": {k: repr(v) for k, v in (p.extra or {}).items()
                      if k in ("conflict_rate",)}}

cells = []
cells += E.fig6_ordered_writes_local(sizes=(256,), n_clients=8, duration=0.06)
cells += E.fig7_ordered_writes_wan(sizes=(1024,), n_clients=48, duration=0.4)
cells += E.fig8_reads_local(reply_sizes=(1024,), n_clients=8, duration=0.06)
cells += E.fig9_reads_wan(reply_sizes=(256,), n_clients=48, duration=0.4)
cells += E.fig10_write_contention(n_clients=8, duration=0.1)
cells += E.fig11_http_latency(n_clients=8, duration=0.4)
json.dump([s2d(p) for p in cells], open(sys.argv[1], "w"), indent=1, sort_keys=True)
print("wrote", sys.argv[1], len(cells), "cells")
