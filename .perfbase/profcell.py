"""Profile one system of the Fig. 6 acceptance cell; print wall + counters."""
import cProfile, pstats, sys, time
from repro.bench.experiments import _run_system, write_source

system = sys.argv[1]
prof = cProfile.Profile()
t0 = time.perf_counter()
prof.enable()
cluster, summary = _run_system(system, write_source(128), reply_size=10,
                               n_clients=32, warmup=0.1, duration=0.25)
prof.disable()
wall = time.perf_counter() - t0
stats = pstats.Stats(prof)
print(system, "profiled_wall", round(wall, 3), "steps", cluster.env.steps,
      "events", cluster.env.scheduled_events, "calls", stats.total_calls)
