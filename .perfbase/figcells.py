"""Time one representative cell of each figure; works on seed and new trees.

Usage: PYTHONPATH=<tree>/src python figcells.py out.json
"""
import json
import random
import sys
import time

from repro.analysis.metrics import Collector
from repro.apps.httpd import HttpPageService, get_operation, post_operation, seed_pages
from repro.bench.clusters import WAN_DELAY, build_troxy
from repro.bench.experiments import (
    WAN_CLIENT_NIC,
    _run_system,
    mixed_source,
    read_source,
    write_source,
)
from repro.workloads.loadgen import PacedLoop

out = {}


def cell(name, fn):
    t0 = time.perf_counter()
    env = fn()
    wall = time.perf_counter() - t0
    out[name] = {
        "wall_s": round(wall, 3),
        "steps": env.steps,
        "scheduled_events": env.scheduled_events,
    }
    print(name, out[name], flush=True)


def fig6():
    c, _ = _run_system("etroxy", write_source(256), reply_size=10,
                       n_clients=8, warmup=0.1, duration=0.06)
    return c.env


def fig7():
    c, _ = _run_system("etroxy", write_source(1024), reply_size=10,
                       n_clients=48, warmup=1.5, duration=0.4,
                       wan=WAN_DELAY, client_nic=WAN_CLIENT_NIC,
                       request_distribution="all")
    return c.env


def fig8():
    c, _ = _run_system("etroxy", read_source(), reply_size=1024,
                       n_clients=8, warmup=0.1, duration=0.06)
    return c.env


def fig9():
    c, _ = _run_system("etroxy", read_source(), reply_size=256,
                       n_clients=48, warmup=1.5, duration=0.4,
                       wan=WAN_DELAY, client_nic=WAN_CLIENT_NIC,
                       request_distribution="all")
    return c.env


def fig10():
    rng = random.Random(1234)
    c, _ = _run_system("etroxy", mixed_source(0.01, rng, key_space=1),
                       reply_size=4096, n_clients=8, warmup=0.15, duration=0.1)
    return c.env


def fig11():
    cluster = build_troxy(seed=42, app_factory=HttpPageService,
                          wan=WAN_DELAY, client_nic=WAN_CLIENT_NIC)
    clients = [cluster.new_client() for _ in range(8)]
    pages = sorted(seed_pages().keys())
    rng = random.Random(7)

    def source(i, seq):
        page = pages[(i * 7 + seq) % len(pages)]
        if rng.random() < 0.10:
            return post_operation(page, b"p" * 200)
        return get_operation(page, extra_payload=170)

    loadgen = PacedLoop(cluster.env, clients, source, Collector(),
                        rate_per_client=500.0 / 8)
    loadgen.start()
    cluster.env.run(until=cluster.env.now + 1.0 + 0.4)
    return cluster.env


for name, fn in [("fig6", fig6), ("fig7", fig7), ("fig8", fig8),
                 ("fig9", fig9), ("fig10", fig10), ("fig11", fig11)]:
    cell(name, fn)

json.dump(out, open(sys.argv[1], "w"), indent=1)
print("wrote", sys.argv[1])
