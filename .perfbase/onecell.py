import sys, time
from repro.bench.experiments import _run_system, write_source
t0 = time.perf_counter()
cluster, _ = _run_system(sys.argv[1], write_source(128), reply_size=10,
                         n_clients=32, warmup=0.1, duration=0.25)
print(sys.argv[1], "unprofiled_wall", round(time.perf_counter() - t0, 3),
      "steps", cluster.env.steps, "events", cluster.env.scheduled_events)
