"""Table I: comparison of read optimizations and consistency levels.

The table itself is static, but its consistency column is a *claim*;
this benchmark verifies both sides of it against the running systems:

* Prophecy (weak): a stale-read witness exists — with one lagging
  replica (within f) pinned as the validation probe, a read after a
  completed write returns the old value.
* Troxy (strong): the same adversarial scenario yields the new value,
  and a concurrent random workload's history passes the Wing & Gong
  linearizability checker.
"""

from repro.analysis.linearizability import OpRecord, check_linearizable, find_violation
from repro.apps.base import Payload
from repro.apps.kvstore import KvStore, get, put
from repro.bench.clusters import build_prophecy, build_troxy
from repro.bench.experiments import table1_rows
from repro.bench.report import save_and_print


class LaggingKv(KvStore):
    """Applies writes until frozen — a Byzantine replica within f=1."""

    def __init__(self):
        super().__init__()
        self.lag = False

    def execute(self, op):
        if not op.is_read and self.lag:
            return Payload(b"stored")
        return super().execute(op)


class _Pin:
    def __init__(self, value):
        self.value = value

    def choice(self, seq):
        return self.value


def stale_read_witness_prophecy() -> bytes:
    cluster = build_prophecy(seed=31, app_factory=KvStore)
    lagging = LaggingKv()
    cluster.replicas[1].app = lagging
    cluster.middlebox.rng = _Pin("replica-1")
    client = cluster.new_client()
    result = []

    def driver():
        yield from client.invoke(put("k", b"old"))
        yield from client.invoke(get("k"))  # seeds the sketch
        lagging.lag = True
        yield from client.invoke(put("k", b"new"))
        outcome = yield from client.invoke(get("k"))
        result.append(outcome.result.content)

    cluster.env.process(driver())
    cluster.env.run(until=60.0)
    return result[0]


def same_attack_on_troxy() -> bytes:
    cluster = build_troxy(seed=31, app_factory=KvStore)
    lagging = LaggingKv()
    cluster.replicas[1].app = lagging
    client = cluster.new_client(contact_index=1)
    result = []

    def driver():
        yield from client.invoke(put("k", b"old"))
        yield from client.invoke(get("k"))
        lagging.lag = True
        yield from client.invoke(put("k", b"new"))
        outcome = yield from client.invoke(get("k"))
        result.append(outcome.result.content)

    cluster.env.process(driver())
    cluster.env.run(until=60.0)
    return result[0]


def troxy_random_history() -> list[OpRecord]:
    """Concurrent readers/writers against Troxy; record the history."""
    cluster = build_troxy(seed=32, app_factory=KvStore)
    clients = [cluster.new_client() for _ in range(6)]
    history: list[OpRecord] = []

    def writer(client, index):
        for i in range(6):
            value = f"w{index}.{i}".encode()
            start = cluster.env.now
            yield from client.invoke(put("hot", value))
            history.append(OpRecord(client.client_id, "put", "hot", value, start, cluster.env.now))
            yield cluster.env.timeout(1e-6)  # keep intervals disjoint

    def reader(client):
        for _ in range(8):
            start = cluster.env.now
            outcome = yield from client.invoke(get("hot"))
            value = outcome.result.content
            observed = None if value == b"\x00missing" else value
            history.append(OpRecord(client.client_id, "get", "hot", observed, start, cluster.env.now))
            yield cluster.env.timeout(1e-6)

    cluster.env.process(writer(clients[0], 0))
    cluster.env.process(writer(clients[1], 1))
    for client in clients[2:]:
        cluster.env.process(reader(client))
    cluster.env.run(until=120.0)
    return history


def run_table1():
    prophecy_read = stale_read_witness_prophecy()
    troxy_read = same_attack_on_troxy()
    history = troxy_random_history()
    return prophecy_read, troxy_read, history


def test_table1(run_once):
    prophecy_read, troxy_read, history = run_once(run_table1)

    lines = ["Table I — read optimizations and consistency", "=" * 46]
    lines.append(f"{'System':>10} | {'Replicas':>8} | {'Read quorum':>22} | Consistency")
    lines.append("-" * 62)
    for row in table1_rows():
        lines.append(
            f"{row.system:>10} | {row.replicas:>8} | {row.read_quorum:>22} | {row.consistency}"
        )
    lines.append("")
    lines.append(f"witness — stale replica pinned as probe, read after write:")
    lines.append(f"  Prophecy returned {prophecy_read!r}   (weak: state of the latest READ)")
    lines.append(f"  Troxy    returned {troxy_read!r}   (strong: state of the latest WRITE)")
    lines.append(f"linearizability check over {len(history)} concurrent Troxy ops: "
                 f"{'PASS' if check_linearizable(history) else 'FAIL'}")
    save_and_print("table1", "\n".join(lines))

    assert prophecy_read == b"old"  # the documented weakness, reproduced
    assert troxy_read == b"new"  # Troxy stays strong under the same attack
    violation = find_violation(history)
    assert violation is None, violation
    assert len(history) >= 30
