"""Fig. 6: totally ordered write requests, local network.

Paper shape: with 256 B requests etroxy loses ~43 % against the
baseline (about half of it attributable to SGX — ctroxy, without the
enclave, loses ~21 %); the gap closes with the payload size and etroxy
reaches the baseline at 8 KB (large-payload authentication is faster in
C/C++ than in Java, and the NICs saturate).
"""

from repro.bench.experiments import fig6_ordered_writes_local
from repro.bench.report import format_throughput_series, ratio, save_and_print


def test_fig6_ordered_writes_local(run_once):
    points = run_once(fig6_ordered_writes_local)
    save_and_print(
        "fig6",
        format_throughput_series(
            "Fig. 6 — ordered writes, LAN (throughput vs request size)", points
        ),
    )

    # 256 B: etroxy well below the baseline (paper: ~43 % loss)...
    et_small = ratio(points, "etroxy", "bl", 256)
    assert 0.40 <= et_small <= 0.75, f"etroxy/bl at 256 B = {et_small:.2f}"
    # ...with ctroxy in between (paper: about half the loss is SGX).
    ct_small = ratio(points, "ctroxy", "bl", 256)
    assert et_small < ct_small < 1.0, f"ctroxy/bl at 256 B = {ct_small:.2f}"

    # The gap closes monotonically-ish and reaches ~parity at 8 KB.
    et_big = ratio(points, "etroxy", "bl", 8192)
    assert et_big >= 0.9, f"etroxy/bl at 8 KB = {et_big:.2f}"
    assert et_big > et_small

    # ctroxy also converges to the baseline at 8 KB.
    ct_big = ratio(points, "ctroxy", "bl", 8192)
    assert ct_big >= 0.9, f"ctroxy/bl at 8 KB = {ct_big:.2f}"

    # Absolute throughput declines with request size for every system.
    for system in ("bl", "ctroxy", "etroxy"):
        series = [p.throughput for p in points if p.system == system]
        assert series[0] > series[-1]
