"""Fig. 9: read-only requests with 100 +/- 20 ms network delay.

Paper shape: the delay softens Troxy's small-reply penalty (their
256 B point degrades only 33 % vs 115 % on the LAN) and above 1 KB
etroxy outperforms the baseline (at least +15 %, headline +130 %): the
baseline downloads 2f+1 full replies over the delayed, constrained
client link while Troxy downloads one.
"""

from repro.bench.experiments import fig9_reads_wan
from repro.bench.report import format_throughput_series, ratio, save_and_print


def test_fig9_reads_wan(run_once):
    points = run_once(fig9_reads_wan)
    save_and_print(
        "fig9",
        format_throughput_series(
            "Fig. 9 — read-only workload, 100±20 ms WAN (throughput vs reply size)",
            points,
        ),
    )

    ratios = {
        size: ratio(points, "etroxy", "bl", size) for size in (256, 1024, 4096, 8192)
    }
    # The WAN softens the small-reply penalty compared to Fig. 8's LAN
    # (paper: -115 % becomes -33 %); in our model the deficit not only
    # shrinks but flips to a gain (see EXPERIMENTS.md, deviation 3) — at
    # minimum it must have shrunk to a mild loss.
    assert ratios[256] >= 0.6, f"etroxy/bl at 256 B = {ratios[256]:.2f}"

    # Above 1 KB, Troxy wins (paper: >= +15 %)...
    for size in (1024, 4096, 8192):
        assert ratios[size] >= 1.15, f"etroxy/bl at {size} B = {ratios[size]:.2f}"

    # ...with a large-reply headline gain in the +130 % ballpark.
    assert ratios[8192] >= 1.6, f"etroxy/bl at 8 KB = {ratios[8192]:.2f}"
    assert ratios[8192] > ratios[256]
