"""Fig. 11: HTTP service latency, local network and WAN.

Paper shape, local network: the standalone server (Jetty) sets the
floor; baseline and Troxy stay within ~2 ms of it; Prophecy's extra
middlebox hop roughly doubles the overhead. With the 100 +/- 20 ms
delay, the baseline's latency rises dramatically (its voter sits on the
client machine: conflicted reads pay extra WAN round trips), while
Prophecy and Troxy — voters next to the replicas — track the standalone
server closely: BFT at one WAN round trip.
"""

from repro.bench.experiments import fig11_http_latency
from repro.bench.report import format_latency_series, save_and_print


def test_fig11_http_latency(run_once):
    points = run_once(fig11_http_latency)
    save_and_print(
        "fig11",
        format_latency_series(
            "Fig. 11 — HTTP service mean latency (GET/POST mix, ~500 req/s)", points
        ),
    )
    local = {p.system: p.latency_ms for p in points if p.x == "local"}
    wan = {p.system: p.latency_ms for p in points if p.x == "wan"}

    # Local: Jetty is the floor; BL and Troxy add small overhead (~ms).
    assert local["jetty"] <= min(local.values()) + 1e-9
    assert local["bl"] - local["jetty"] < 2.0
    assert local["troxy"] - local["jetty"] < 2.0
    # Prophecy's two hops cost roughly another connection's worth.
    assert local["prophecy"] > local["troxy"]

    # WAN: everyone pays the ~200 ms round trip...
    for system, latency in wan.items():
        assert latency > 150.0, (system, latency)
    # ...but the baseline rises clearly above the server-side voters.
    assert wan["bl"] > wan["troxy"] + 10.0
    assert wan["bl"] > wan["prophecy"] + 10.0
    # Troxy (and Prophecy) nearly hide the replication cost.
    assert wan["troxy"] - wan["jetty"] < 25.0
    assert wan["prophecy"] - wan["jetty"] < 25.0
