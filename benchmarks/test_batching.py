"""Agreement batching: the tracked before/after throughput ladder.

One fig6-style local-writes cell at a fixed client count, swept over
batch settings (see ``docs/BATCHING.md``). The assertions pin the two
acceptance properties of the batching work:

* with the agreement pipeline held fixed, growing the batch size
  multiplies write throughput — at least 2x from batch size 1 to 16;
* the tuned adaptive setting beats the pre-batching path outright, and
  leaves the fig8-style fast-read p50 untouched (fast reads never
  enter the ordering pipeline, so batching must not tax them).
"""

from repro.bench.experiments import batching_throughput


def _by_setting(points, figure):
    return {p.x: p for p in points if p.figure == figure}


def test_batching_ladder_and_read_guard(run_once):
    points = run_once(batching_throughput)
    writes = _by_setting(points, "batching-writes")
    reads = _by_setting(points, "batching-reads")

    # Acceptance: >= 2x write throughput, batch 16 vs batch 1, on the
    # same two-deep agreement pipeline (BatchConfig.sized defaults).
    speedup = writes["16"].throughput / writes["1"].throughput
    assert speedup >= 2.0, f"batch 16 vs 1 speedup {speedup:.2f}x < 2x"

    # The ladder is monotone: more requests per certified counter value
    # never hurts while the pipeline is the bottleneck.
    assert writes["4"].throughput > writes["1"].throughput

    # CI smoke: batched (adaptive default) beats the unbatched path.
    assert writes["adaptive"].throughput >= writes["off"].throughput, (
        f"adaptive {writes['adaptive'].throughput:.0f} op/s < "
        f"unbatched {writes['off'].throughput:.0f} op/s"
    )

    # Batches genuinely form under the fixed-size settings...
    assert writes["16"].extra["avg_batch"] > writes["4"].extra["avg_batch"] > 1.5
    # ...and never exceed the configured cap.
    assert writes["16"].extra["avg_batch"] <= 16.0
    # The adaptive setting actually pipelines deeper than the sized ones.
    assert writes["adaptive"].extra["max_pipeline_depth"] > 2

    # Fast-read guard: batching must not move the read-path p50 (reads
    # are served by the Troxy cache, not by ordered agreement).
    p50_off = reads["off"].summary.p50
    p50_adaptive = reads["adaptive"].summary.p50
    assert abs(p50_adaptive - p50_off) <= 0.05 * p50_off, (
        f"fast-read p50 moved: off {p50_off * 1e6:.1f} us vs "
        f"adaptive {p50_adaptive * 1e6:.1f} us"
    )
