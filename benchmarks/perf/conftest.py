"""Configuration for the perf-smoke suite.

These tests gate on *deterministic* quantities only — scheduled-event
and scheduler-step counts — never on wall-clock, so they are stable on
shared CI runners. They are excluded from the default `pytest` run
(testpaths covers only tests/); CI's perf-smoke job runs them with
`pytest benchmarks/perf`.
"""
