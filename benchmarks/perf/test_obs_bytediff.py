"""Same-seed observability exports must be byte-identical.

This is the perf-smoke suite's semantic tripwire: the obs export embeds
the ``sim_steps`` and ``sim_events_scheduled`` gauges and sim-time span
boundaries for every request phase, so *any* optimization that merges,
drops, or reorders scheduled events — even one that leaves throughput
summaries intact — changes these bytes. Two in-process runs with the
same seed must produce identical files for every export format.
"""

import filecmp

from repro.obs.__main__ import run_workload
from repro.obs.export import REPORT_FILES, write_report


def _export(tmp_path, name):
    plane, _summary = run_workload(seed=42, n_clients=4, warmup=0.02, duration=0.1)
    out = tmp_path / name
    written = write_report(out, plane.registry, plane.spans.spans, list(REPORT_FILES))
    return out, written


def test_same_seed_export_is_byte_identical(tmp_path):
    first_dir, written = _export(tmp_path, "first")
    second_dir, _ = _export(tmp_path, "second")
    assert written  # at least one format exported
    for fmt, path in written.items():
        name = path.name
        same = filecmp.cmp(first_dir / name, second_dir / name, shallow=False)
        assert same, f"{fmt} export differs between two same-seed runs"
