"""Event-churn budgets for the simulation hot path.

Every cell below is a deterministic miniature of one figure workload:
same seed, same topology, same client mix as the full run, scaled down
to a few hundred thousand scheduler events. ``BUDGET`` records the
``env.scheduled_events`` count measured when the hot-path overhaul
landed; a regression of more than 10 % means some change re-introduced
per-operation event churn (extra bridge events, split acquisitions,
chatty handoffs) and should be treated like a failing correctness test
— event counts, unlike wall-clock, do not vary across machines.

A budget *undershoot* of more than 10 % is also flagged: events were
eliminated, which changes same-time tiebreak order and will show up in
the obs byte-diff gate. Re-baseline deliberately or fix the change.
"""

import pytest

from repro.bench.experiments import _run_system, read_source, write_source

#: (cell-id, system, op source, kwargs, scheduled-events budget)
CELLS = [
    (
        "fig6-etroxy-128B-8c",
        "etroxy",
        write_source(128),
        dict(reply_size=10, n_clients=8, warmup=0.02, duration=0.05),
        199_373,
    ),
    (
        "fig6-ctroxy-128B-8c",
        "ctroxy",
        write_source(128),
        dict(reply_size=10, n_clients=8, warmup=0.02, duration=0.05),
        206_334,
    ),
    (
        "fig6-bl-128B-8c",
        "bl",
        write_source(128),
        dict(reply_size=10, n_clients=8, warmup=0.02, duration=0.05),
        226_230,
    ),
    (
        "fig8-etroxy-1KiB-8c",
        "etroxy",
        read_source(),
        dict(reply_size=1024, n_clients=8, warmup=0.02, duration=0.05),
        78_639,
    ),
]

TOLERANCE = 0.10


@pytest.mark.parametrize(
    "cell_id,system,source,kwargs,budget",
    CELLS,
    ids=[cell[0] for cell in CELLS],
)
def test_scheduled_events_within_budget(cell_id, system, source, kwargs, budget):
    cluster, _summary = _run_system(system, source, **kwargs)
    events = cluster.sim_stats["scheduled_events"]
    assert events <= budget * (1 + TOLERANCE), (
        f"{cell_id}: {events} scheduled events exceeds the recorded budget "
        f"{budget} by more than {TOLERANCE:.0%} — the hot path regressed"
    )
    assert events >= budget * (1 - TOLERANCE), (
        f"{cell_id}: {events} scheduled events undershoots the budget "
        f"{budget} by more than {TOLERANCE:.0%} — events were eliminated; "
        f"re-baseline deliberately (see module docstring)"
    )


def test_event_counts_are_deterministic():
    """Two same-seed runs must agree exactly on both counters (the budget
    gate above is only meaningful if counts are machine-independent)."""
    def once():
        cluster, _ = _run_system(
            "etroxy", write_source(128), reply_size=10,
            n_clients=4, warmup=0.01, duration=0.02,
        )
        stats = cluster.sim_stats
        return stats["steps"], stats["scheduled_events"]

    first, second = once(), once()
    assert first == second
    assert first[0] > 10_000  # the cell is big enough to be a real gate
