"""Lease reads: the tracked voted-vs-leased latency comparison.

One fig8/fig9-style read-only cell (1 KB replies) at LAN and WAN, run
with the fast-read probe path (``etroxy``) and with leases enabled
(``lease``); see ``docs/READS.md``. The assertions pin the acceptance
properties of the lease work:

* on the LAN, serving under a lease removes the per-read f+1 probe
  round: read p50 drops below the voted path's and throughput rises —
  the LAN lease p50 *is* the local-serve latency (decrypt, cache
  lookup, seal; no quorum round);
* on the WAN, the lease read p50 lands on the WAN round trip plus that
  local-serve latency — the entire server-side quorum contribution is
  gone from the p50;
* the lease path genuinely served (grants installed, lease hits
  recorded) — the numbers are not the probe path wearing a new label.
"""

from repro.bench.experiments import lease_reads
from repro.bench.report import save_and_print

#: The fig9 WAN client link: 100 +/- 20 ms each way, so the round-trip
#: p50 contributes ~200 ms that no server-side change can remove.
WAN_RTT_P50 = 0.200


def _by_cell(points):
    return {(p.figure, p.system): p for p in points}


def test_lease_read_latency(run_once):
    points = run_once(lease_reads)
    title = "Leased vs voted reads — fig8/fig9 read-only workload, 1 KB replies"
    header = (
        f"{'network':<12} {'system':<8} {'p50':>11} {'p95':>11} "
        f"{'throughput':>12} {'lease hits':>11}"
    )
    save_and_print(
        "leases",
        "\n".join(
            [title, "=" * len(title), header, "-" * len(header)]
            + [
                f"{p.figure:<12} {p.system:<8} "
                f"{p.summary.p50 * 1e3:8.3f} ms {p.summary.p95 * 1e3:8.3f} ms "
                f"{p.throughput:7.0f} op/s {p.extra['lease_read_hits']:>11}"
                for p in points
            ]
        ),
    )
    cells = _by_cell(points)
    lan_voted = cells[("lease-local", "etroxy")]
    lan_lease = cells[("lease-local", "lease")]
    wan_voted = cells[("lease-wan", "etroxy")]
    wan_lease = cells[("lease-wan", "lease")]

    # The lease path really ran in both cells.
    assert lan_lease.extra["lease_read_hits"] > 0
    assert wan_lease.extra["lease_read_hits"] > 0
    assert lan_lease.extra["grants_installed"] > 0
    # ...and the voted reference never touched it.
    assert lan_voted.extra["lease_read_hits"] == 0
    assert wan_voted.extra["lease_read_hits"] == 0

    # LAN: removing the probe round must show up directly — lower read
    # p50 and higher read throughput than the voted path.
    assert lan_lease.summary.p50 <= lan_voted.summary.p50, (
        f"lease p50 {lan_lease.summary.p50 * 1e6:.1f} us above voted "
        f"{lan_voted.summary.p50 * 1e6:.1f} us"
    )
    assert lan_lease.throughput > lan_voted.throughput

    # WAN: the lease read p50 drops to the WAN round trip plus the
    # local-serve latency (the LAN lease p50). Allow 10% of local-serve
    # as slack for queueing; the quorum round's contribution must not
    # survive in the p50.
    local_serve = lan_lease.summary.p50
    assert wan_lease.summary.p50 <= WAN_RTT_P50 + local_serve * 1.1, (
        f"WAN lease p50 {wan_lease.summary.p50 * 1e3:.3f} ms above "
        f"RTT + local-serve floor {(WAN_RTT_P50 + local_serve) * 1e3:.3f} ms"
    )
    # And it never regresses against the voted WAN path.
    assert wan_lease.summary.p50 <= wan_voted.summary.p50 * 1.01
