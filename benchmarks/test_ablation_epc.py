"""Ablation — the paper's enclave-memory optimization (Section V-A).

"Accessing memory beyond the size of the EPC results in costly paging
... to avoid additional ocalls and paging, the Troxy can store data in
an encrypted manner outside the enclave [validated] against a hash
securely stored inside."

We shrink the EPC to make a hot cache of large replies spill, then
compare reads with the cache stored inside the enclave (paging) versus
outside (hash validation only).
"""

from repro.analysis.metrics import Collector
from repro.apps.echo import EchoService
from repro.bench.clusters import build_troxy
from repro.bench.experiments import _scaled, read_source
from repro.bench.report import save_and_print
from repro.workloads.loadgen import ClosedLoop

REPLY_SIZE = 8192
HOT_KEYS = 512
TINY_EPC = 1 * 1024 * 1024  # 1 MB: 512 x 8 KB replies cannot fit


def run_variant(cache_outside: bool):
    cluster = build_troxy(
        seed=9,
        app_factory=lambda: EchoService(reply_size=REPLY_SIZE),
        cache_outside=cache_outside,
        epc_bytes=TINY_EPC,
        replica_cores=2,
    )
    clients = [cluster.new_client() for _ in range(_scaled(48, minimum=12))]
    loadgen = ClosedLoop(
        cluster.env, clients, read_source(key_space=HOT_KEYS), Collector()
    )
    loadgen.start()
    cluster.env.run(until=0.8)
    summary = loadgen.collector.summarize(0.3, 0.8)
    pages = sum(host.enclave.stats.pages_swapped for host in cluster.hosts)
    resident = max(host.enclave.resident_bytes for host in cluster.hosts)
    return summary.throughput, pages, resident


def run_ablation():
    return {
        "outside (hash inside)": run_variant(cache_outside=True),
        "inside (EPC paging)": run_variant(cache_outside=False),
    }


def test_ablation_epc_cache_placement(run_once):
    rows = run_once(run_ablation)
    lines = [
        "Ablation — cache placement vs a 1 MB EPC (8 KB replies, 512 hot keys)",
        "=" * 68,
    ]
    for name, (tput, pages, resident) in rows.items():
        lines.append(
            f"{name:24s} {tput:>10.0f} op/s   pages swapped {pages:>8d}   "
            f"enclave-resident {resident / 1024:.0f} KiB"
        )
    save_and_print("ablation_epc", "\n".join(lines))

    outside_tput, outside_pages, outside_resident = rows["outside (hash inside)"]
    inside_tput, inside_pages, inside_resident = rows["inside (EPC paging)"]

    # Storing full replies inside blows the EPC and pays paging...
    assert inside_resident > TINY_EPC
    assert inside_pages > 0
    # ...while the outside variant keeps the enclave footprint tiny...
    assert outside_resident < TINY_EPC
    assert outside_pages == 0
    # ...and is the faster configuration (the paper's design choice).
    assert outside_tput > inside_tput
