"""Ablation D1 — relocating the voter to the server side.

Measures what the client itself pays in each architecture: bytes on the
client's access link and TLS operations on the client's CPU, per
completed request. This is the paper's transparency dividend — the
reason low-bandwidth/mobile clients benefit (Section II-B) — made
directly visible.
"""

from repro.analysis.metrics import Collector
from repro.apps.echo import EchoService
from repro.bench.clusters import WAN_DELAY, build_baseline, build_troxy
from repro.bench.experiments import WAN_CLIENT_NIC, read_source
from repro.bench.report import save_and_print
from repro.workloads.loadgen import ClosedLoop


def client_traffic(points_system: str, n_clients=24, reply_size=4096, duration=6.0):
    builder = build_baseline if points_system == "bl" else build_troxy
    cluster = builder(
        seed=5, app_factory=lambda: EchoService(reply_size=reply_size),
        wan=WAN_DELAY, client_nic=WAN_CLIENT_NIC,
    )
    if points_system == "bl":
        clients = [
            cluster.new_client(request_distribution="all") for _ in range(n_clients)
        ]
    else:
        clients = [cluster.new_client() for _ in range(n_clients)]
    machine_names = {m.node.name for m in cluster.machines}

    client_bytes = {"rx": 0, "tx": 0}
    original_send = cluster.net.send

    def counting_send(src, dst, payload, size=None, **kwargs):
        if size is None:
            size = getattr(payload, "wire_size", 0)
        if dst in machine_names:
            client_bytes["rx"] += size
        if src in machine_names:
            client_bytes["tx"] += size
        return original_send(src, dst, payload, size, **kwargs)

    cluster.net.send = counting_send
    loadgen = ClosedLoop(cluster.env, clients, read_source(), Collector())
    loadgen.start()
    cluster.env.run(until=duration)
    completed = max(1, loadgen.stats.completed)
    latency = loadgen.collector.summarize(0.0, duration).mean_latency
    return client_bytes["rx"] / completed, client_bytes["tx"] / completed, latency


def run_ablation():
    return {system: client_traffic(system) for system in ("bl", "troxy")}


def test_ablation_server_side_voter(run_once):
    rows = run_once(run_ablation)
    lines = [
        "Ablation D1 — client-side footprint per read (4 KB replies, WAN)",
        "=" * 64,
    ]
    for system, (rx, tx, latency) in rows.items():
        lines.append(
            f"{system:8s} client downloads {rx:>8.0f} B/req, uploads {tx:>6.0f} B/req, "
            f"latency {latency * 1000:7.1f} ms"
        )
    save_and_print("ablation_voter", "\n".join(lines))

    bl_rx, bl_tx, bl_latency = rows["bl"]
    troxy_rx, troxy_tx, troxy_latency = rows["troxy"]

    # The baseline client downloads ~2f+1 replies; the Troxy client one.
    assert bl_rx > 2.0 * troxy_rx, (bl_rx, troxy_rx)
    # And uploads the request to every replica instead of once.
    assert bl_tx > 2.0 * troxy_tx, (bl_tx, troxy_tx)
    # Waiting for the f+1-th delayed reply costs latency too.
    assert bl_latency > troxy_latency
