"""Sharding: the tracked write-throughput ladder over group counts.

One fig6-style local-writes cell at a fixed client count, swept over
agreement-group counts (see ``docs/SHARDING.md``). The assertions pin
the two acceptance properties of the sharding work:

* with the per-group machinery held fixed, adding groups multiplies
  aggregate write throughput — at least 2.5x from one group to four
  under uniform keys, even though most requests take the cross-group
  forwarding path;
* the single-group sharded cell is free: the fast-read p50 against
  ``build_sharded(shards=1)`` matches the unsharded ``build_troxy``
  deployment (the router short-circuits local keys without charging
  simulated CPU, so shard=1 is wire-identical).
"""

from repro.bench.experiments import sharding_throughput


def _by_x(points, figure):
    return {p.x: p for p in points if p.figure == figure}


def test_sharding_ladder_and_read_guard(run_once):
    points = run_once(sharding_throughput)
    writes = _by_x(points, "sharding-writes")
    reads = _by_x(points, "sharding-reads")

    # Acceptance: >= 2.5x aggregate write throughput at four groups vs
    # one, uniform keys, same client count (docs/SHARDING.md).
    speedup = writes[4].throughput / writes[1].throughput
    assert speedup >= 2.5, f"4 shards vs 1 speedup {speedup:.2f}x < 2.5x"

    # The ladder is monotone while the per-group pipeline is the
    # bottleneck: every doubling of groups helps.
    assert writes[2].throughput > writes[1].throughput
    assert writes[4].throughput > writes[2].throughput
    assert writes[8].throughput > writes[4].throughput

    # Forwarding genuinely happens: at two groups about half the
    # requests land on a Troxy outside the owning group (the router
    # counts the second lookup at the owning group too, so the share
    # reads f/(1+f) for true forward fraction f).
    assert writes[1].extra["forwards"] == 0
    assert 0.2 <= writes[2].extra["forward_share"] <= 0.45
    assert writes[8].extra["forward_share"] > writes[4].extra["forward_share"]

    # The ring spreads the uniform keyspace over every group.
    for shards in (2, 4, 8):
        split = writes[shards].extra["ring_split"]
        assert len(split) == shards
        assert all(count > 0 for count in split.values()), split

    # Fast-read guard: shards=1 must not move the read-path p50 at all —
    # the single-group cell is wire-identical to the unsharded build.
    p50_plain = reads["unsharded"].summary.p50
    p50_sharded = reads["s=1"].summary.p50
    assert abs(p50_sharded - p50_plain) <= 0.01 * p50_plain, (
        f"fast-read p50 moved: unsharded {p50_plain * 1e6:.1f} us vs "
        f"shards=1 {p50_sharded * 1e6:.1f} us"
    )
