"""Ablation D5 — what the enclave boundary itself costs.

Sweeps the protection boundary of the *same* Troxy code: none (plain
in-process library), JNI (ctroxy), SGX (etroxy), on the 256 B ordered
write workload where transitions dominate. Separates the cost of the
Troxy *concept* (extra protocol phases; visible with boundary "none")
from the cost of *trusting* it (SGX transitions/copies).
"""

from repro.analysis.metrics import Collector
from repro.apps.echo import EchoService
from repro.bench.clusters import build_baseline, build_troxy
from repro.bench.experiments import _scaled, write_source
from repro.bench.report import save_and_print
from repro.workloads.loadgen import ClosedLoop


def run_boundary(boundary: str, n_clients: int):
    cluster = build_troxy(
        seed=42, app_factory=lambda: EchoService(reply_size=10),
        boundary=boundary, replica_cores=2,
    )
    clients = [cluster.new_client() for _ in range(n_clients)]
    loadgen = ClosedLoop(cluster.env, clients, write_source(256), Collector())
    loadgen.start()
    cluster.env.run(until=0.35)
    summary = loadgen.collector.summarize(0.1, 0.35)
    ecalls = sum(h.enclave.stats.ecalls for h in cluster.hosts)
    completed = max(1, loadgen.stats.completed)
    return summary.throughput, ecalls / completed


def run_ablation():
    n_clients = _scaled(64, minimum=16)
    rows = {}
    cluster = build_baseline(
        seed=42, app_factory=lambda: EchoService(reply_size=10), replica_cores=2
    )
    clients = [cluster.new_client(read_optimization=False) for _ in range(n_clients)]
    loadgen = ClosedLoop(cluster.env, clients, write_source(256), Collector())
    loadgen.start()
    cluster.env.run(until=0.35)
    rows["baseline (no troxy)"] = (loadgen.collector.summarize(0.1, 0.35).throughput, 0.0)
    for boundary in ("none", "jni", "sgx"):
        rows[f"troxy boundary={boundary}"] = run_boundary(boundary, n_clients)
    return rows


def test_ablation_sgx_boundary(run_once):
    rows = run_once(run_ablation)
    lines = ["Ablation D5 — enclave boundary cost (256 B ordered writes)", "=" * 58]
    for name, (tput, ecalls) in rows.items():
        lines.append(f"{name:24s} {tput:>10.0f} op/s   ecalls/request {ecalls:5.1f}")
    save_and_print("ablation_sgx", "\n".join(lines))

    baseline = rows["baseline (no troxy)"][0]
    free = rows["troxy boundary=none"][0]
    jni = rows["troxy boundary=jni"][0]
    sgx = rows["troxy boundary=sgx"][0]

    # The boundary sweep orders exactly as the hardware gets stricter.
    assert free >= jni >= sgx
    # The relocation *concept* is nearly free (its extra phases are
    # offset by spreading client handling over all replicas): with a
    # zero-cost boundary, Troxy lands within ~10 % of the baseline.
    assert abs(free - baseline) < 0.12 * baseline
    # The bulk of etroxy's 256 B loss is the protection boundary itself.
    assert (baseline - sgx) > 1.5 * (baseline - jni)
    # The ecall budget per request stays small (transition-minimized).
    assert rows["troxy boundary=sgx"][1] <= 10
