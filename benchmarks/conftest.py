"""Shared benchmark configuration.

Every benchmark runs its experiment exactly once (``pedantic`` mode):
the interesting output is the reproduced series, not wall-clock jitter.
Set ``REPRO_BENCH_SCALE`` (e.g. 0.3) to shrink client counts for a
quick pass; the shape assertions are scale-tolerant.
"""

import pytest


@pytest.fixture
def run_once(benchmark):
    """Run ``fn`` once under pytest-benchmark and return its result."""

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return runner
