"""Fig. 7: totally ordered writes with 100 +/- 20 ms network delay.

Paper shape: "the server-side reply voter brings a huge advantage to
Troxy ... This advantage applies to different request payload sizes,
and leads to up to 60% performance gain." The gain comes from the
client exchanging a single request/reply with one Troxy instead of
running the full client-side library (request distribution to all
replicas, f+1 delayed replies) over the constrained WAN access link.
"""

from repro.bench.experiments import fig7_ordered_writes_wan
from repro.bench.report import format_throughput_series, ratio, save_and_print


def test_fig7_ordered_writes_wan(run_once):
    points = run_once(fig7_ordered_writes_wan)
    save_and_print(
        "fig7",
        format_throughput_series(
            "Fig. 7 — ordered writes, 100±20 ms WAN (throughput vs request size)",
            points,
        ),
    )

    # Troxy at least matches the baseline at every size...
    for size in (256, 1024, 4096, 8192):
        assert ratio(points, "etroxy", "bl", size) >= 0.95, (
            f"etroxy/bl at {size} B = {ratio(points, 'etroxy', 'bl', size):.2f}"
        )
    # ...and wins big for large requests (paper: up to ~60-70 %).
    big_gain = ratio(points, "etroxy", "bl", 8192)
    assert big_gain >= 1.3, f"etroxy/bl at 8 KB = {big_gain:.2f}"
    # The advantage grows with the payload size.
    assert big_gain > ratio(points, "etroxy", "bl", 256)
