"""Fig. 8: read-only requests, local network.

Paper shape: for small (256 B) replies the fast-read protocol's enclave
transitions and remote-cache round trip cost more than they save — the
overhead is large (paper: 115 %). As replies grow, the baseline pays
Java TLS on 2f+1 full replies while Troxy ships one C/C++-sealed reply
plus hash-only cache checks: etroxy overtakes at ~4 KB and wins ~30 %
at 8 KB.
"""

from repro.bench.experiments import fig8_reads_local
from repro.bench.report import format_throughput_series, ratio, save_and_print


def test_fig8_reads_local(run_once):
    points = run_once(fig8_reads_local)
    save_and_print(
        "fig8",
        format_throughput_series(
            "Fig. 8 — read-only workload, LAN (throughput vs reply size)", points
        ),
    )

    # 256 B: the baseline read optimization clearly wins (paper: etroxy
    # overhead as high as 115 %, i.e. et/bl around 0.47).
    small = ratio(points, "etroxy", "bl", 256)
    assert small <= 0.7, f"etroxy/bl at 256 B = {small:.2f}"

    # The ratio improves monotonically with the reply size...
    ratios = [ratio(points, "etroxy", "bl", size) for size in (256, 1024, 4096, 8192)]
    assert all(b >= a for a, b in zip(ratios, ratios[1:])), ratios

    # ...crossing over by 4-8 KB (paper: overtakes at 4 KB, +30 % at 8 KB).
    assert ratios[-1] >= 1.1, f"etroxy/bl at 8 KB = {ratios[-1]:.2f}"
    assert ratios[-2] >= 0.9, f"etroxy/bl at 4 KB = {ratios[-2]:.2f}"
