"""Fig. 5: message flow of Hybster vs Troxy-backed Hybster.

The paper's Fig. 5 is a message-flow diagram: (a) original Hybster,
(b) Troxy with the client connected to the leader's replica — one extra
phase for server-side reply collection — and (c) Troxy at a follower —
a further phase to forward the request to the leader.

We regenerate it as data: drive one isolated write through each
deployment, print the protocol trace, and assert the phase ordering
via the unloaded request latency (more sequential phases = higher
latency on an otherwise idle LAN).
"""

from repro.apps.kvstore import KvStore, put
from repro.bench.clusters import build_baseline, build_troxy
from repro.bench.report import save_and_print
from repro.obs.audit import LedgerProbes


def single_request_latency(cluster, client, rounds: int = 12) -> tuple[float, int]:
    """Mean unloaded latency over a few sequential writes (the LAN has
    jitter, so a single sample cannot order the deployments)."""
    outcomes = []

    def driver():
        for i in range(rounds):
            outcome = yield from client.invoke(put(f"k{i}", b"v"))
            outcomes.append(outcome)

    messages_before = cluster.net.messages_sent
    cluster.env.process(driver())
    cluster.env.run(until=cluster.env.now + 30.0)
    assert len(outcomes) == rounds, "requests did not complete"
    mean_latency = sum(o.latency for o in outcomes) / rounds
    messages = (cluster.net.messages_sent - messages_before) // rounds
    return mean_latency, messages


def run_fig5():
    rows = []

    cluster = build_baseline(seed=1, app_factory=KvStore, trace=True)
    client = cluster.new_client(read_optimization=False)
    latency, messages = single_request_latency(cluster, client)
    rows.append(("hybster (client at leader)", latency, messages))

    cluster = build_troxy(seed=1, app_factory=KvStore, trace=True)
    client = cluster.new_client(contact_index=0)  # replica-0 leads view 0
    latency, messages = single_request_latency(cluster, client)
    rows.append(("troxy at leader (+1 phase)", latency, messages))
    leader_trace = cluster.tracer.filter(category="proto.send")

    cluster = build_troxy(seed=1, app_factory=KvStore, trace=True)
    client = cluster.new_client(contact_index=1)
    latency, messages = single_request_latency(cluster, client)
    rows.append(("troxy at follower (+2 phases)", latency, messages))

    # Same troxy-at-leader cell with the accountability ledgers on
    # (repro.obs.audit probes, checkpoint interval 64): the only
    # simulated-time cost is the periodic certify_ledger ecall.
    cluster = build_troxy(seed=1, app_factory=KvStore, trace=True)
    probes = LedgerProbes(checkpoint_interval=64).attach(cluster)
    client = cluster.new_client(contact_index=0)
    probed_latency, _messages = single_request_latency(cluster, client)
    audit = (probed_latency, sum(len(l.entries) for l in probes.ledgers.values()),
             sum(l.checkpoints_requested for l in probes.ledgers.values()))

    return rows, leader_trace, audit


def test_fig5_message_flow(run_once):
    rows, leader_trace, audit = run_once(run_fig5)
    lines = ["Fig. 5 — single ordered write, unloaded LAN", "=" * 44]
    for name, latency, messages in rows:
        lines.append(f"{name:34s} latency {latency * 1e6:9.1f} us   protocol msgs {messages:3d}")
    lines.append("")
    lines.append("leader-side protocol sends (Troxy at leader):")
    for record in leader_trace[:12]:
        lines.append("  " + str(record))

    troxy_latency = rows[1][1]
    probed_latency, ledger_entries, checkpoints = audit
    overhead = (probed_latency - troxy_latency) / troxy_latency
    lines.append("")
    lines.append("audit-ledger probe overhead (troxy at leader, checkpoint interval 64):")
    lines.append(
        f"  ledgers off {troxy_latency * 1e6:9.1f} us   "
        f"ledgers on {probed_latency * 1e6:9.1f} us   "
        f"delta {overhead * 100:+.2f}%"
    )
    lines.append(
        f"  {ledger_entries} ledger entries, {checkpoints} certify_ledger "
        "ecall(s) across the run"
    )
    save_and_print("fig5", "\n".join(lines))

    # The accountability ledgers ride the existing send/delivery paths;
    # their only simulated-time cost is the periodic checkpoint ecall,
    # which must stay inside the 3% latency budget.
    assert ledger_entries > 0
    assert abs(overhead) < 0.03

    bl, troxy_leader, troxy_follower = (latency for _n, latency, _m in rows)
    # (b) adds the server-side reply collection phase over (a).
    assert troxy_leader > bl
    # (c) adds the forward-to-leader phase over (b).
    assert troxy_follower > troxy_leader
    # But each extra phase is a LAN hop: well under 2x per step.
    assert troxy_follower < 3 * bl

    # The client exchanged exactly one request and one reply in Troxy
    # mode regardless of contact point; extra messages are server-side.
    _, _, bl_msgs = rows[0]
    for _name, _latency, msgs in rows[1:]:
        assert msgs >= bl_msgs  # relocation adds server-side messages
