"""Ablation D2 — why writes must invalidate *before* replying.

Break the invalidation (writes touch no cache keys) and replay a
write-then-read scenario: the fast-read quorum happily serves the stale
value, and the linearizability checker catches it. With invalidation
intact, the same scenario is clean — the mechanism is load-bearing,
not decorative.
"""

from repro.analysis.linearizability import OpRecord, check_linearizable
from repro.apps.kvstore import KvStore, get, put
from repro.bench.clusters import build_troxy
from repro.bench.report import save_and_print


def run_scenario(break_invalidation: bool):
    cluster = build_troxy(seed=17, app_factory=KvStore)
    if break_invalidation:
        for core in cluster.cores:
            core.keys_fn = lambda op: ()  # writes invalidate nothing
    client = cluster.new_client(contact_index=0)
    history: list[OpRecord] = []

    def record(kind, value, start):
        history.append(
            OpRecord(client.client_id, kind, "k", value, start, cluster.env.now)
        )

    def driver():
        # The epsilon gaps keep successive intervals disjoint: touching
        # intervals count as concurrent under real-time precedence.
        start = cluster.env.now
        yield from client.invoke(put("k", b"v1"))
        record("put", b"v1", start)
        yield cluster.env.timeout(1e-6)
        start = cluster.env.now
        outcome = yield from client.invoke(get("k"))
        record("get", outcome.result.content, start)
        yield cluster.env.timeout(1e-6)
        start = cluster.env.now
        yield from client.invoke(put("k", b"v2"))
        record("put", b"v2", start)
        yield cluster.env.timeout(1e-6)
        start = cluster.env.now
        outcome = yield from client.invoke(get("k"))
        record("get", outcome.result.content, start)

    cluster.env.process(driver())
    cluster.env.run(until=30.0)
    return history, cluster.cores[0].stats


def run_ablation():
    broken_history, broken_stats = run_scenario(break_invalidation=True)
    intact_history, intact_stats = run_scenario(break_invalidation=False)
    return broken_history, intact_history, broken_stats, intact_stats


def test_ablation_write_invalidation(run_once):
    broken_history, intact_history, broken_stats, intact_stats = run_once(run_ablation)

    broken_ok = check_linearizable(broken_history)
    intact_ok = check_linearizable(intact_history)
    lines = ["Ablation D2 — write invalidation removed", "=" * 42]
    lines.append(f"with invalidation   : final read = "
                 f"{intact_history[-1].value!r}, linearizable = {intact_ok}")
    lines.append(f"without invalidation: final read = "
                 f"{broken_history[-1].value!r}, linearizable = {broken_ok}")
    save_and_print("ablation_invalidation", "\n".join(lines))

    # Broken invalidation serves the pre-write value from the cache...
    assert broken_history[-1].value == b"v1"
    assert not broken_ok  # ...which the checker correctly rejects.
    assert broken_stats.fast_read_hits >= 1  # the stale hit really was a fast read

    # The real system returns the new value and stays linearizable.
    assert intact_history[-1].value == b"v2"
    assert intact_ok
