"""Fig. 10: concurrency handling — 1 % writes among reads.

Paper shape: under write contention, the baseline's optimistic read
quorum fails for ~50 % of reads, which must then be ordered a second
time — its read "optimization" ends up at roughly half of the
all-ordered reference throughput. Troxy's invalidation-driven cache is
conservative, so its conflict rate stays much lower (~14 %), and the
adaptive total-order switch guarantees the lower-bound performance.
"""

from repro.bench.experiments import fig10_write_contention
from repro.bench.report import save_and_print


def by_system(points):
    return {p.system: p for p in points}


def test_fig10_write_contention(run_once):
    points = run_once(fig10_write_contention)
    systems = by_system(points)
    lines = ["Fig. 10 — 1 % writes, contended keys", "=" * 40]
    for name, point in systems.items():
        lines.append(
            f"{name:18s} {point.throughput:>10.0f} op/s   "
            f"read conflicts {point.extra['conflict_rate'] * 100:5.1f}%"
        )
    save_and_print("fig10", "\n".join(lines))

    bl_opt = systems["bl-read-opt"]
    bl_ref = systems["bl-ordered"]
    troxy_fast = systems["troxy-fast-read"]
    troxy_adaptive = systems["troxy-adaptive"]
    troxy_ref = systems["troxy-ordered"]

    # Contention is visible: the baseline's optimistic quorums do fail
    # (our replicas execute with far less skew than the paper's Java
    # stack, so the absolute rate is lower than their ~50 %; see
    # EXPERIMENTS.md), and Troxy's cache observes invalidation churn.
    assert bl_opt.extra["conflict_rate"] > 0.01
    assert troxy_fast.extra["conflict_rate"] > 0.10

    # The paper's headline: under write contention the baseline's read
    # "optimization" stops paying — it lands at or below its own
    # all-ordered reference (their Fig. 10 shows it at half).
    assert bl_opt.throughput < bl_ref.throughput

    # Troxy's managed cache still beats the optimistic scheme here.
    assert troxy_fast.throughput > bl_opt.throughput

    # The adaptive switch guarantees the lower bound: within a whisker
    # of the all-ordered reference even while latched.
    assert troxy_adaptive.throughput >= 0.8 * troxy_ref.throughput
