#!/usr/bin/env python3
"""A replicated HTTP service behind Troxy (the Section VI-D scenario).

The same HTTP page service runs in four deployments — standalone
("Jetty"), baseline Hybster with client-side voting, Prophecy middlebox,
and Troxy — and the same unmodified HTTP client measures GET latency
against each, locally and over a simulated 100 +/- 20 ms WAN.

Run:  python examples/http_service.py
"""

from repro.analysis.metrics import Collector
from repro.apps.httpd import HttpPageService, get_operation, parse_response, post_operation
from repro.bench.clusters import (
    WAN_DELAY,
    build_baseline,
    build_prophecy,
    build_standalone,
    build_troxy,
)


def run_requests(cluster, client, n=30):
    collector = Collector()

    def driver():
        response = None
        for i in range(n):
            outcome = yield from client.invoke(get_operation(f"/page/{i % 8}"))
            response = parse_response(outcome.result.content)
            collector.record(cluster.env.now, outcome.latency)
        assert response is not None and response.status == 200

    cluster.env.process(driver())
    cluster.env.run(until=cluster.env.now + 120.0)
    return collector.summarize(0.0, cluster.env.now)


def main():
    for scenario, wan in (("local network", None), ("WAN 100±20 ms", WAN_DELAY)):
        print(f"\n=== {scenario} ===")
        for name, build in (
            ("standalone (Jetty)", build_standalone),
            ("baseline (client-side voting)", build_baseline),
            ("Prophecy middlebox", build_prophecy),
            ("Troxy", build_troxy),
        ):
            cluster = build(seed=11, app_factory=HttpPageService, wan=wan)
            if name.startswith("baseline"):
                client = cluster.new_client()
            else:
                client = cluster.new_client()
            summary = run_requests(cluster, client)
            print(f"  {name:32s} mean GET latency {summary.mean_latency * 1000:8.2f} ms")
        print("  (Troxy's voter sits next to the replicas: one WAN round trip.)")


if __name__ == "__main__":
    main()
