#!/usr/bin/env python3
"""Fault tour: Troxy crash, untrusted-host tampering, leader failure.

Shows the fault handling of Section III-D end to end:

1. the client's contact Troxy crashes -> the client reconnects to the
   next server and retransmits, exactly like against any web service;
2. the untrusted part of a replica corrupts a sealed reply -> the client
   detects a corrupted channel and fails over;
3. the Hybster leader dies -> a view change elects a new leader and the
   service keeps going, invisibly to the client.

Run:  python examples/failover.py
"""

import dataclasses

from repro.apps.base import Payload
from repro.apps.kvstore import KvStore, get, put
from repro.bench.clusters import build_troxy
from repro.hybster.secure import SecureEnvelope


def main():
    cluster = build_troxy(seed=3, app_factory=KvStore)
    client = cluster.new_client(contact_index=1, request_timeout=1.0)
    events = []

    def scenario():
        outcome = yield from client.invoke(put("account", b"balance=100"))
        events.append(("write through " + client.contact.replica_id, outcome))

        # 1. Crash the contact server (replica + its Troxy).
        crashed = client.contact.replica_id
        cluster.host_of(crashed).stop()
        outcome = yield from client.invoke(get("account"))
        events.append((f"read after {crashed} crashed (failovers={client.stats.failovers})", outcome))

        # 2. The (new) contact's untrusted host corrupts one sealed reply.
        original_send = cluster.net.send
        state = {"armed": True}

        def tampering_send(src, dst, payload, size=None, **kwargs):
            if (
                state["armed"]
                and src == client.contact.replica_id
                and dst.startswith("client-machine")
                and isinstance(payload, SecureEnvelope)
            ):
                state["armed"] = False
                forged = dataclasses.replace(
                    payload.body, result=Payload(b"balance=1000000")
                )
                payload = SecureEnvelope(payload.record, forged)
            return original_send(src, dst, payload, size, **kwargs)

        cluster.net.send = tampering_send
        outcome = yield from client.invoke(get("account"))
        events.append(
            (f"read despite reply tampering (invalid replies seen="
             f"{client.stats.invalid_replies})", outcome),
        )

    cluster.env.process(scenario())
    cluster.env.run(until=60.0)

    for label, outcome in events:
        print(f"{label:55s} -> {outcome.result.content!r}")

    # 3. Leader failure on a fresh cluster (only f=1 crashes are covered;
    # the scenario above already used up the budget on replica-1).
    print("\n--- leader crash / view change (fresh cluster) ---")
    cluster2 = build_troxy(seed=4, app_factory=KvStore)
    client2 = cluster2.new_client(contact_index=1, request_timeout=2.0)
    events2 = []

    def scenario2():
        outcome = yield from client2.invoke(put("account", b"balance=100"))
        events2.append(("write in view 0", outcome))
        cluster2.host_of("replica-0").stop()  # the view-0 leader
        outcome = yield from client2.invoke(put("account", b"balance=42"))
        events2.append(("write after leader crash (view change)", outcome))
        outcome = yield from client2.invoke(get("account"))
        events2.append(("final read", outcome))

    cluster2.env.process(scenario2())
    cluster2.env.run(until=120.0)
    for label, outcome in events2:
        print(f"{label:55s} -> {outcome.result.content!r}")
    views = {r.replica_id: r.view for r in cluster2.replicas[1:]}
    print(f"\nsurviving replicas' views: {views} (view change happened: "
          f"{any(v > 0 for v in views.values())})")


if __name__ == "__main__":
    main()
