#!/usr/bin/env python3
"""Fault tour: Troxy crash, untrusted-host tampering, leader failure.

Shows the fault handling of Section III-D end to end, staged through the
declarative fault plane (:mod:`repro.faults`):

1. the client's contact Troxy crashes -> the client reconnects to the
   next server and retransmits, exactly like against any web service;
2. the untrusted part of a replica corrupts a sealed reply -> the client
   detects a corrupted channel and fails over;
3. the Hybster leader dies -> a view change elects a new leader and the
   service keeps going, invisibly to the client.

Run:  python examples/failover.py
"""

from repro.apps.kvstore import KvStore, get, put
from repro.bench.clusters import build_troxy
from repro.faults import FaultPlane, HostTamper, ReplicaCrash


def main():
    cluster = build_troxy(seed=3, app_factory=KvStore)
    plane = FaultPlane(cluster)
    client = cluster.new_client(contact_index=1, request_timeout=1.0)
    events = []

    def scenario():
        outcome = yield from client.invoke(put("account", b"balance=100"))
        events.append(("write through " + client.contact.replica_id, outcome))

        # 1. Crash the contact server (replica + its Troxy).
        crashed = client.contact.replica_id
        plane.inject(ReplicaCrash(crashed))
        outcome = yield from client.invoke(get("account"))
        events.append((f"read after {crashed} crashed (failovers={client.stats.failovers})", outcome))

        # 2. The (new) contact's untrusted host corrupts one sealed reply.
        plane.inject(HostTamper(
            client.contact.replica_id, forged_result=b"balance=1000000", count=1
        ))
        outcome = yield from client.invoke(get("account"))
        events.append(
            (f"read despite reply tampering (invalid replies seen="
             f"{client.stats.invalid_replies})", outcome),
        )

    cluster.env.process(scenario())
    cluster.env.run(until=60.0)

    for label, outcome in events:
        print(f"{label:55s} -> {outcome.result.content!r}")

    print("\nfault plane log:")
    for entry in plane.log:
        print(f"  t={entry['t']:.3f}  {entry['event']:6s} {entry['fault']}")

    # 3. Leader failure on a fresh cluster (only f=1 crashes are covered;
    # the scenario above already used up the budget on replica-1).
    print("\n--- leader crash / view change (fresh cluster) ---")
    cluster2 = build_troxy(seed=4, app_factory=KvStore)
    plane2 = FaultPlane(cluster2)
    client2 = cluster2.new_client(contact_index=1, request_timeout=2.0)
    events2 = []

    def scenario2():
        outcome = yield from client2.invoke(put("account", b"balance=100"))
        events2.append(("write in view 0", outcome))
        plane2.inject(ReplicaCrash("replica-0"))  # the view-0 leader
        outcome = yield from client2.invoke(put("account", b"balance=42"))
        events2.append(("write after leader crash (view change)", outcome))
        outcome = yield from client2.invoke(get("account"))
        events2.append(("final read", outcome))

    cluster2.env.process(scenario2())
    cluster2.env.run(until=120.0)
    for label, outcome in events2:
        print(f"{label:55s} -> {outcome.result.content!r}")
    views = {r.replica_id: r.view for r in cluster2.replicas[1:]}
    print(f"\nsurviving replicas' views: {views} (view change happened: "
          f"{any(v > 0 for v in views.values())})")


if __name__ == "__main__":
    main()
