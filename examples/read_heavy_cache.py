#!/usr/bin/env python3
"""The fast-read cache under a read-heavy workload, and the adaptive
total-order switch under write contention (Sections IV and VI-C3).

Phase 1: many clients read a small set of hot keys -> almost everything
is served by the f+1 cache quorum without ordering.
Phase 2: writers hammer the same keys -> conflicts spike, the conflict
monitor trips, and the Troxy falls back to ordered reads (bounded
worst case instead of pathological conflict retries).

Run:  python examples/read_heavy_cache.py
"""

from repro.apps.kvstore import KvStore, get, put
from repro.bench.clusters import build_troxy
from repro.troxy.monitor import ConflictMonitor


def main():
    cluster = build_troxy(
        seed=21,
        app_factory=KvStore,
        monitor_factory=lambda: ConflictMonitor(threshold=0.3, min_samples=16, window=32),
    )
    readers = [cluster.new_client(contact_index=0) for _ in range(6)]
    writer = cluster.new_client(contact_index=1)
    hot_keys = [f"item-{i}" for i in range(4)]

    def seed_data():
        for key in hot_keys:
            yield from writer.invoke(put(key, f"value of {key}".encode()))

    cluster.env.process(seed_data())
    cluster.env.run(until=10.0)

    def reader_loop(client, rounds):
        for i in range(rounds):
            yield from client.invoke(get(hot_keys[i % len(hot_keys)]))

    # Phase 1: read-heavy, no contention.
    for reader in readers:
        cluster.env.process(reader_loop(reader, 40))
    cluster.env.run(until=40.0)
    core = cluster.cores[0]
    print("phase 1 (read-heavy, no writes):")
    print(f"  fast-read hits      : {core.stats.fast_read_hits}")
    print(f"  ordered requests    : {core.stats.ordered_requests}")
    print(f"  conflict rate       : {core.monitor.conflict_rate * 100:.0f}%")
    print(f"  total-order mode    : {core.monitor.total_order_mode}")

    # Phase 2: writers create contention on the same keys.
    def writer_loop(rounds):
        for i in range(rounds):
            yield from writer.invoke(put(hot_keys[i % len(hot_keys)], b"changed"))

    cluster.env.process(writer_loop(120))
    for reader in readers:
        cluster.env.process(reader_loop(reader, 60))
    cluster.env.run(until=120.0)
    print("\nphase 2 (write contention on the hot keys):")
    print(f"  conflicts observed  : {core.monitor.stats.conflicts}")
    print(f"  switched to ordered : {core.monitor.stats.switches_to_total_order} time(s)")
    print(f"  total-order mode now: {core.monitor.total_order_mode}")
    print(f"  probes while latched: {core.monitor.stats.probes}")
    print("\nthe switch bounds the worst case: instead of repeatedly failing")
    print("cache quorums, contended reads are ordered like writes until the")
    print("monitor's probes see the conflicts subside.")


if __name__ == "__main__":
    main()
