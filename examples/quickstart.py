#!/usr/bin/env python3
"""Quickstart: a legacy client talking to a Byzantine fault-tolerant
key-value store — without knowing it.

Builds a Troxy-backed Hybster cluster (f=1, so 3 replicas), connects one
completely ordinary client (single TLS connection, single reply, no
voting), and runs a few operations. Then a replica turns Byzantine and
the client keeps getting correct answers.

Run:  python examples/quickstart.py
"""

from repro.apps.base import Payload
from repro.apps.kvstore import KvStore, get, put
from repro.bench.clusters import build_troxy


def main():
    cluster = build_troxy(seed=7, app_factory=KvStore)
    client = cluster.new_client()
    print(f"cluster: {cluster.config.n} replicas, tolerating f={cluster.config.f} faults")
    print(f"client connects to ONE server: {client.contact.replica_id}\n")

    log = []

    def scenario():
        result = yield from client.invoke(put("greeting", b"hello, byzantine world"))
        log.append(("put", result))
        result = yield from client.invoke(get("greeting"))
        log.append(("get (ordered, warms cache)", result))
        result = yield from client.invoke(get("greeting"))
        log.append(("get (fast read from cache)", result))
        # Make one replica lie about every result from now on.
        class Liar(KvStore):
            def execute(self, op):
                super().execute(op)
                return Payload(b"\xffgarbage")

        cluster.replicas[2].app = Liar()
        result = yield from client.invoke(put("greeting", b"still works"))
        log.append(("put (1 Byzantine replica)", result))
        result = yield from client.invoke(get("greeting"))
        log.append(("get (1 Byzantine replica)", result))

    cluster.env.process(scenario())
    cluster.env.run(until=30.0)

    for label, outcome in log:
        print(f"{label:28s} -> {outcome.result.content!r}  ({outcome.latency * 1000:.2f} ms)")

    core = cluster.cores[0]
    print(f"\nfast-read cache at {client.contact.replica_id}: "
          f"{core.stats.fast_read_hits} fast read(s), "
          f"{core.stats.ordered_requests} ordered request(s)")
    print("the client never saw a vote, a replica list, or the garbage reply.")


if __name__ == "__main__":
    main()
