#!/usr/bin/env python3
"""Migrating a service to BFT without touching its clients (Section III-E).

The paper walks through moving a crash-tolerant RESTful web service to a
Troxy-backed BFT deployment. This example stages that story:

  1. the service runs standalone; a plain HTTP-over-TLS client uses it;
  2. the *same application code* and the *same client* move to the
     Troxy-backed cluster — only the address changed (as a location
     service would arrange);
  3. a replica starts misbehaving; the client neither notices nor cares.

The point of the exercise: count what had to change. Application: ported
to the (Paxos-like) state-machine interface it already satisfied.
Client: nothing.
"""

from repro.apps.base import Payload
from repro.apps.httpd import HttpPageService, get_operation, parse_response, post_operation
from repro.bench.clusters import build_standalone, build_troxy


def browse(cluster, client, label):
    results = []

    def driver():
        outcome = yield from client.invoke(post_operation("/page/3", b"<edited/>"))
        results.append(("POST /page/3", parse_response(outcome.result.content).status))
        outcome = yield from client.invoke(get_operation("/page/3"))
        response = parse_response(outcome.result.content)
        results.append(("GET  /page/3", response.status))
        results.append(("  body starts", response.body[:9].decode("latin-1")))

    cluster.env.process(driver())
    cluster.env.run(until=cluster.env.now + 30.0)
    print(f"\n--- {label} ---")
    for what, value in results:
        print(f"  {what}: {value}")


def main():
    print("step 1: unreplicated service (what exists today)")
    standalone = build_standalone(seed=5, app_factory=HttpPageService)
    client = standalone.new_client()
    browse(standalone, client, "standalone server, legacy HTTPS client")

    print("\nstep 2: same app + same kind of client, now on Troxy-backed BFT")
    cluster = build_troxy(seed=5, app_factory=HttpPageService)
    client = cluster.new_client()  # identical client code; new address
    browse(cluster, client, f"3 replicas (f=1), client talks to {client.contact.replica_id} only")

    print("\nstep 3: one replica turns Byzantine")

    class Corrupted(HttpPageService):
        def execute(self, op):
            super().execute(op)
            return Payload(b"HTTP/1.1 200 OK\r\nContent-Length: 4\r\n\r\nEVIL")

    cluster.replicas[2].app = Corrupted()
    browse(cluster, client, "after corrupting replica-2 (client unchanged)")

    print("\nmigration bill of materials:")
    print("  - application: implements execute/snapshot/restore (it already")
    print("    had to, for Paxos/Raft-style crash tolerance)")
    print("  - Troxy: only needed HTTP message boundaries (Content-Length)")
    print("  - client: zero changes, zero extra bandwidth, zero voting")


if __name__ == "__main__":
    main()
