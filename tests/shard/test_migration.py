"""Live shard migration end to end (docs/SHARDING.md).

The protocol under test: freeze the moving slice, fence the source
group, collect f+1 matching snapshots, install the state through the
destination group's ordered path, re-certify the manifest on fresh
sealed counters, then cut the ring over atomically and retire the
moved keys at the source.
"""

import pytest

from repro.apps.kvstore import KvStore, get, put
from repro.shard import build_sharded
from repro.shard.migrate import filter_kv_snapshot, manifest_digest


def _moving_keys(cluster, fraction=0.5, universe=96):
    tokens = cluster.ring.plan_move("g0", "g1", fraction)
    pred = cluster.ring.keys_moving(tokens)
    return [
        k for k in (f"k{i}" for i in range(universe))
        if cluster.ring.owner(k) == "g0" and pred(k)
    ]


def _seed_and_migrate(cluster, moving, extra_driver=None, until=90.0):
    """Write every moving key, then run one g0 -> g1 migration."""
    client = cluster.new_client()
    done = []

    def seed_then_move():
        for key in moving:
            yield from client.invoke(put(key, b"v:" + key.encode()))
        yield from cluster.migrator.migrate("g0", "g1", fraction=0.5)
        done.append(True)

    cluster.env.process(seed_then_move())
    if extra_driver is not None:
        cluster.env.process(extra_driver())
    cluster.env.run(until=until)
    assert done, "migration never finished"
    return cluster.migrator.reports[-1]


def test_migration_moves_state_and_retires_the_source():
    cluster = build_sharded(seed=21, shards=2, app_factory=KvStore)
    moving = _moving_keys(cluster)
    assert moving, "seed 21 must hash some keys into the moving slice"

    report = _seed_and_migrate(cluster, moving)
    assert report.completed and not report.reason
    assert report.rounds >= 2  # stability requires two equal rounds
    assert report.moved_keys >= len(moving)
    assert report.certificates >= cluster.config.commit_quorum
    assert report.frozen_for > 0.0

    # The ring now routes every moved key to g1 ...
    for key in moving:
        assert cluster.ring.owner(key) == "g1", key
    # ... the destination replicas hold the values ...
    for replica in cluster.group("g1").replicas:
        for key in moving:
            assert replica.app._data.get(key) == b"v:" + key.encode(), key
    # ... and the source retired them.
    for replica in cluster.group("g0").replicas:
        for key in moving:
            assert key not in replica.app._data, key

    # Post-cut-over reads see the moved values through the normal path.
    client = cluster.new_client()
    reads = []

    def reader():
        for key in moving[:3]:
            outcome = yield from client.invoke(get(key))
            reads.append(outcome.result.content)

    cluster.env.process(reader())
    cluster.env.run(until=cluster.env.now + 30.0)
    assert reads == [b"v:" + key.encode() for key in moving[:3]]


def test_migration_survives_destination_leader_crash():
    cluster = build_sharded(seed=33, shards=2, app_factory=KvStore)
    moving = _moving_keys(cluster)

    def crash_dst_leader():
        yield cluster.env.timeout(0.05)
        cluster.group("g1").replicas[0].stop()

    report = _seed_and_migrate(
        cluster, moving, extra_driver=crash_dst_leader, until=120.0
    )
    assert report.completed and not report.reason
    assert cluster.group("g1").leader.view > 0, "no view change happened"
    live = cluster.group("g1").replicas[1:]
    for replica in live:
        for key in moving:
            assert replica.app._data.get(key) == b"v:" + key.encode(), key
    # Certification still reached quorum with the leader dead (f+1 of
    # the surviving replicas' sealed counters).
    assert report.certificates >= cluster.config.commit_quorum


def test_writes_frozen_mid_migration_resolve_by_retry():
    cluster = build_sharded(seed=21, shards=2, app_factory=KvStore)
    moving = _moving_keys(cluster)
    target = moving[0]
    writer_done = []

    def contending_writer():
        # Start mid-freeze: the write is dropped by the router and the
        # legacy client's retransmission loop carries it past cut-over.
        yield cluster.env.timeout(0.08)
        client = cluster.new_client(request_timeout=0.5)
        yield from client.invoke(put(target, b"late"))
        writer_done.append(True)

    report = _seed_and_migrate(cluster, moving, extra_driver=contending_writer)
    assert report.completed
    assert writer_done, "frozen write never completed"
    assert cluster.router.stats.frozen_rejects > 0
    assert not cluster.router.frozen
    # The late write landed in the key's post-migration home (g1).
    owner = cluster.ring.owner(target)
    assert owner == "g1"
    assert any(
        r.app._data.get(target) == b"late"
        for r in cluster.group(owner).replicas
    )


def test_filter_and_digest_helpers():
    from repro.apps.kvstore import encode_kv_records

    store = KvStore()
    for op in (put("a", b"1"), put("b", b"2"), put("__g1/pin", b"x")):
        store.execute(op)
    snapshot = store.snapshot()
    pairs = filter_kv_snapshot(snapshot, lambda key: key != "b")
    assert pairs == [("a", b"1")]  # pinned keys never migrate
    assert manifest_digest(pairs) == manifest_digest([("a", b"1")])
    assert manifest_digest(pairs) != manifest_digest([("a", b"2")])
    assert encode_kv_records(pairs)  # round-trips through the install op


def test_migrating_between_unknown_groups_fails_cleanly():
    cluster = build_sharded(seed=5, shards=2, app_factory=KvStore)

    def bad():
        with pytest.raises(ValueError):
            yield from cluster.migrator.migrate("g0", "g9")
        with pytest.raises(ValueError):
            yield from cluster.migrator.migrate("g0", "g0")

    cluster.env.process(bad())
    cluster.env.run(until=5.0)
    assert not cluster.router.frozen
