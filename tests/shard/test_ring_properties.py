"""Property suite for the consistent-hash ring (docs/SHARDING.md).

Three properties carry the sharding design:

* **balance** — with 64 virtual nodes per group no group owns more than
  2x its fair share of a uniform keyspace (and never zero);
* **minimal remap** — adding or removing a group only remaps the keys
  whose successor token changed; everything else stays put. The same
  holds for a planned token move: exactly the keys under the moved
  tokens change owner;
* **determinism** — placement is a pure function of (salt, groups,
  vnodes); rebuilding a ring from the same RNG seed reproduces every
  owner decision bit for bit.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.shard.ring import HashRing, ring_from_rng
from repro.sim.rng import RngTree

KEYS = [f"k{i}" for i in range(512)]

salts = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz0123456789", min_size=0, max_size=12
)
group_counts = st.integers(min_value=2, max_value=8)


def _groups(count: int) -> list[str]:
    return [f"g{i}" for i in range(count)]


@given(salts, group_counts)
@settings(max_examples=60, deadline=None)
def test_ring_balance_bound(salt, count):
    ring = HashRing(_groups(count), vnodes=64, salt=salt)
    split = ring.load_split(KEYS)
    fair = len(KEYS) / count
    assert max(split.values()) <= 2.0 * fair, split
    assert min(split.values()) > 0, split


@given(salts, group_counts)
@settings(max_examples=60, deadline=None)
def test_adding_a_group_remaps_minimally(salt, count):
    ring = HashRing(_groups(count), vnodes=64, salt=salt)
    before = {key: ring.owner(key) for key in KEYS}
    ring.add_group("gnew")
    for key in KEYS:
        after = ring.owner(key)
        # A key either kept its owner or moved to the new group; keys
        # never shuffle between pre-existing groups.
        assert after in (before[key], "gnew"), (key, before[key], after)
    moved = sum(1 for key in KEYS if ring.owner(key) == "gnew")
    assert moved > 0, "the new group attracted no keys"


@given(salts, group_counts)
@settings(max_examples=60, deadline=None)
def test_removing_a_group_remaps_minimally(salt, count):
    ring = HashRing(_groups(count), vnodes=64, salt=salt)
    before = {key: ring.owner(key) for key in KEYS}
    victim = "g0"
    ring.remove_group(victim)
    for key in KEYS:
        if before[key] != victim:
            # Only the departed group's keys may change owner.
            assert ring.owner(key) == before[key], key
        else:
            assert ring.owner(key) != victim, key


@given(salts, group_counts, st.floats(min_value=0.1, max_value=1.0))
@settings(max_examples=60, deadline=None)
def test_token_move_remaps_exactly_the_moved_slice(salt, count, fraction):
    ring = HashRing(_groups(count), vnodes=64, salt=salt)
    before = {key: ring.owner(key) for key in KEYS}
    tokens = ring.plan_move("g0", "g1", fraction)
    moving = ring.keys_moving(tokens)
    ring.apply_move(tokens, "g1")
    for key in KEYS:
        if moving(key):
            assert before[key] == "g0", key
            assert ring.owner(key) == "g1", key
        else:
            assert ring.owner(key) == before[key], key


@given(st.integers(min_value=0, max_value=2**32 - 1), group_counts)
@settings(max_examples=40, deadline=None)
def test_placement_is_deterministic_under_a_fixed_seed(seed, count):
    groups = _groups(count)
    one = ring_from_rng(groups, RngTree(seed).derive("shard", "ring"))
    two = ring_from_rng(groups, RngTree(seed).derive("shard", "ring"))
    assert one.salt == two.salt
    assert [one.owner(key) for key in KEYS] == [two.owner(key) for key in KEYS]
    # A different seed yields a different layout (statistically certain:
    # 512 keys over >= 2 groups agreeing everywhere is ~impossible).
    other = ring_from_rng(groups, RngTree(seed + 1).derive("shard", "ring"))
    if other.salt != one.salt:
        assert [one.owner(k) for k in KEYS] != [other.owner(k) for k in KEYS]


def test_membership_validation():
    import pytest

    with pytest.raises(ValueError):
        HashRing([])
    with pytest.raises(ValueError):
        HashRing(["g0", "g0"])
    ring = HashRing(["g0", "g1"], vnodes=8, salt="s")
    with pytest.raises(ValueError):
        ring.add_group("g0")
    with pytest.raises(ValueError):
        ring.plan_move("g0", "g1", 0.0)
    ring.remove_group("g1")
    with pytest.raises(ValueError):
        ring.remove_group("g0")
