"""End-to-end tests for sharded multi-group deployments (docs/SHARDING.md).

A sharded cell must stay transparent: legacy clients connect to any
replica of any group, never learn the topology, and still read their
own writes — whether the contacted Troxy owns the key (local path),
forwards the write into the owning group, or attests a remote fast
read back to the fronting enclave.
"""

import pytest

from repro.apps.kvstore import KvStore, get, put
from repro.shard import build_sharded


def _run_mixed_workload(shards, seed=7, clients=4, rounds=3):
    cluster = build_sharded(seed=seed, shards=shards, app_factory=KvStore)
    outcomes = {}

    def driver(index, client):
        mine = []
        for n in range(rounds):
            key = f"key-{index}-{n}"
            yield from client.invoke(put(key, f"v{index}/{n}".encode()))
            outcome = yield from client.invoke(get(key))
            mine.append((key, outcome.result.content))
        outcomes[index] = mine

    for index in range(clients):
        cluster.env.process(driver(index, cluster.new_client()))
    cluster.env.run(until=60.0)
    assert len(outcomes) == clients, "workload did not complete"
    return cluster, outcomes


@pytest.mark.parametrize("shards", [2, 4])
def test_clients_read_their_writes_across_groups(shards):
    cluster, outcomes = _run_mixed_workload(shards)
    for index, mine in outcomes.items():
        for n, (key, content) in enumerate(mine):
            assert content == f"v{index}/{n}".encode(), (key, content)

    # The keyspace genuinely spans groups and the forwarding path ran.
    keys = [key for mine in outcomes.values() for key, _ in mine]
    owners = {cluster.router.group_of_key(key) for key in keys}
    assert len(owners) > 1, "workload never crossed a group boundary"
    assert cluster.router.stats.forwards > 0
    assert sum(c.stats.forwarded_out for c in cluster.cores) > 0
    assert sum(c.stats.forwarded_in for c in cluster.cores) > 0

    # Every group made agreement progress on its own sealed counters.
    for group in cluster.groups:
        executed = sum(r.stats.executions for r in group.replicas)
        if any(
            cluster.router.group_of_key(key) == group.group_id for key in keys
        ):
            assert executed > 0, group.group_id


def test_remote_fast_reads_are_attested_back_to_the_fronting_troxy():
    # Pins the cross-group probe path; leases off so the CI lease
    # matrix cannot serve repeat reads locally (docs/READS.md).
    cluster = build_sharded(seed=11, shards=2, app_factory=KvStore, leases="off")
    client = cluster.new_client(contact_index=0)  # fronted by g0's replica-0
    remote_keys = [
        f"k{i}" for i in range(64)
        if cluster.router.group_of_key(f"k{i}") == "g1"
    ][:4]
    reads = []

    def driver():
        for key in remote_keys:
            yield from client.invoke(put(key, b"x" + key.encode()))
        for key in remote_keys:
            # Second read of each key hits the owning group's warm cache.
            for _ in range(2):
                outcome = yield from client.invoke(get(key))
                reads.append((key, outcome.result.content))

    cluster.env.process(driver())
    cluster.env.run(until=60.0)
    assert len(reads) == 2 * len(remote_keys), "workload did not complete"
    for key, content in reads:
        assert content == b"x" + key.encode()
    assert sum(c.stats.shard_fast_replies_sent for c in cluster.cores) > 0
    assert sum(c.stats.shard_fast_replies_accepted for c in cluster.cores) > 0


def test_pinned_keys_land_in_their_group():
    cluster = build_sharded(seed=3, shards=2, app_factory=KvStore)
    client = cluster.new_client()
    done = []

    def driver():
        yield from client.invoke(put("__g1/pinned", b"one"))
        outcome = yield from client.invoke(get("__g1/pinned"))
        done.append(outcome.result.content)

    cluster.env.process(driver())
    cluster.env.run(until=30.0)
    assert done == [b"one"]
    # The value lives in g1's replicas (and only there).
    g1_apps = [r.app._data.get("__g1/pinned") for r in cluster.group("g1").replicas]
    g0_apps = [r.app._data.get("__g1/pinned") for r in cluster.group("g0").replicas]
    assert any(v == b"one" for v in g1_apps)
    assert all(v is None for v in g0_apps)


def test_single_group_build_rejects_bad_shard_counts():
    with pytest.raises(ValueError):
        build_sharded(shards=0)
