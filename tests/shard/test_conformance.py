"""Shard=1 conformance: the sharded builder is wire-identical to the
plain Troxy deployment (docs/SHARDING.md).

The router is consulted on every request even at one group, but routing
charges no simulated CPU and a local decision takes the unchanged code
path — so a single-group sharded cell must reproduce the unsharded
protocol byte for byte: same messages, same order, same simulated
timestamps. This is the compatibility anchor that lets the fault
campaign swap ``build_sharded`` in for ``build_troxy`` whenever
``--shards`` is raised, without re-baselining any scenario.
"""

from repro.apps.kvstore import KvStore, put
from repro.bench.clusters import build_troxy
from repro.shard import build_sharded


def wire_trace(cluster) -> list[str]:
    return [str(r) for r in cluster.tracer.filter(category="proto.send")]


def run_sequential_writes(build, rounds: int = 8, **kwargs):
    cluster = build(seed=71, app_factory=KvStore, trace=True, **kwargs)
    client = cluster.new_client(contact_index=0)
    contents = []

    def driver():
        for i in range(rounds):
            outcome = yield from client.invoke(put(f"k{i}", b"v"))
            contents.append(outcome.result.content)

    cluster.env.process(driver())
    cluster.env.run(until=30.0)
    assert len(contents) == rounds, "workload did not complete"
    return cluster, contents


def test_one_group_cell_is_wire_identical_to_unsharded():
    plain, plain_results = run_sequential_writes(build_troxy)
    sharded, sharded_results = run_sequential_writes(build_sharded, shards=1)
    assert sharded_results == plain_results
    assert wire_trace(sharded) == wire_trace(plain)
    # The router really saw every request; it just never interfered.
    assert sharded.router.stats.lookups > 0
    assert sharded.router.stats.forwards == 0
    assert sharded.router.stats.frozen_rejects == 0


def test_one_group_cell_full_trace_matches():
    """Beyond the wire: the entire protocol trace (ecalls, cache traffic,
    agreement internals) is identical at shards=1."""
    plain, _ = run_sequential_writes(build_troxy)
    sharded, _ = run_sequential_writes(build_sharded, shards=1)
    assert [str(r) for r in sharded.tracer.records] == [
        str(r) for r in plain.tracer.records
    ]
