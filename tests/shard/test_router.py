"""Unit tests for the enclave-resident shard router (docs/SHARDING.md)."""

import pytest

from repro.apps.base import Operation, OpKind, Payload
from repro.shard.ring import HashRing
from repro.shard.router import RouteDecision, ShardRouter, pinned_group


def _read(key):
    return Operation(OpKind.READ, "get", key=key, body=Payload(b"r"))


def _write(key):
    return Operation(OpKind.WRITE, "put", key=key, body=Payload(b"w"))


def _router(groups=2, replicas=3, salt="test"):
    ring = HashRing([f"g{i}" for i in range(groups)], vnodes=32, salt=salt)
    members = {
        "g0": tuple(f"replica-{i}" for i in range(replicas)),
    }
    for g in range(1, groups):
        members[f"g{g}"] = tuple(
            f"g{g}-replica-{i}" for i in range(replicas)
        )
    return ShardRouter(ring, members)


def test_pinned_group_parsing():
    assert pinned_group("__g1/mig/fence") == "g1"
    assert pinned_group("__g0/x") == "g0"
    assert pinned_group("plain-key") is None
    assert pinned_group("__g1") is None  # no slash: not a pin
    assert pinned_group("k/__g1/x") is None


def test_local_and_forward_decisions_cover_the_keyspace():
    router = _router()
    for i in range(64):
        op = _write(f"k{i}")
        owner = router.ring.owner(op.key)
        seen_from_owner = router.route(op, router.members[owner][0])
        assert seen_from_owner.kind == "local"
        other = "g1" if owner == "g0" else "g0"
        decision = router.route(op, router.members[other][1])
        assert decision == RouteDecision(
            "forward", group=owner, target=router.members[owner][1]
        )
    assert router.stats.forwards == 64
    assert router.stats.lookups == 128


def test_forwarding_targets_the_same_index_replica():
    router = _router()
    key = next(k for k in (f"k{i}" for i in range(64))
               if router.ring.owner(k) == "g1")
    for index in range(3):
        decision = router.route(_write(key), f"replica-{index}")
        assert decision.target == f"g1-replica-{index}"


def test_pinned_keys_bypass_the_ring():
    router = _router()
    decision = router.route(_write("__g1/control"), "replica-0")
    assert decision.kind == "forward" and decision.group == "g1"
    assert router.route(_write("__g0/control"), "replica-0").kind == "local"
    with pytest.raises(ValueError):
        router.route(_write("__g9/unknown"), "replica-0")


def test_freeze_rejects_writes_but_never_reads_or_pins():
    router = _router()
    frozen_key = next(k for k in (f"k{i}" for i in range(64))
                      if router.ring.owner(k) == "g0")
    router.freeze(lambda key: key == frozen_key)
    assert router.route(_write(frozen_key), "replica-0").kind == "frozen"
    # Reads sail through a freeze: only writes could be lost mid-move.
    assert router.route(_read(frozen_key), "replica-0").kind == "local"
    # Pinned control keys are never frozen (the migrator depends on it).
    assert router.route(_write("__g0/fence"), "replica-0").kind == "local"
    # Other keys are unaffected.
    other = next(k for k in (f"k{i}" for i in range(64))
                 if k != frozen_key and router.ring.owner(k) == "g0")
    assert router.route(_write(other), "replica-0").kind == "local"
    assert router.stats.frozen_rejects == 1

    with pytest.raises(RuntimeError):
        router.freeze(lambda key: True)  # one migration at a time
    router.unfreeze()
    assert router.route(_write(frozen_key), "replica-0").kind == "local"


def test_single_group_router_never_forwards_or_rejects():
    router = _router(groups=1)
    for i in range(32):
        assert router.route(_write(f"k{i}"), "replica-0").kind == "local"
        assert router.route(_read(f"k{i}"), "replica-2").kind == "local"
    assert router.stats.forwards == 0
    assert router.stats.frozen_rejects == 0
