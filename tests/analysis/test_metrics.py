"""Unit tests for metrics collection."""

import pytest

from repro.analysis.metrics import Collector, Summary, percentile


def test_percentile_empty_and_single():
    assert percentile([], 0.5) == 0.0
    assert percentile([7.0], 0.99) == 7.0


def test_percentile_interpolates():
    values = [0.0, 10.0]
    assert percentile(values, 0.5) == pytest.approx(5.0)
    assert percentile(values, 0.0) == 0.0
    assert percentile(values, 1.0) == 10.0


def test_collector_window_filtering():
    collector = Collector()
    collector.record(completed_at=1.0, latency=0.010)
    collector.record(completed_at=5.0, latency=0.020)
    collector.record(completed_at=9.0, latency=0.030)
    summary = collector.summarize(4.0, 10.0)
    assert summary.count == 2
    assert summary.throughput == pytest.approx(2 / 6.0)
    assert summary.mean_latency == pytest.approx(0.025)


def test_summary_conflict_rate():
    collector = Collector()
    collector.record(completed_at=1.0, latency=0.01, conflict=True)
    collector.record(completed_at=1.1, latency=0.01, conflict=False)
    summary = collector.summarize(0.0, 2.0)
    assert summary.conflict_rate == pytest.approx(0.5)


def test_summary_empty_window():
    summary = Collector().summarize(0.0, 1.0)
    assert summary.count == 0
    assert summary.throughput == 0.0


def test_summary_rejects_bad_window():
    with pytest.raises(ValueError):
        Collector().summarize(5.0, 5.0)


def test_summary_str_formatting():
    collector = Collector()
    collector.record(completed_at=0.5, latency=0.002)
    text = str(collector.summarize(0.0, 1.0))
    assert "op/s" in text
    assert "p95" in text
