"""Unit tests for metrics collection."""

import pytest

from repro.analysis.metrics import Collector, Summary, percentile


def test_percentile_empty_and_single():
    assert percentile([], 0.5) == 0.0
    assert percentile([7.0], 0.99) == 7.0


def test_percentile_interpolates():
    values = [0.0, 10.0]
    assert percentile(values, 0.5) == pytest.approx(5.0)
    assert percentile(values, 0.0) == 0.0
    assert percentile(values, 1.0) == 10.0


def test_percentile_edge_quantiles():
    assert percentile([], 0.0) == 0.0
    assert percentile([], 1.0) == 0.0
    values = [1.0, 2.0, 4.0, 8.0]
    assert percentile(values, 0.0) == 1.0  # exact minimum
    assert percentile(values, 1.0) == 8.0  # exact maximum


def test_percentile_two_element_interpolation():
    values = [2.0, 6.0]
    assert percentile(values, 0.25) == pytest.approx(3.0)
    assert percentile(values, 0.75) == pytest.approx(5.0)


def test_collector_window_filtering():
    collector = Collector()
    collector.record(completed_at=1.0, latency=0.010)
    collector.record(completed_at=5.0, latency=0.020)
    collector.record(completed_at=9.0, latency=0.030)
    summary = collector.summarize(4.0, 10.0)
    assert summary.count == 2
    assert summary.throughput == pytest.approx(2 / 6.0)
    assert summary.mean_latency == pytest.approx(0.025)


def test_window_is_half_open():
    collector = Collector()
    collector.record(completed_at=4.0, latency=0.01)  # on start: included
    collector.record(completed_at=7.0, latency=0.01)
    collector.record(completed_at=10.0, latency=0.01)  # on end: excluded
    window = collector.window(4.0, 10.0)
    assert [s.completed_at for s in window] == [4.0, 7.0]


def test_adjacent_windows_partition_samples():
    collector = Collector()
    for t in (0.0, 1.0, 2.0, 3.0, 4.0):
        collector.record(completed_at=t, latency=0.01)
    first = collector.summarize(0.0, 2.0)
    second = collector.summarize(2.0, 4.0)
    # The boundary sample at t=2.0 lands in exactly one window.
    assert first.count + second.count == 4
    assert first.count == 2 and second.count == 2


def test_summary_conflict_rate():
    collector = Collector()
    collector.record(completed_at=1.0, latency=0.01, conflict=True)
    collector.record(completed_at=1.1, latency=0.01, conflict=False)
    summary = collector.summarize(0.0, 2.0)
    assert summary.conflict_rate == pytest.approx(0.5)


def test_summary_empty_window():
    summary = Collector().summarize(0.0, 1.0)
    assert summary.count == 0
    assert summary.throughput == 0.0


def test_summary_rejects_bad_window():
    with pytest.raises(ValueError):
        Collector().summarize(5.0, 5.0)


def test_summary_str_formatting():
    collector = Collector()
    collector.record(completed_at=0.5, latency=0.002)
    text = str(collector.summarize(0.0, 1.0))
    assert "op/s" in text
    assert "p95" in text
