"""Unit tests for the linearizability checker."""

import pytest

from repro.analysis.linearizability import (
    OpRecord,
    check_key_history,
    check_linearizable,
    find_violation,
)


def put(client, key, value, start, end):
    return OpRecord(client, "put", key, value, start, end)


def get(client, key, value, start, end):
    return OpRecord(client, "get", key, value, start, end)


def test_empty_history_linearizable():
    assert check_linearizable([])


def test_sequential_history():
    history = [
        put("a", "k", b"1", 0, 1),
        get("a", "k", b"1", 2, 3),
        put("a", "k", b"2", 4, 5),
        get("a", "k", b"2", 6, 7),
    ]
    assert check_linearizable(history)


def test_stale_read_rejected():
    history = [
        put("a", "k", b"1", 0, 1),
        put("a", "k", b"2", 2, 3),
        get("b", "k", b"1", 4, 5),  # reads the old value after put(2) ended
    ]
    assert not check_linearizable(history)
    assert "not linearizable" in find_violation(history)


def test_concurrent_ops_may_order_either_way():
    history = [
        put("a", "k", b"1", 0, 10),
        get("b", "k", None, 2, 3),  # overlaps the put: may see initial None
    ]
    assert check_linearizable(history)
    history2 = [
        put("a", "k", b"1", 0, 10),
        get("b", "k", b"1", 2, 3),  # or may see the new value
    ]
    assert check_linearizable(history2)


def test_read_of_never_written_value_rejected():
    history = [
        put("a", "k", b"1", 0, 1),
        get("b", "k", b"999", 2, 3),
    ]
    assert not check_linearizable(history)


def test_initial_value_respected():
    history = [get("a", "k", b"init", 0, 1)]
    assert check_linearizable(history, initial={"k": b"init"})
    assert not check_linearizable(history, initial={"k": b"other"})


def test_real_time_order_enforced_between_clients():
    # b's get finished before c's get started; both read, but values must
    # be consistent with some single order of the overlapping puts.
    history = [
        put("a", "k", b"1", 0, 1),
        put("a", "k", b"2", 2, 3),
        get("b", "k", b"2", 4, 5),
        get("c", "k", b"1", 6, 7),  # goes backwards in time: illegal
    ]
    assert not check_linearizable(history)


def test_keys_checked_independently():
    history = [
        put("a", "x", b"1", 0, 1),
        put("a", "y", b"9", 0, 1),
        get("b", "x", b"1", 2, 3),
        get("b", "y", b"9", 2, 3),
    ]
    assert check_linearizable(history)


def test_interleaved_writers_with_consistent_reads():
    history = [
        put("a", "k", b"a1", 0.0, 2.0),
        put("b", "k", b"b1", 1.0, 3.0),
        get("c", "k", b"a1", 3.5, 4.0),  # a1 after b1 is a legal order
        get("c", "k", b"a1", 4.5, 5.0),
    ]
    assert check_linearizable(history)


def test_flip_flop_read_rejected():
    history = [
        put("a", "k", b"a1", 0.0, 2.0),
        put("b", "k", b"b1", 1.0, 3.0),
        get("c", "k", b"a1", 3.5, 4.0),
        get("c", "k", b"b1", 4.5, 5.0),  # value flips back: no legal order
        get("c", "k", b"a1", 5.5, 6.0),
    ]
    assert not check_linearizable(history)


def test_bad_records_rejected():
    with pytest.raises(ValueError):
        OpRecord("a", "cas", "k", b"1", 0, 1)
    with pytest.raises(ValueError):
        OpRecord("a", "put", "k", b"1", 5, 1)


def test_find_violation_none_for_good_history():
    assert find_violation([put("a", "k", b"1", 0, 1)]) is None


def test_moderate_history_performance():
    # 24 sequential-ish operations should check instantly.
    history = []
    t = 0.0
    value = None
    for i in range(12):
        value = str(i).encode()
        history.append(put("w", "k", value, t, t + 0.5))
        history.append(get("r", "k", value, t + 1.0, t + 1.5))
        t += 2.0
    assert check_key_history(history)
