"""Integration tests for the history recorder (Troxy + checker)."""

import pytest

from repro.analysis.history import HistoryRecorder
from repro.apps.base import Payload
from repro.apps.kvstore import KvStore, delete, get, put
from repro.bench.clusters import build_troxy


def test_recorder_produces_linearizable_history_for_troxy():
    cluster = build_troxy(seed=111, app_factory=KvStore)
    recorder = HistoryRecorder(cluster.env)
    clients = [recorder.wrap(cluster.new_client()) for _ in range(4)]

    def writer(client, index):
        for i in range(4):
            yield from client.invoke(put("x", f"{index}.{i}".encode()))

    def reader(client):
        for _ in range(6):
            yield from client.invoke(get("x"))

    cluster.env.process(writer(clients[0], 0))
    cluster.env.process(writer(clients[1], 1))
    cluster.env.process(reader(clients[2]))
    cluster.env.process(reader(clients[3]))
    cluster.env.run(until=60.0)
    assert len(recorder.records) == 8 + 12
    assert recorder.check()
    assert recorder.violation() is None


def test_recorder_catches_violations():
    """With invalidation disabled (ablation D2) the recorder's history
    fails the check — the recorder is not a rubber stamp."""
    cluster = build_troxy(seed=112, app_factory=KvStore)
    for core in cluster.cores:
        core.keys_fn = lambda op: ()
    recorder = HistoryRecorder(cluster.env)
    client = recorder.wrap(cluster.new_client(contact_index=0))

    def driver():
        yield from client.invoke(put("k", b"v1"))
        yield from client.invoke(get("k"))  # warms the cache
        yield from client.invoke(put("k", b"v2"))
        yield from client.invoke(get("k"))  # stale fast read

    cluster.env.process(driver())
    cluster.env.run(until=30.0)
    assert not recorder.check()
    assert "not linearizable" in recorder.violation()


def test_recorder_passthrough_attributes():
    cluster = build_troxy(seed=113, app_factory=KvStore)
    recorder = HistoryRecorder(cluster.env)
    client = cluster.new_client()
    wrapped = recorder.wrap(client)
    assert wrapped.client_id == client.client_id
    assert wrapped.stats is client.stats


def test_recorder_ignores_non_register_ops():
    cluster = build_troxy(seed=114, app_factory=KvStore)
    recorder = HistoryRecorder(cluster.env)
    client = recorder.wrap(cluster.new_client())

    def driver():
        yield from client.invoke(put("k", b"v"))
        yield from client.invoke(delete("k"))  # not a register op
        yield from client.invoke(get("k"))

    cluster.env.process(driver())
    cluster.env.run(until=30.0)
    kinds = [r.kind for r in recorder.records]
    assert kinds == ["put", "get"]
    # The get observed the post-delete state (None) which the register
    # model cannot explain after put(v) — but since the delete was not
    # recorded, per-key checking is only applied to what WAS recorded.
    # We simply assert the recorder skipped the unsupported op.
