"""Integration tests for the standalone server and Prophecy middlebox."""

import pytest

from repro.apps.base import Payload
from repro.apps.httpd import HttpPageService, get_operation, parse_response, post_operation
from repro.apps.kvstore import KvStore, get, put
from repro.bench.clusters import build_prophecy, build_standalone, build_troxy


def run_ops(cluster, client, ops, until=30.0):
    results = []

    def driver():
        for op in ops:
            outcome = yield from client.invoke(op)
            results.append(outcome)

    cluster.env.process(driver())
    cluster.env.run(until=cluster.env.now + until)
    return results


# -- Standalone -----------------------------------------------------------------


def test_standalone_serves_requests():
    cluster = build_standalone(seed=1, app_factory=KvStore)
    client = cluster.new_client()
    results = run_ops(cluster, client, [put("k", b"v"), get("k")])
    assert [r.result.content for r in results] == [b"stored", b"v"]
    assert cluster.server.stats.requests == 2


def test_standalone_http_service():
    cluster = build_standalone(seed=2, app_factory=HttpPageService)
    client = cluster.new_client()
    results = run_ops(cluster, client, [get_operation("/page/0")])
    response = parse_response(results[0].result.content)
    assert response.status == 200
    assert len(response.body) == 4096


def test_standalone_offers_no_fault_tolerance():
    cluster = build_standalone(seed=3, app_factory=KvStore)
    client = cluster.new_client(request_timeout=0.5)
    run_ops(cluster, client, [put("k", b"v")])
    cluster.server.stop()

    def driver():
        try:
            yield from client.invoke(get("k"))
        except Exception:
            pass

    cluster.env.process(driver())
    cluster.env.run(until=cluster.env.now + 5.0)
    assert client.stats.timeouts >= 1  # the service is simply gone


# -- Prophecy --------------------------------------------------------------------


def test_prophecy_serves_requests():
    cluster = build_prophecy(seed=4, app_factory=KvStore)
    client = cluster.new_client()
    results = run_ops(cluster, client, [put("k", b"v"), get("k")])
    assert [r.result.content for r in results] == [b"stored", b"v"]


def test_prophecy_sketch_hit_on_repeated_read():
    cluster = build_prophecy(seed=5, app_factory=KvStore)
    client = cluster.new_client()
    results = run_ops(cluster, client, [put("k", b"v"), get("k"), get("k")])
    assert results[-1].result.content == b"v"
    assert cluster.middlebox.stats.sketch_hits == 1
    assert cluster.middlebox.stats.full_invocations == 2  # write + first read


def test_prophecy_refreshes_sketch_after_write():
    """A write invalidates nothing, but validation catches the change on
    up-to-date replicas, triggering a full (fresh) read."""
    cluster = build_prophecy(seed=6, app_factory=KvStore)
    client = cluster.new_client()
    results = run_ops(
        cluster, client,
        [put("k", b"v1"), get("k"), put("k", b"v2"), get("k")],
    )
    assert results[-1].result.content == b"v2"


def test_prophecy_returns_stale_read_with_lagging_replica():
    """The Table I consistency witness: Prophecy's one-replica validation
    accepts a stale sketch when the probed replica is behind; Troxy's
    quorum check rejects the same scenario."""

    class LaggingKv(KvStore):
        """A replica whose state machine silently stops applying writes
        at some point — a Byzantine behaviour within the f=1 budget."""

        lag = False

        def execute(self, op):
            if not op.is_read and self.lag:
                return Payload(b"stored")  # pretends, but doesn't apply
            return super().execute(op)

    # Prophecy: seed the sketch, freeze one replica, write, read again.
    cluster = build_prophecy(seed=7, app_factory=KvStore)
    lagging = LaggingKv()
    cluster.replicas[1].app = lagging
    # Pin validation probes to the lagging replica (worst case the paper
    # allows: Prophecy picks 1 replica at random).
    cluster.middlebox.rng = _FixedChoice("replica-1")
    client = cluster.new_client()
    results = run_ops(cluster, client, [put("k", b"old"), get("k")])
    assert results[1].result.content == b"old"
    lagging.lag = True  # replica-1 stops applying writes from here on
    results = run_ops(cluster, client, [put("k", b"new"), get("k")])
    # Stale: the sketch still matches the lagging replica's answer.
    assert results[1].result.content == b"old"
    assert cluster.middlebox.stats.sketch_hits >= 1

    # Troxy under the same attack returns the fresh value.
    tcluster = build_troxy(seed=7, app_factory=KvStore)
    tlagging = LaggingKv()
    tcluster.replicas[1].app = tlagging
    tclient = tcluster.new_client(contact_index=1)
    tresults = run_ops(tcluster, tclient, [put("k", b"old"), get("k")])
    tlagging.lag = True
    tresults = run_ops(tcluster, tclient, [put("k", b"new"), get("k")])
    assert tresults[1].result.content == b"new"


class _FixedChoice:
    """rng stand-in whose choice() always returns a fixed element."""

    def __init__(self, value):
        self.value = value

    def choice(self, seq):
        assert self.value in seq
        return self.value


def test_prophecy_http_service():
    cluster = build_prophecy(seed=8, app_factory=HttpPageService)
    client = cluster.new_client()
    results = run_ops(
        cluster, client, [get_operation("/page/1"), get_operation("/page/1")]
    )
    for outcome in results:
        assert parse_response(outcome.result.content).status == 200
    assert cluster.middlebox.stats.sketch_hits == 1
