"""Negative-path tests for the comparator systems."""

import dataclasses

import pytest

from repro.apps.kvstore import KvStore, get, put
from repro.bench.clusters import build_prophecy, build_standalone
from repro.crypto import establish_session
from repro.hybster.messages import Request
from repro.hybster.secure import seal_body


def run_ops(cluster, client, ops, until=30.0):
    results = []

    def driver():
        for op in ops:
            outcome = yield from client.invoke(op)
            results.append(outcome)

    cluster.env.process(driver())
    cluster.env.run(until=cluster.env.now + until)
    return results


def test_standalone_rejects_unknown_session():
    cluster = build_standalone(seed=151, app_factory=KvStore)
    env, net = cluster.env, cluster.net
    evil = establish_session(b"attacker-secret!", "stranger", "server-0")
    request = Request("stranger", 1, put("k", b"v"), origin="client-machine-0")
    net.send("client-machine-0", "server-0", seal_body(evil.client, request))
    env.run(until=5.0)
    assert cluster.server.stats.invalid == 1
    assert cluster.server.stats.requests == 0


def test_standalone_rejects_tampered_request():
    cluster = build_standalone(seed=152, app_factory=KvStore)
    client = cluster.new_client()
    # Tamper with the op inside the envelope (digest mismatch).
    request = Request(client.client_id, 1, put("k", b"honest"), origin=client.node.name)
    envelope = seal_body(client._endpoint, request)
    evil_request = dataclasses.replace(request, op=put("k", b"EVIL"))
    forged = dataclasses.replace(envelope, body=evil_request)
    cluster.net.send(client.node.name, "server-0", forged)
    cluster.env.run(until=5.0)
    assert cluster.server.stats.invalid == 1
    assert cluster.server.app.execute(get("k")).content == b"\x00missing"


def test_prophecy_write_path_is_fully_ordered():
    cluster = build_prophecy(seed=153, app_factory=KvStore)
    client = cluster.new_client()
    run_ops(cluster, client, [put("k", b"v")])
    # The write went through BFT ordering on every replica.
    assert all(r.stats.executions == 1 for r in cluster.replicas)
    assert cluster.middlebox.stats.full_invocations == 1


def test_prophecy_crash_leaves_clients_stranded():
    """The middlebox is a single trusted box: its crash is an outage
    (unlike Troxy, where any replica's Troxy can take over)."""
    cluster = build_prophecy(seed=154, app_factory=KvStore)
    client = cluster.new_client(request_timeout=0.5)
    run_ops(cluster, client, [put("k", b"v")])
    cluster.middlebox.stop()

    def driver():
        try:
            yield from client.invoke(get("k"))
        except Exception:
            pass

    cluster.env.process(driver())
    cluster.env.run(until=cluster.env.now + 5.0)
    assert client.stats.timeouts >= 1
