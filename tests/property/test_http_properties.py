"""Property-based tests for the HTTP codec and page service."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.httpd import (
    HttpPageService,
    HttpRequest,
    HttpResponse,
    frame_length,
    get_operation,
    parse_request,
    parse_response,
    post_operation,
)

# HTTP header fields are latin-1 on the wire; exercise the ASCII subset.
ASCII = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789"
token = st.text(alphabet=ASCII + "-_", min_size=1, max_size=16)
paths = st.text(alphabet=ASCII + "/-_.", min_size=1, max_size=32).map(lambda p: "/" + p)
bodies = st.binary(max_size=2048)
header_lists = st.lists(st.tuples(token, token), max_size=5).map(tuple)


@given(st.sampled_from(["GET", "POST", "PUT", "DELETE"]), paths, header_lists, bodies)
@settings(max_examples=100, deadline=None)
def test_request_roundtrip(method, path, headers, body):
    request = HttpRequest(method, path, headers, body)
    parsed = parse_request(request.encode())
    assert parsed.method == method
    assert parsed.path == path
    assert parsed.body == body
    # Order and duplicates are preserved, except that encode() owns
    # framing: caller-supplied Content-Length headers are replaced by
    # the computed one (appended last).
    expected = tuple((k, v) for k, v in headers if k.lower() != "content-length")
    assert parsed.headers[: len(expected)] == expected


@given(st.integers(100, 599), header_lists, bodies)
@settings(max_examples=100, deadline=None)
def test_response_roundtrip(status, headers, body):
    response = HttpResponse(status, "Custom Reason", headers, body)
    parsed = parse_response(response.encode())
    assert parsed.status == status
    assert parsed.body == body


@given(st.lists(st.tuples(paths, bodies), min_size=1, max_size=6))
@settings(max_examples=50, deadline=None)
def test_pipelined_framing_recovers_every_message(messages):
    stream = b"".join(HttpRequest("POST", p, (), b).encode() for p, b in messages)
    recovered = []
    while stream:
        cut = frame_length(stream)
        assert cut is not None
        recovered.append(parse_request(stream[:cut]))
        stream = stream[cut:]
    assert [(r.path, r.body) for r in recovered] == messages


@given(st.sampled_from(["GET", "POST"]), paths, bodies)
@settings(max_examples=50, deadline=None)
def test_truncated_messages_never_frame(method, path, body):
    data = HttpRequest(method, path, (), body).encode()
    for cut in range(0, len(data), max(1, len(data) // 7)):
        if cut < len(data):
            truncated_frame = frame_length(data[:cut])
            assert truncated_frame is None or truncated_frame <= cut


@given(st.lists(st.tuples(paths, bodies), min_size=1, max_size=10))
@settings(max_examples=50, deadline=None)
def test_page_service_deterministic_across_replicas(posts):
    a, b = HttpPageService(pages={}), HttpPageService(pages={})
    for path, body in posts:
        op = post_operation(path, body)
        assert a.execute(op).content == b.execute(op).content
    for path, _ in posts:
        op = get_operation(path)
        assert a.execute(op).content == b.execute(op).content
    assert a.snapshot() == b.snapshot()
