"""Property-based tests for audit ledger chain integrity.

The acceptance bar for the accountability ledgers: *any* single-entry
mutation — of any serialised field, at any position — must be caught by
the offline verifier, as must truncation, reordering, and checkpoint
rewinds.
"""

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.primitives import MacKey
from repro.obs.audit.ledger import MessageLedger, verify_ledger_dict
from repro.sgx.counters import TrustedCounterSubsystem, certify_ledger_checkpoint

KEY = MacKey("audit-prop", b"audit-prop-group-key")

entries = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
        st.sampled_from(["send", "recv"]),
        st.sampled_from(["replica-0", "replica-1", "client-machine-0"]),
        st.sampled_from(["Order", "Commit", "SecureEnvelope:Reply"]),
        st.binary(min_size=32, max_size=32),
    ),
    min_size=1,
    max_size=12,
)


def build_ledger(rows, checkpoint_every=0):
    ledger = MessageLedger("replica-0")
    tss = TrustedCounterSubsystem("tss-replica-0", KEY)
    for i, (t, direction, peer, kind, digest) in enumerate(rows):
        ledger.append(t, direction, peer, kind, digest, ident=("order", 0, i))
        if checkpoint_every and len(ledger.entries) % checkpoint_every == 0:
            seq = len(ledger.checkpoints) + 1
            cert = certify_ledger_checkpoint(tss, seq, ledger.head)
            ledger.add_checkpoint(seq, len(ledger.entries), ledger.head, cert)
    return ledger


@given(rows=entries)
@settings(max_examples=60, deadline=None)
def test_intact_ledger_always_verifies(rows):
    ledger = build_ledger(rows, checkpoint_every=3)
    assert verify_ledger_dict(ledger.as_dict(), key=KEY) == []
    # Round-tripping through JSON (as bundles do) must not break it.
    data = json.loads(json.dumps(ledger.as_dict()))
    assert verify_ledger_dict(data, key=KEY) == []


@given(rows=entries, data=st.data())
@settings(max_examples=120, deadline=None)
def test_any_single_entry_mutation_is_detected(rows, data):
    ledger = build_ledger(rows)
    dump = ledger.as_dict()
    index = data.draw(st.integers(min_value=0, max_value=len(rows) - 1))
    entry = dump["entries"][index]
    field = data.draw(st.sampled_from(sorted(entry)))
    original = entry[field]
    if field == "i":
        entry[field] = original + 1
    elif field == "t":
        entry[field] = original + 1.0
    elif field in ("digest", "hash"):
        entry[field] = ("00" * 32 if original != "00" * 32 else "11" * 32)
    elif field == "ident":
        entry[field] = ["order", 0, len(rows) + 7]
    elif field == "cert":
        entry[field] = ["tss-forged", "order/0", 1, "00" * 32, "00" * 32]
    else:  # dir / peer / kind — string fields
        entry[field] = original + "-forged"
    assert verify_ledger_dict(dump, key=KEY) != []


@given(rows=entries)
@settings(max_examples=60, deadline=None)
def test_truncation_and_reordering_are_detected(rows):
    ledger = build_ledger(rows)
    truncated = ledger.as_dict()
    truncated["entries"].pop()
    assert verify_ledger_dict(truncated, key=KEY) != []
    if len(rows) >= 2:
        swapped = ledger.as_dict()
        swapped["entries"][0], swapped["entries"][-1] = (
            swapped["entries"][-1], swapped["entries"][0],
        )
        assert verify_ledger_dict(swapped, key=KEY) != []


def test_empty_ledger_verifies():
    ledger = MessageLedger("replica-0")
    assert verify_ledger_dict(ledger.as_dict(), key=KEY) == []
