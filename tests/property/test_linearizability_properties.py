"""Property-based tests for the linearizability checker itself, plus an
end-to-end property: real Troxy clusters produce linearizable histories
at every agreement-batching setting (docs/BATCHING.md)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.history import HistoryRecorder
from repro.analysis.linearizability import OpRecord, check_key_history
from repro.apps.kvstore import KvStore, get, put
from repro.bench.clusters import build_troxy
from repro.hybster.config import BatchConfig
from repro.shard import build_sharded


@st.composite
def sequential_histories(draw):
    """Generate a history by *actually executing* ops sequentially against
    a register — such a history is linearizable by construction."""
    n = draw(st.integers(min_value=1, max_value=12))
    t = 0.0
    state = None
    records = []
    for i in range(n):
        is_put = draw(st.booleans())
        duration = draw(st.floats(min_value=0.1, max_value=1.0))
        if is_put:
            value = str(draw(st.integers(0, 5))).encode()
            records.append(OpRecord(f"c{i % 3}", "put", "k", value, t, t + duration))
            state = value
        else:
            records.append(OpRecord(f"c{i % 3}", "get", "k", state, t, t + duration))
        t += duration + draw(st.floats(min_value=0.01, max_value=0.5))
    return records


@given(sequential_histories())
@settings(max_examples=100, deadline=None)
def test_sequential_execution_is_always_linearizable(history):
    assert check_key_history(history)


@given(sequential_histories(), st.data())
@settings(max_examples=100, deadline=None)
def test_reading_a_never_written_value_is_never_linearizable(history, data):
    gets = [i for i, r in enumerate(history) if r.kind == "get"]
    if not gets:
        return
    index = data.draw(st.sampled_from(gets))
    victim = history[index]
    poisoned = OpRecord(
        victim.client, "get", victim.key, b"\xff<never written>",
        victim.start, victim.end,
    )
    mutated = history[:index] + [poisoned] + history[index + 1:]
    assert not check_key_history(mutated)


@given(sequential_histories())
@settings(max_examples=50, deadline=None)
def test_widening_intervals_preserves_linearizability(history):
    """Relaxing real-time constraints can only make a linearizable
    history easier to linearize."""
    widened = [
        OpRecord(r.client, r.kind, r.key, r.value, r.start - 0.05, r.end + 0.05)
        for r in history
    ]
    assert check_key_history(widened)


# -- end-to-end: batched agreement stays linearizable ---------------------------


@st.composite
def cluster_workloads(draw):
    """A batching setting, cluster seed, and a contended workload (few
    keys, several clients, mixed reads/writes with unique values)."""
    batching = draw(
        st.sampled_from(
            [BatchConfig.sized(1), BatchConfig.sized(4), BatchConfig.sized(16)]
        )
    )
    seed = draw(st.integers(min_value=0, max_value=10_000))
    n_clients = draw(st.integers(min_value=2, max_value=3))
    schedules = []
    for c in range(n_clients):
        ops = []
        for n in range(draw(st.integers(min_value=2, max_value=5))):
            key = f"k{draw(st.integers(0, 1))}"
            if draw(st.booleans()):
                ops.append(put(key, f"c{c}/{n}".encode()))
            else:
                ops.append(get(key))
        schedules.append(ops)
    return batching, seed, schedules


@given(cluster_workloads())
@settings(max_examples=12, deadline=None)
def test_batched_agreement_histories_are_linearizable(workload):
    """Whatever the batch size, the recorded client history — fast reads,
    cached reads, and batched ordered operations included — linearizes."""
    batching, seed, schedules = workload
    cluster = build_troxy(seed=seed, app_factory=KvStore, batching=batching)
    recorder = HistoryRecorder(cluster.env)
    done = []

    def driver(index, client, ops):
        for op in ops:
            yield from client.invoke(op)
        done.append(index)

    for index, ops in enumerate(schedules):
        client = recorder.wrap(cluster.new_client(contact_index=0))
        cluster.env.process(driver(index, client, ops))
    cluster.env.run(until=60.0)

    assert len(done) == len(schedules), "workload did not complete"
    assert recorder.violation() is None


# -- end-to-end: sharded deployments stay linearizable ---------------------------


@st.composite
def sharded_workloads(draw):
    """A shard count, cluster seed, and a contended workload whose keys
    deliberately span group boundaries (cross-shard reads included)."""
    shards = draw(st.sampled_from([1, 2, 4]))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    n_clients = draw(st.integers(min_value=2, max_value=3))
    schedules = []
    for c in range(n_clients):
        ops = []
        for n in range(draw(st.integers(min_value=2, max_value=4))):
            key = f"k{draw(st.integers(0, 3))}"
            if draw(st.booleans()):
                ops.append(put(key, f"c{c}/{n}".encode()))
            else:
                ops.append(get(key))
        schedules.append(ops)
    return shards, seed, schedules


@given(sharded_workloads())
@settings(max_examples=8, deadline=None)
def test_sharded_histories_are_linearizable(workload):
    """Whatever the group count, the recorded client history — local and
    forwarded writes, attested remote fast reads, cached reads —
    linearizes. Clients contact different groups (round-robin), so the
    cross-group invalidation-epoch machinery is genuinely exercised."""
    shards, seed, schedules = workload
    cluster = build_sharded(seed=seed, shards=shards, app_factory=KvStore)
    recorder = HistoryRecorder(cluster.env)
    done = []

    def driver(index, client, ops):
        for op in ops:
            yield from client.invoke(op)
        done.append(index)

    for index, ops in enumerate(schedules):
        client = recorder.wrap(cluster.new_client())
        cluster.env.process(driver(index, client, ops))
    cluster.env.run(until=90.0)

    assert len(done) == len(schedules), "workload did not complete"
    assert recorder.violation() is None
