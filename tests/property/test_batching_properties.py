"""Property-based tests for leader-side batch assembly (docs/BATCHING.md).

The :class:`~repro.hybster.batching.BatchAssembler` is pure logic — the
replica feeds it requests and timestamps — so Hypothesis can drive it
through arbitrary enqueue/flush interleavings and check the invariants
the protocol relies on:

* requests leave in arrival order (no reordering between a client's
  requests or anyone else's),
* nothing is duplicated or dropped across any sequence of flushes,
* ``take()`` respects ``max_batch`` and the adaptive cutoff stays within
  ``[min_batch, max_batch]``,
* nothing flushes while the agreement pipeline is full,
* the batch digest is a deterministic, order-sensitive function of the
  request tuple (the counter certificate covers entry order).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.kvstore import put
from repro.hybster.batching import BatchAssembler
from repro.hybster.config import BatchConfig
from repro.hybster.messages import Batch, Request


def make_request(i: int) -> Request:
    return Request(
        client_id=f"client-{i % 5}",
        request_id=i,
        op=put(f"k{i % 3}", f"v{i}".encode()),
        origin="replica-0",
    )


@st.composite
def batch_configs(draw):
    max_batch = draw(st.integers(min_value=1, max_value=32))
    adaptive = draw(st.booleans())
    return BatchConfig(
        max_batch=max_batch,
        min_batch=draw(st.integers(min_value=1, max_value=max_batch)),
        batch_wait=draw(st.sampled_from([0.001, 0.01] if adaptive else [0.0, 0.001, 0.01])),
        pipeline_depth=draw(st.integers(min_value=1, max_value=8)),
        adaptive=adaptive,
    )


@st.composite
def assembler_runs(draw):
    """An assembler plus a schedule of (enqueue | flush-attempt) steps
    with non-decreasing timestamps and arbitrary in-flight counts."""
    config = draw(batch_configs())
    steps = []
    now = 0.0
    for i in range(draw(st.integers(min_value=1, max_value=40))):
        now += draw(st.floats(min_value=0.0, max_value=0.01))
        if draw(st.booleans()):
            steps.append(("enqueue", now, i))
        else:
            steps.append(("flush", now, draw(st.integers(0, 10))))
    return config, steps


@given(assembler_runs())
@settings(max_examples=200, deadline=None)
def test_no_reordering_no_dup_no_drop(run):
    """Concatenating every flushed batch plus the final drain replays the
    exact enqueue sequence: FIFO order, each request exactly once."""
    config, steps = run
    assembler = BatchAssembler(config)
    enqueued, flushed = [], []
    for kind, now, arg in steps:
        if kind == "enqueue":
            request = make_request(arg)
            enqueued.append(request)
            assembler.enqueue(request, now)
        else:
            reason = assembler.flush_reason(now, inflight=arg)
            if reason is not None:
                batch = assembler.take()
                assert batch, f"flush_reason {reason!r} but take() was empty"
                flushed.append((reason, batch))
    remaining = assembler.drain()
    assert len(assembler) == 0 and assembler.pending == ()
    replayed = [r for _reason, batch in flushed for r in batch] + list(remaining)
    assert replayed == enqueued


@given(assembler_runs())
@settings(max_examples=200, deadline=None)
def test_caps_and_pipeline_respected(run):
    config, steps = run
    assembler = BatchAssembler(config)
    for kind, now, arg in steps:
        if kind == "enqueue":
            assembler.enqueue(make_request(arg), now)
        else:
            cutoff = assembler.cutoff()
            assert config.min_batch <= cutoff <= config.max_batch
            reason = assembler.flush_reason(now, inflight=arg)
            if arg >= config.pipeline_depth:
                assert reason is None, "flushed into a full pipeline"
            if reason is not None:
                assert len(assembler.take()) <= config.max_batch


@given(assembler_runs())
@settings(max_examples=100, deadline=None)
def test_flush_reasons_are_justified(run):
    """Each reported reason matches the state that triggered it."""
    config, steps = run
    assembler = BatchAssembler(config)
    for kind, now, arg in steps:
        if kind == "enqueue":
            assembler.enqueue(make_request(arg), now)
            continue
        buffered = len(assembler)
        deadline = assembler.deadline
        reason = assembler.flush_reason(now, inflight=arg)
        if reason is None:
            continue
        assert buffered > 0
        if reason == "size":
            assert buffered >= assembler.cutoff()
        elif reason == "idle":
            assert arg == 0
        elif reason == "drain":
            assert config.batch_wait <= 0
        elif reason == "timeout":
            assert deadline is not None and now >= deadline
        else:
            raise AssertionError(f"unknown flush reason {reason!r}")
        assembler.take()


@given(st.lists(st.integers(min_value=0, max_value=200), min_size=2,
                max_size=16, unique=True))
@settings(max_examples=200, deadline=None)
def test_batch_digest_deterministic_and_order_sensitive(ids):
    requests = tuple(make_request(i) for i in ids)
    rebuilt = tuple(make_request(i) for i in ids)
    assert Batch(requests).digest() == Batch(rebuilt).digest()
    rotated = requests[1:] + requests[:1]
    assert Batch(rotated).digest() != Batch(requests).digest()


@given(st.integers(min_value=2, max_value=64),
       st.floats(min_value=1e-6, max_value=1e-3),
       st.floats(min_value=1e-6, max_value=1e-2))
@settings(max_examples=200, deadline=None)
def test_adaptive_cutoff_tracks_arrival_rate_within_bounds(max_batch, gap, wait):
    """Under a steady arrival rate the adaptive cutoff converges to the
    number of arrivals expected per wait window, clamped to the caps."""
    config = BatchConfig(
        max_batch=max_batch, batch_wait=wait, pipeline_depth=4, adaptive=True
    )
    assembler = BatchAssembler(config)
    for i in range(50):
        assembler.enqueue(make_request(i), i * gap)
    cutoff = assembler.cutoff()
    expected = min(max_batch, max(config.min_batch, int(wait / gap)))
    assert cutoff == expected
    assert config.min_batch <= cutoff <= config.max_batch
