"""Property-based tests for the simulation engine."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Environment


delays = st.lists(
    st.floats(min_value=0.0, max_value=100.0, allow_nan=False), min_size=1, max_size=30
)


@given(delays)
@settings(max_examples=50, deadline=None)
def test_events_fire_in_nondecreasing_time_order(delay_list):
    env = Environment()
    fired = []

    def proc(env, delay):
        yield env.timeout(delay)
        fired.append(env.now)

    for delay in delay_list:
        env.process(proc(env, delay))
    env.run()
    assert fired == sorted(fired)
    assert len(fired) == len(delay_list)


@given(delays)
@settings(max_examples=30, deadline=None)
def test_identical_schedules_are_deterministic(delay_list):
    def run_once():
        env = Environment()
        order = []

        def proc(env, i, delay):
            yield env.timeout(delay)
            order.append(i)

        for i, delay in enumerate(delay_list):
            env.process(proc(env, i, delay))
        env.run()
        return order

    assert run_once() == run_once()


@given(delays, st.floats(min_value=0.0, max_value=100.0, allow_nan=False))
@settings(max_examples=50, deadline=None)
def test_run_until_never_overshoots(delay_list, horizon):
    env = Environment()

    def proc(env, delay):
        yield env.timeout(delay)

    for delay in delay_list:
        env.process(proc(env, delay))
    env.run(until=horizon)
    assert env.now == horizon


@given(st.lists(st.integers(min_value=0, max_value=10), min_size=1, max_size=20))
@settings(max_examples=30, deadline=None)
def test_chained_timeouts_accumulate_exactly(steps):
    env = Environment()
    finished = []

    def proc(env):
        for step in steps:
            yield env.timeout(float(step))
        finished.append(env.now)

    env.process(proc(env))
    env.run()
    assert finished == [float(sum(steps))]
