"""Property-based tests for lease-based linearizable reads (docs/READS.md).

Three layers of the lease machinery are driven through arbitrary
interleavings:

* :class:`~repro.troxy.lease.LeaseManager` — the leader side: at most
  one holder per key at any instant (single-writer-per-key), whatever
  sequence of requests, grants, revocations, acks, and expiries occurs,
* :class:`~repro.troxy.lease.LeaseTable` — the holder side: the sealed
  ``troxy-lease`` counter makes installed epochs strictly monotone, so
  no interleaving of installs, revocations, and enclave reboots can
  resurrect a revoked or superseded lease,
* the full cluster — grant/revoke/expiry races under contended
  read/write workloads never produce a read older than the last
  committed write (the PR-5 linearizability oracle, leases on).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.history import HistoryRecorder
from repro.apps.kvstore import KvStore, get, put
from repro.bench.clusters import build_troxy
from repro.crypto.keys import KeyRing
from repro.hybster.config import LeaseConfig
from repro.sgx.counters import TrustedCounterSubsystem
from repro.sgx.sealed import SealedStorage
from repro.troxy.lease import LEASE_EPOCH_STRIDE, LeaseManager, LeaseTable
from repro.troxy.messages import LeaseGrant

KEYS = ["a", "b"]
HOLDERS = ["replica-0", "replica-1", "replica-2"]


def make_manager() -> LeaseManager:
    keyring = KeyRing(b"lease-prop-secret")
    return LeaseManager(
        "leader", keyring.troxy_instance("leader"), LeaseConfig.on(duration=1.0)
    )


@st.composite
def manager_schedules(draw):
    """A sequence of (action, args) steps with a non-decreasing clock."""
    steps = []
    now = 0.0
    for seq in range(draw(st.integers(min_value=1, max_value=40))):
        now += draw(st.floats(min_value=0.0, max_value=0.4))
        action = draw(
            st.sampled_from(["request", "grant", "revoke", "ack", "expire"])
        )
        key = draw(st.sampled_from(KEYS))
        holder = draw(st.sampled_from(HOLDERS))
        steps.append((action, now, seq + 1, key, holder))
    return steps


@given(manager_schedules())
@settings(max_examples=200, deadline=None)
def test_single_writer_per_key(steps):
    """However requests, grants, revocations, acks, and expiries
    interleave, the manager never has two live grants for one key, and
    a second holder's request is refused while the first's lease is
    live — the single-writer-per-key invariant writes park behind."""
    manager = make_manager()
    live: dict[str, LeaseGrant] = {}  # model: key -> unexpired grant

    def drop_expired(now):
        for key in [k for k, g in live.items() if now >= g.expiry]:
            del live[key]

    for action, now, seq, key, holder in steps:
        drop_expired(now)
        if action == "request":
            queued = manager.note_request(key, holder, now)
            held = live.get(key)
            if held is not None and held.holder != holder:
                assert not queued, "request accepted while another holder is live"
        elif action == "grant":
            grants = manager.grants_for_slot(seq, now)
            assert len({g.key for g in grants}) == len(grants)
            for grant in grants:
                held = live.get(grant.key)
                assert held is None or held.holder == grant.holder, (
                    "granted over another holder's live lease"
                )
                assert grant.expiry > now
                live[grant.key] = grant
        elif action == "revoke":
            grant = manager.begin_revoke(key)
            if grant is not None:
                # Revoking does not end the lease: it stays blocking (and
                # live for its holder) until acked or expired.
                assert live.get(key) is grant or live.get(key) is None
        elif action == "ack":
            grant = live.get(key)
            if grant is not None and manager.on_ack(key, grant.epoch, grant.holder):
                del live[key]
        elif action == "expire":
            grant = manager._revoking.get(key)
            if grant is not None and manager.on_revoke_expired(key, grant, now):
                assert now >= grant.expiry
                live.pop(key, None)
        # The invariant proper: every key the model says is leased is
        # blocked for writers, and no key has two distinct live grants
        # (dict shape enforces the latter by construction — check the
        # manager agrees on who blocks).
        for k, g in live.items():
            if now < g.expiry:
                assert manager.blocking_keys((k,), now) == (k,)


def make_table(name: str = "prop") -> LeaseTable:
    counters = TrustedCounterSubsystem(
        f"lease-prop-{name}",
        KeyRing(b"lease-prop-secret").troxy_group(),
        storage=SealedStorage(b"lease-prop-seal" + name.encode(), b"m"),
    )
    return LeaseTable(counters)


def make_grant(key: str, epoch: int, expiry: float) -> LeaseGrant:
    keyring = KeyRing(b"lease-prop-secret")
    granter = keyring.troxy_instance("leader")
    tag = granter.sign(
        LeaseGrant.auth_input(key, "replica-0", "leader", epoch, expiry)
    )
    return LeaseGrant(key, "replica-0", "leader", epoch, expiry, tag)


@st.composite
def table_schedules(draw):
    steps = []
    now = 0.0
    epochs = st.integers(min_value=0, max_value=6 * LEASE_EPOCH_STRIDE)
    for _ in range(draw(st.integers(min_value=1, max_value=40))):
        now += draw(st.floats(min_value=0.0, max_value=0.3))
        action = draw(st.sampled_from(["install", "revoke", "reboot"]))
        steps.append(
            (
                action,
                now,
                draw(st.sampled_from(KEYS)),
                draw(epochs),
                now + draw(st.floats(min_value=0.1, max_value=1.0)),
            )
        )
    return steps


@given(table_schedules())
@settings(max_examples=200, deadline=None)
def test_install_epochs_are_monotone_under_fencing(steps):
    """The sealed counter admits each install epoch at most once and in
    strictly increasing order — across enclave reboots — so a replayed
    or rolled-back grant can never re-enter the table, and a revoked
    (burned) epoch can never install afterwards."""
    table = make_table("monotone")
    installed: list[int] = []
    burned: set[int] = set()
    for action, now, key, epoch, expiry in steps:
        if action == "install":
            outcome = table.install(make_grant(key, epoch, expiry), now)
            if outcome == "installed":
                assert epoch not in burned, "burned epoch resurrected"
                assert not installed or epoch > installed[-1], (
                    "install epoch not strictly increasing"
                )
                installed.append(epoch)
            elif installed and epoch <= installed[-1]:
                pass  # correctly refused (stale/fenced)
        elif action == "revoke":
            table.revoke(key, epoch)
            burned.add(epoch)
            assert not table.valid(key, now) or table.get(key).epoch > epoch
        elif action == "reboot":
            # Volatile table dies; the sealed counter survives.
            table.clear()
            assert len(table) == 0
    # After everything: re-offering every grant that ever installed must
    # be fenced — the counter is already past each of those epochs.
    for epoch in installed:
        outcome = table.install(make_grant("a", epoch, steps[-1][1] + 10.0), 0.0)
        assert outcome in ("fenced", "stale"), outcome


@given(st.data())
@settings(max_examples=60, deadline=None)
def test_expiry_gates_validity(data):
    """A lease is valid strictly before its expiry and never at or after
    it, whatever install order the holder observed."""
    table = make_table("expiry")
    grants = []
    epoch = 0
    for _ in range(data.draw(st.integers(min_value=1, max_value=10))):
        epoch += data.draw(st.integers(min_value=1, max_value=LEASE_EPOCH_STRIDE))
        key = data.draw(st.sampled_from(KEYS))
        expiry = data.draw(st.floats(min_value=0.5, max_value=5.0))
        grant = make_grant(key, epoch, expiry)
        if table.install(grant, 0.0) == "installed":
            grants.append(grant)
    for grant in grants:
        held = table.get(grant.key)
        if held is not grant:
            continue  # superseded by a later epoch on the same key
        probe = data.draw(st.floats(min_value=0.0, max_value=6.0))
        assert table.valid(grant.key, probe) == (probe < grant.expiry)


# -- end-to-end: leased reads stay linearizable -------------------------------------


@st.composite
def lease_workloads(draw):
    """A cluster seed, a short lease duration (to force expiry races),
    and a contended read-heavy workload over two keys."""
    seed = draw(st.integers(min_value=0, max_value=10_000))
    duration = draw(st.sampled_from([0.05, 0.15, 0.5]))
    n_clients = draw(st.integers(min_value=2, max_value=3))
    schedules = []
    for c in range(n_clients):
        ops = []
        for n in range(draw(st.integers(min_value=3, max_value=6))):
            key = f"k{draw(st.integers(0, 1))}"
            if draw(st.integers(0, 3)) == 0:  # read-heavy: leases matter
                ops.append(put(key, f"c{c}/{n}".encode()))
            else:
                ops.append(get(key))
        schedules.append(ops)
    return seed, duration, schedules


@given(lease_workloads())
@settings(max_examples=12, deadline=None)
def test_leased_reads_are_linearizable(workload):
    """Grant/revoke/expiry interleavings under contention never yield a
    read older than the last committed write: the recorded history of
    leased, fast, and ordered operations linearizes."""
    seed, duration, schedules = workload
    cluster = build_troxy(
        seed=seed, app_factory=KvStore, leases=LeaseConfig.on(duration=duration)
    )
    recorder = HistoryRecorder(cluster.env)
    done = []

    def driver(index, client, ops):
        for op in ops:
            yield from client.invoke(op)
        done.append(index)

    for index, ops in enumerate(schedules):
        client = recorder.wrap(cluster.new_client(contact_index=index % 3))
        cluster.env.process(driver(index, client, ops))
    cluster.env.run(until=60.0)

    assert len(done) == len(schedules), "workload did not complete"
    assert recorder.violation() is None
    served = sum(c.stats.lease_read_hits for c in cluster.cores)
    installed = sum(c.stats.lease_grants_installed for c in cluster.cores)
    assert installed >= 0 and served >= 0  # counters wired
