"""Property-based tests for the observability primitives.

Two pure-logic pieces back the critical-path analyzer, so Hypothesis
drives them through arbitrary inputs:

* :class:`~repro.obs.quantiles.QuantileSketch` merging — ``count`` /
  ``sum`` are exact under any merge grouping, and merged quantile
  estimates are associative/commutative within the sketch's compression
  tolerance (the aggregation over per-phase attribution profiles relies
  on grouping-independence);
* :class:`~repro.obs.spans.SpanRecorder` tree invariants — every
  ``parent_id`` resolves to a recorded span of the same trace that was
  open at child-begin time (no orphans, no cross-trace edges), and
  ``finish()`` closes every open span exactly once, idempotently.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.quantiles import QuantileSketch
from repro.obs.spans import SpanRecorder

values = st.lists(
    st.floats(min_value=0.0, max_value=1e4, allow_nan=False,
              allow_infinity=False, width=32),
    max_size=80,
)

QUANTS = (0.0, 0.25, 0.5, 0.9, 0.99, 1.0)


def _sketch(data):
    sketch = QuantileSketch(compression=16)
    for value in data:
        sketch.observe(value)
    return sketch


def _tolerance(data):
    """Absolute slack for a merged-estimate comparison.

    A t-digest bounds rank error, not value error; on arbitrary floats
    the induced value error is bounded by the data's spread. A fraction
    of the spread keeps the check meaningful (a broken merge that drops
    or double-counts buffers shifts estimates by whole centroids).
    """
    spread = max(data) - min(data)
    return 0.35 * spread + 1e-9


@given(values, values)
@settings(max_examples=60, deadline=None)
def test_merge_is_commutative_within_tolerance(a, b):
    ab = _sketch(a).merge(_sketch(b))
    ba = _sketch(b).merge(_sketch(a))
    assert ab.count == ba.count == len(a) + len(b)
    assert math.isclose(ab.sum, ba.sum, rel_tol=1e-9, abs_tol=1e-9)
    data = a + b
    if not data:
        assert math.isnan(ab.quantile(0.5)) and math.isnan(ba.quantile(0.5))
        return
    tol = _tolerance(data)
    for q in QUANTS:
        assert abs(ab.quantile(q) - ba.quantile(q)) <= tol, q


@given(values, values, values)
@settings(max_examples=60, deadline=None)
def test_merge_is_associative_within_tolerance(a, b, c):
    left = _sketch(a).merge(_sketch(b)).merge(_sketch(c))
    right = _sketch(a).merge(_sketch(b).merge(_sketch(c)))
    assert left.count == right.count == len(a) + len(b) + len(c)
    assert math.isclose(left.sum, right.sum, rel_tol=1e-9, abs_tol=1e-9)
    data = a + b + c
    if not data:
        return
    tol = _tolerance(data)
    for q in QUANTS:
        assert abs(left.quantile(q) - right.quantile(q)) <= tol, q
    # Any grouping stays inside the observed value range.
    assert min(data) <= left.quantile(0.5) <= max(data)


@st.composite
def recorder_runs(draw):
    """A recorder driven through an arbitrary begin/end/event schedule."""
    rec = SpanRecorder()
    open_spans = []
    now = 0.0
    for i in range(draw(st.integers(min_value=1, max_value=50))):
        now += draw(st.floats(min_value=0.0, max_value=0.5))
        action = draw(st.sampled_from(["begin", "begin", "end", "event"]))
        trace = draw(st.sampled_from(["t0", "t1", "t2", None]))
        node = draw(st.sampled_from(["n0", "n1"]))
        if action == "begin":
            open_spans.append(rec.begin(f"phase{i % 4}", now,
                                        trace_id=trace, node=node))
        elif action == "event":
            rec.event(f"mark{i % 3}", now, trace_id=trace, node=node)
        elif open_spans:
            span = open_spans.pop(draw(
                st.integers(min_value=0, max_value=len(open_spans) - 1)
            ))
            rec.end(span, max(now, span.start))
    return rec, now


@given(recorder_runs())
@settings(max_examples=60, deadline=None)
def test_span_tree_has_no_orphan_or_cross_trace_parents(run):
    rec, _ = run
    by_id = {span.span_id: span for span in rec.spans}
    for span in rec.spans:
        if span.parent_id is None:
            continue
        parent = by_id.get(span.parent_id)
        assert parent is not None, f"orphan parent on span {span.span_id}"
        assert parent.trace_id == span.trace_id
        assert parent.start <= span.start
        # The parent was still open when the child began.
        assert parent.end is None or parent.end >= span.start


@given(recorder_runs())
@settings(max_examples=60, deadline=None)
def test_finish_closes_open_spans_exactly_once(run):
    rec, now = run
    open_before = rec.open_count
    closed = rec.finish(now)
    assert closed == open_before
    assert rec.open_count == 0
    forced = [s for s in rec.spans if s.attrs.get("unfinished")]
    assert len(forced) == closed
    for span in rec.spans:
        assert span.end is not None and span.end >= span.start
    # Idempotent: a second finish has nothing left to close.
    assert rec.finish(now + 1.0) == 0
    assert len([s for s in rec.spans if s.attrs.get("unfinished")]) == closed
