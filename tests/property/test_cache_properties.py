"""Property-based tests for the fast-read cache invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.base import Payload
from repro.hybster.messages import Reply
from repro.troxy.cache import FastReadCache


def make_reply(tag: int) -> Reply:
    return Reply(
        replica_id="replica-0",
        client_id="client",
        request_id=tag,
        result=Payload(str(tag).encode()),
        request_digest=tag.to_bytes(32, "big"),
    )


# An operation stream: install(digest_id, key_id) or invalidate(key_id).
ops = st.lists(
    st.one_of(
        st.tuples(st.just("install"), st.integers(0, 30), st.integers(0, 8)),
        st.tuples(st.just("invalidate"), st.integers(0, 8), st.just(0)),
    ),
    max_size=80,
)


@given(ops)
@settings(max_examples=100, deadline=None)
def test_no_entry_survives_invalidation_of_its_key(op_stream):
    """Core linearizability ingredient: once a key is invalidated, every
    entry depending on it is gone until a fresh install."""
    cache = FastReadCache(max_entries=1000)
    live: dict[bytes, int] = {}  # digest -> key id
    for op, a, b in op_stream:
        if op == "install":
            digest = a.to_bytes(32, "big")
            cache.install(digest, make_reply(a), keys=(f"k{b}",))
            live[digest] = b
        else:
            cache.invalidate_keys((f"k{a}",))
            live = {d: k for d, k in live.items() if k != a}
        # The model and the cache agree exactly.
        for digest, key_id in live.items():
            assert cache.peek(digest) is not None
        assert len(cache) == len(live)


@given(ops, st.integers(min_value=1, max_value=10))
@settings(max_examples=50, deadline=None)
def test_capacity_never_exceeded(op_stream, capacity):
    cache = FastReadCache(max_entries=capacity)
    for op, a, b in op_stream:
        if op == "install":
            cache.install(a.to_bytes(32, "big"), make_reply(a), keys=(f"k{b}",))
        else:
            cache.invalidate_keys((f"k{a}",))
        assert len(cache) <= capacity


@given(ops)
@settings(max_examples=50, deadline=None)
def test_clear_always_empties(op_stream):
    cache = FastReadCache()
    for op, a, b in op_stream:
        if op == "install":
            cache.install(a.to_bytes(32, "big"), make_reply(a), keys=(f"k{b}",))
    cache.clear()
    assert len(cache) == 0
    for op, a, b in op_stream:
        if op == "install":
            assert cache.peek(a.to_bytes(32, "big")) is None
