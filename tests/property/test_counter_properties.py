"""Property-based tests for trusted counters and sealed storage."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto import KeyRing, sha256
from repro.sgx import CounterError, SealedStorage, TrustedCounterSubsystem


def make_tss(storage=None):
    ring = KeyRing(b"master-secret-00")
    return TrustedCounterSubsystem("tss", ring.troxy_group(), storage=storage)


@given(st.lists(st.integers(min_value=1, max_value=1_000_000), min_size=1, max_size=50))
@settings(max_examples=100, deadline=None)
def test_counter_accepts_exactly_increasing_subsequence(values):
    tss = make_tss()
    tss.create("c")
    highest = 0
    for value in values:
        digest = sha256(value.to_bytes(8, "big"))
        if value > highest:
            cert = tss.certify_at("c", value, digest)
            assert cert.value == value
            assert tss.verify(cert)
            highest = value
        else:
            with pytest.raises(CounterError):
                tss.certify_at("c", value, digest)
        assert tss.current("c") == highest


@given(st.lists(st.binary(min_size=1, max_size=32), min_size=2, max_size=20, unique=True))
@settings(max_examples=50, deadline=None)
def test_no_two_digests_ever_share_a_value(digests):
    tss = make_tss()
    tss.create("c")
    seen_values = set()
    for digest in digests:
        cert = tss.certify_next("c", sha256(digest))
        assert cert.value not in seen_values
        seen_values.add(cert.value)


@given(
    st.lists(
        st.tuples(st.text(min_size=1, max_size=8), st.binary(max_size=64)),
        min_size=1,
        max_size=20,
    )
)
@settings(max_examples=50, deadline=None)
def test_sealed_storage_returns_last_write(items):
    storage = SealedStorage(b"platform", sha256(b"code"))
    expected = {}
    for name, data in items:
        storage.seal(name, data)
        expected[name] = data
    for name, data in expected.items():
        assert storage.unseal(name) == data


@given(st.dictionaries(st.text(min_size=1, max_size=6), st.integers(0, 2**40), max_size=10))
@settings(max_examples=50, deadline=None)
def test_counters_roundtrip_through_sealed_storage(counters):
    storage = SealedStorage(b"platform", sha256(b"code"))
    tss = make_tss(storage)
    for name, value in counters.items():
        tss.create(name)
        if value > 0:
            tss.certify_at(name, value, sha256(name.encode()))
    revived = make_tss(storage)
    for name, value in counters.items():
        assert revived.current(name) == value
