"""Property-based tests for the crypto substrate."""

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto import MacKey, TlsError, derive_key, establish_session
from repro.crypto.primitives import digest_of


@given(st.binary(max_size=1024), st.binary(min_size=16, max_size=64))
@settings(max_examples=100, deadline=None)
def test_mac_roundtrip_always_verifies(data, secret):
    key = MacKey("k", secret)
    assert key.verify(data, key.sign(data))


@given(st.binary(max_size=256), st.binary(max_size=256))
@settings(max_examples=100, deadline=None)
def test_mac_distinct_messages_have_distinct_tags(a, b):
    key = MacKey("k", b"secret-material!")
    if a != b:
        assert key.sign(a) != key.sign(b)
        assert not key.verify(b, key.sign(a))


@given(st.lists(st.binary(max_size=64), max_size=8))
@settings(max_examples=100, deadline=None)
def test_digest_of_unambiguous_under_concatenation(parts):
    joined = digest_of(b"".join(parts))
    if len(parts) != 1:
        # Length-prefixing means splitting differently changes the digest
        # (except the trivial single-part identity case).
        assert digest_of(*parts) != joined or parts == [b"".join(parts)]


@given(st.lists(st.binary(max_size=512), min_size=1, max_size=20))
@settings(max_examples=50, deadline=None)
def test_tls_stream_roundtrip(payloads):
    session = establish_session(b"master-secret-00", "c", "s")
    for payload in payloads:
        record = session.client.seal(payload)
        assert session.server.open(record) == payload


@given(
    st.lists(st.binary(min_size=1, max_size=128), min_size=1, max_size=8),
    st.integers(min_value=0, max_value=7),
    st.binary(min_size=1, max_size=16),
)
@settings(max_examples=50, deadline=None)
def test_tls_any_tampered_record_is_rejected(payloads, index, garbage):
    session = establish_session(b"master-secret-00", "c", "s")
    records = [session.client.seal(p) for p in payloads]
    index = index % len(records)
    victim = records[index]
    if victim.ciphertext == garbage:
        return  # not a modification
    forged = dataclasses.replace(victim, ciphertext=garbage)
    for i, record in enumerate(records):
        if i == index:
            with pytest.raises(TlsError):
                session.server.open(forged)
            break
        session.server.open(record)


@given(st.text(min_size=1, max_size=20), st.text(min_size=1, max_size=20))
@settings(max_examples=100, deadline=None)
def test_derived_keys_injective_in_labels(a, b):
    master = b"master-secret-00"
    if a != b:
        assert derive_key(master, a) != derive_key(master, b)
