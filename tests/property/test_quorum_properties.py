"""Property-based tests for the quorum arithmetic the design rests on."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hybster.config import ClusterConfig


@given(st.integers(min_value=1, max_value=20))
@settings(max_examples=50, deadline=None)
def test_write_and_read_quorums_always_intersect(f):
    """Section IV-B: a completed write's f+1 authenticated replies and a
    fast read's f+1 cache entries must overlap in >= 1 Troxy — for every
    f, and for every possible choice of the two quorums."""
    config = ClusterConfig(f=f)
    n = config.n
    write_quorum = config.reply_quorum
    read_quorum = 1 + f  # local troxy + f random remotes
    # Worst case: the two quorums are chosen maximally disjoint.
    assert write_quorum + read_quorum > n


@given(st.integers(min_value=1, max_value=20))
@settings(max_examples=50, deadline=None)
def test_commit_quorums_intersect_in_a_correct_replica_or_counter(f):
    """Two commit quorums of f+1 in 2f+1 intersect in >= 1 replica; with
    trusted counters that single replica cannot equivocate, which is the
    hybrid model's 2f+1 justification."""
    config = ClusterConfig(f=f)
    assert 2 * config.commit_quorum > config.n


@given(st.integers(min_value=1, max_value=20), st.integers(min_value=0, max_value=20))
@settings(max_examples=100, deadline=None)
def test_liveness_headroom(f, crashed):
    """With at most f crashed replicas, a commit quorum still exists."""
    config = ClusterConfig(f=f)
    crashed = min(crashed, f)
    alive = config.n - crashed
    assert alive >= config.commit_quorum


@given(st.integers(min_value=1, max_value=20))
@settings(max_examples=50, deadline=None)
def test_byzantine_replies_cannot_outvote(f):
    """f identical wrong replies never satisfy the f+1 voter."""
    config = ClusterConfig(f=f)
    assert f < config.reply_quorum
