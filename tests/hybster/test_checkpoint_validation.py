"""Checkpoint-message validation and stabilization rules."""

import pytest

from repro.apps.kvstore import KvStore, put
from repro.bench.clusters import build_baseline
from repro.crypto import sha256
from repro.hybster.config import ClusterConfig
from repro.hybster.messages import Checkpoint, Tagged


@pytest.fixture
def cluster():
    config = ClusterConfig(f=1, checkpoint_interval=4)
    return build_baseline(seed=131, app_factory=KvStore, config=config)


def run(cluster, until=2.0):
    cluster.env.run(until=cluster.env.now + until)


def test_checkpoint_with_bad_tag_rejected(cluster):
    replica = cluster.replicas[0]
    forged = Tagged(
        Checkpoint(4, sha256(b"state"), "replica-1"), "replica-1", b"\x00" * 32
    )
    replica.dispatch(forged)
    run(cluster)
    assert replica.stats.invalid_messages == 1
    assert replica.stable_seq == 0


def test_single_checkpoint_vote_is_not_stable(cluster):
    replica = cluster.replicas[0]
    other = cluster.replicas[1]
    checkpoint = Checkpoint(4, sha256(b"claimed-state"), other.replica_id)
    replica.dispatch(other._tagged(checkpoint))
    run(cluster)
    assert replica.stable_seq == 0  # one vote < f+1


def test_mismatched_digests_do_not_stabilize(cluster):
    replica = cluster.replicas[0]
    r1, r2 = cluster.replicas[1], cluster.replicas[2]
    replica.dispatch(r1._tagged(Checkpoint(4, sha256(b"state-A"), r1.replica_id)))
    replica.dispatch(r2._tagged(Checkpoint(4, sha256(b"state-B"), r2.replica_id)))
    run(cluster)
    assert replica.stable_seq == 0  # two votes, but they disagree


def test_matching_quorum_stabilizes(cluster):
    replica = cluster.replicas[0]
    r1, r2 = cluster.replicas[1], cluster.replicas[2]
    digest = sha256(b"agreed-state")
    replica.dispatch(r1._tagged(Checkpoint(4, digest, r1.replica_id)))
    replica.dispatch(r2._tagged(Checkpoint(4, digest, r2.replica_id)))
    run(cluster)
    assert replica.stable_seq == 4


def test_stable_seq_never_regresses(cluster):
    replica = cluster.replicas[0]
    r1, r2 = cluster.replicas[1], cluster.replicas[2]
    digest8 = sha256(b"later")
    for peer in (r1, r2):
        replica.dispatch(peer._tagged(Checkpoint(8, digest8, peer.replica_id)))
    run(cluster)
    assert replica.stable_seq == 8
    digest4 = sha256(b"earlier")
    for peer in (r1, r2):
        replica.dispatch(peer._tagged(Checkpoint(4, digest4, peer.replica_id)))
    run(cluster)
    assert replica.stable_seq == 8  # old checkpoints cannot roll it back


def test_checkpoints_emitted_on_interval(cluster):
    client = cluster.new_client(read_optimization=False)

    def driver():
        for i in range(9):
            yield from client.invoke(put(f"k{i}", b"v"))

    cluster.env.process(driver())
    run(cluster, until=20.0)
    for replica in cluster.replicas:
        # Executions 1..9 -> checkpoints at 4 and 8, both stabilized.
        assert replica.stable_seq == 8
        assert replica.stats.checkpoints_stable >= 2
