"""Unit tests for the catch-up machinery (FetchOrders / state transfer)."""

import pytest

from repro.apps.kvstore import KvStore, put
from repro.bench.clusters import build_baseline
from repro.hybster.messages import FetchOrders, StateRequest, StateResponse


def make_cluster(seed=101, **config_kwargs):
    from repro.hybster.config import ClusterConfig

    config = ClusterConfig(f=1, **config_kwargs)
    return build_baseline(seed=seed, app_factory=KvStore, config=config)


def run(cluster, until=5.0):
    cluster.env.run(until=cluster.env.now + until)


def seed_traffic(cluster, count=5):
    client = cluster.new_client(read_optimization=False)

    def driver():
        for i in range(count):
            yield from client.invoke(put(f"k{i}", b"v"))

    cluster.env.process(driver())
    run(cluster, 20.0)
    return client


def test_fetch_orders_resends_from_log():
    cluster = make_cluster()
    seed_traffic(cluster, 5)
    leader, follower = cluster.replicas[0], cluster.replicas[1]
    sent_before = cluster.net.messages_sent
    fetch = follower._tagged(FetchOrders(0, 1, 3, follower.replica_id))
    leader.dispatch(fetch)
    run(cluster)
    assert cluster.net.messages_sent - sent_before == 3  # three ORDER resends


def test_fetch_orders_with_bad_tag_rejected():
    cluster = make_cluster(seed=102)
    seed_traffic(cluster, 3)
    leader = cluster.replicas[0]
    from repro.hybster.messages import Tagged

    forged = Tagged(FetchOrders(0, 1, 2, "replica-1"), "replica-1", b"\x00" * 32)
    invalid_before = leader.stats.invalid_messages
    leader.dispatch(forged)
    run(cluster)
    assert leader.stats.invalid_messages == invalid_before + 1


def test_state_request_ignored_when_not_ahead():
    cluster = make_cluster(seed=103)
    seed_traffic(cluster, 3)  # below any checkpoint: stable_seq == 0
    leader, follower = cluster.replicas[0], cluster.replicas[1]
    sent_before = cluster.net.messages_sent
    request = follower._tagged(StateRequest(5, follower.replica_id))
    leader.dispatch(request)
    run(cluster)
    assert cluster.net.messages_sent == sent_before  # nothing newer to offer


def test_state_request_answered_from_stable_checkpoint():
    cluster = make_cluster(seed=104, checkpoint_interval=4)
    seed_traffic(cluster, 10)
    leader, follower = cluster.replicas[0], cluster.replicas[1]
    assert leader.stable_seq >= 8
    responses = []
    original_send = cluster.net.send

    def spy_send(src, dst, payload, size=None, **kwargs):
        from repro.hybster.messages import Tagged

        if isinstance(payload, Tagged) and isinstance(payload.msg, StateResponse):
            responses.append(payload.msg)
        return original_send(src, dst, payload, size, **kwargs)

    cluster.net.send = spy_send
    request = follower._tagged(StateRequest(0, follower.replica_id))
    leader.dispatch(request)
    run(cluster)
    assert len(responses) == 1
    assert responses[0].seq == leader.stable_seq
    assert responses[0].snapshot == leader.stable_snapshot
    assert responses[0].high_water == leader.next_exec - 1


def test_state_response_requires_corroboration():
    """A single unsupported StateResponse must not be installed."""
    cluster = make_cluster(seed=105, checkpoint_interval=4)
    seed_traffic(cluster, 10)
    follower = cluster.replicas[1]
    # Reset the follower far behind with no checkpoint votes.
    lonely = StateResponse(999, b"\xfftotally-made-up", 999, "replica-2")
    tagged = cluster.replicas[2]._tagged(lonely)
    next_exec_before = follower.next_exec
    follower.dispatch(tagged)
    run(cluster)
    assert follower.next_exec == next_exec_before  # not installed
    assert follower.stats.state_transfers == 0


def test_message_wire_sizes():
    fetch = FetchOrders(0, 1, 5, "replica-1")
    assert fetch.wire_size > 24
    request = StateRequest(3, "replica-1")
    assert request.wire_size > 8
    response = StateResponse(8, b"x" * 100, 9, "replica-0")
    assert response.wire_size > 100
    # auth bytes bind every field
    assert StateResponse(8, b"x", 9, "a").auth_bytes() != StateResponse(9, b"x", 9, "a").auth_bytes()
    assert StateResponse(8, b"x", 9, "a").auth_bytes() != StateResponse(8, b"y", 9, "a").auth_bytes()
    assert FetchOrders(0, 1, 5, "a").auth_bytes() != FetchOrders(0, 1, 6, "a").auth_bytes()
