"""Adversarial validation of view-change-era messages."""

import pytest

from repro.apps.base import Operation, OpKind, Payload
from repro.apps.kvstore import KvStore
from repro.bench.clusters import build_baseline
from repro.crypto import sha256
from repro.hybster.messages import NewView, Order, Request, ViewChange
from repro.crypto.primitives import digest_of


@pytest.fixture
def cluster():
    return build_baseline(seed=121, app_factory=KvStore)


def run(cluster, until=2.0):
    cluster.env.run(until=cluster.env.now + until)


def make_vc(replica, new_view, stable_seq=0, prepared=()):
    prepared_digest = digest_of(*[order.digest() for order in prepared])
    content = ViewChange.content_digest(
        new_view, stable_seq, prepared_digest, replica.replica_id
    )
    replica._ensure_counter("viewchange")
    cert = replica.counters.certify_at(
        "viewchange", replica.counters.current("viewchange") + 1, content
    )
    return ViewChange(
        new_view, stable_seq, replica.app.snapshot(), tuple(prepared),
        replica.replica_id, cert,
    )


def test_new_view_from_wrong_leader_rejected(cluster):
    follower = cluster.replicas[2]
    impostor = cluster.replicas[0]  # leader of view 0, NOT of view 1
    vcs = tuple(make_vc(r, 1) for r in cluster.replicas[:2])
    impostor._ensure_counter("newview")
    content = NewView.content_digest(1, digest_of(), impostor.replica_id)
    cert = impostor.counters.certify_at("newview", 1, content)
    nv = NewView(1, vcs, (), impostor.replica_id, cert)
    follower.dispatch(nv)
    run(cluster)
    assert follower.view == 0
    assert follower.stats.invalid_messages == 1


def test_new_view_with_too_few_viewchanges_rejected(cluster):
    follower = cluster.replicas[2]
    legit_leader = cluster.replicas[1]  # leader of view 1
    vcs = (make_vc(legit_leader, 1),)  # only 1 < f+1
    legit_leader._ensure_counter("newview")
    content = NewView.content_digest(1, digest_of(), legit_leader.replica_id)
    cert = legit_leader.counters.certify_at("newview", 1, content)
    nv = NewView(1, vcs, (), legit_leader.replica_id, cert)
    follower.dispatch(nv)
    run(cluster)
    assert follower.view == 0
    assert follower.stats.invalid_messages == 1


def test_new_view_with_forged_cert_rejected(cluster):
    from repro.crypto import KeyRing
    from repro.sgx.counters import TrustedCounterSubsystem

    follower = cluster.replicas[2]
    outsider = TrustedCounterSubsystem("evil", KeyRing(b"fake-master-00000").troxy_group())
    outsider.create("newview")
    vcs = tuple(make_vc(r, 1) for r in cluster.replicas[:2])
    content = NewView.content_digest(1, digest_of(), "replica-1")
    cert = outsider.certify_next("newview", content)
    nv = NewView(1, vcs, (), "replica-1", cert)
    follower.dispatch(nv)
    run(cluster)
    assert follower.view == 0
    assert follower.stats.invalid_messages == 1


def test_stale_new_view_ignored(cluster):
    """A NewView for a view we already passed is a no-op."""
    follower = cluster.replicas[2]
    follower.view = 3
    legit = cluster.replicas[1]
    vcs = tuple(make_vc(r, 1) for r in cluster.replicas[:2])
    legit._ensure_counter("newview")
    content = NewView.content_digest(1, digest_of(), legit.replica_id)
    cert = legit.counters.certify_at("newview", 1, content)
    follower.dispatch(NewView(1, vcs, (), legit.replica_id, cert))
    run(cluster)
    assert follower.view == 3


def test_view_change_with_forged_cert_rejected(cluster):
    from repro.crypto import KeyRing
    from repro.sgx.counters import TrustedCounterSubsystem

    follower = cluster.replicas[2]
    outsider = TrustedCounterSubsystem("evil", KeyRing(b"fake-master-00000").troxy_group())
    outsider.create("viewchange")
    content = ViewChange.content_digest(1, 0, digest_of(), "replica-0")
    cert = outsider.certify_next("viewchange", content)
    vc = ViewChange(1, 0, b"", (), "replica-0", cert)
    follower.dispatch(vc)
    run(cluster)
    assert follower.stats.invalid_messages == 1
    assert follower._view_change_pending is None
