"""Unit tests for cluster configuration and secure envelopes."""

import dataclasses

import pytest

from repro.crypto import TlsError, establish_session
from repro.hybster.config import ClusterConfig
from repro.hybster.messages import Request
from repro.hybster.secure import open_body, seal_body
from repro.apps.base import Operation, OpKind, Payload


def test_config_replica_counts():
    config = ClusterConfig(f=1)
    assert config.n == 3
    assert config.commit_quorum == 2
    assert config.reply_quorum == 2
    config2 = ClusterConfig(f=2)
    assert config2.n == 5
    assert config2.commit_quorum == 3


def test_config_leader_rotation():
    config = ClusterConfig(f=1)
    assert config.leader_of(0) == "replica-0"
    assert config.leader_of(1) == "replica-1"
    assert config.leader_of(3) == "replica-0"


def test_config_index_of():
    config = ClusterConfig(f=1)
    assert config.index_of("replica-2") == 2
    with pytest.raises(ValueError):
        config.index_of("replica-99")


def test_config_validation():
    with pytest.raises(ValueError):
        ClusterConfig(f=0)
    with pytest.raises(ValueError):
        ClusterConfig(checkpoint_interval=0)


def make_request():
    op = Operation(OpKind.WRITE, "set", "k", Payload(b"v"))
    return Request("client-1", 1, op, origin="replica-0")


def test_envelope_roundtrip():
    session = establish_session(b"secret-material!", "client-1", "replica-0")
    request = make_request()
    envelope = seal_body(session.client, request)
    assert open_body(session.server, envelope) is request


def test_envelope_body_swap_detected():
    """A man in the middle replacing the body is caught even though the
    TLS record itself is untouched."""
    session = establish_session(b"secret-material!", "client-1", "replica-0")
    request = make_request()
    envelope = seal_body(session.client, request)
    other_op = Operation(OpKind.WRITE, "set", "k", Payload(b"EVIL"))
    swapped = dataclasses.replace(
        envelope, body=dataclasses.replace(request, op=other_op)
    )
    with pytest.raises(TlsError, match="does not match sealed digest"):
        open_body(session.server, swapped)


def test_envelope_wire_size():
    session = establish_session(b"secret-material!", "client-1", "replica-0")
    request = make_request()
    envelope = seal_body(session.client, request)
    assert envelope.wire_size > request.wire_size
