"""Unit tests for ClientMachine routing and BftClient demux."""

import pytest

from repro.apps.base import Payload
from repro.apps.kvstore import KvStore, get, put
from repro.bench.clusters import build_baseline
from repro.hybster.client import ClientMachine
from repro.hybster.messages import Reply
from repro.hybster.secure import seal_body
from repro.crypto import establish_session
from repro.sim import Environment, Network, RngTree


def test_machine_routes_by_client_id():
    env = Environment()
    net = Network(env, rng_tree=RngTree(1))
    node = net.add_node("m")
    machine = ClientMachine(env, net, node)
    inbox_a = machine.register("client-a")
    inbox_b = machine.register("client-b")

    session = establish_session(b"master-secret-00", "client-a", "server")
    reply = Reply("server", "client-a", 1, Payload(b"r"), b"\x00" * 32)
    envelope = seal_body(session.server, reply)

    class Msg:
        payload = envelope

    machine.deliver(Msg())
    assert len(inbox_a) == 1
    assert len(inbox_b) == 0


def test_machine_drops_unknown_clients_and_noise():
    env = Environment()
    net = Network(env, rng_tree=RngTree(1))
    machine = ClientMachine(env, net, net.add_node("m"))

    class Noise:
        payload = "not an envelope"

    machine.deliver(Noise())  # must not raise

    session = establish_session(b"master-secret-00", "ghost", "server")
    reply = Reply("server", "ghost", 1, Payload(b"r"), b"\x00" * 32)

    class Msg:
        payload = seal_body(session.server, reply)

    machine.deliver(Msg())  # unknown client: silently dropped


def test_concurrent_invocations_on_one_bft_client():
    """The library demultiplexes replies: two overlapping invocations on
    the same client instance both complete correctly (the Prophecy
    middlebox drives the library this way)."""
    cluster = build_baseline(seed=161, app_factory=KvStore)
    client = cluster.new_client(read_optimization=False)
    results = {}

    def driver(tag, op):
        outcome = yield from client.invoke(op)
        results[tag] = outcome.result.content

    cluster.env.process(driver("w1", put("a", b"1")))
    cluster.env.process(driver("w2", put("b", b"2")))
    cluster.env.run(until=20.0)

    def reader():
        outcome = yield from client.invoke(get("a"))
        results["ra"] = outcome.result.content
        outcome = yield from client.invoke(get("b"))
        results["rb"] = outcome.result.content

    cluster.env.process(reader())
    cluster.env.run(until=cluster.env.now + 20.0)
    assert results == {"w1": b"stored", "w2": b"stored", "ra": b"1", "rb": b"2"}


def test_many_concurrent_invocations_all_complete():
    cluster = build_baseline(seed=162, app_factory=KvStore)
    client = cluster.new_client(read_optimization=False)
    done = []

    def driver(i):
        outcome = yield from client.invoke(put(f"k{i}", b"v"))
        done.append(outcome.result.content)

    for i in range(12):
        cluster.env.process(driver(i))
    cluster.env.run(until=30.0)
    assert done == [b"stored"] * 12
    assert client.stats.retransmissions == 0
