"""Unit tests for protocol message types."""

import pytest

from repro.apps.base import Operation, OpKind, Payload
from repro.crypto import KeyRing, sha256
from repro.hybster.messages import (
    Commit,
    Forward,
    Order,
    Reply,
    Request,
    Tagged,
)
from repro.sgx.counters import TrustedCounterSubsystem


def make_request(client="client-1", rid=1, key="k", unordered=False):
    op = Operation(OpKind.WRITE, "set", key, Payload(b"value"))
    return Request(client, rid, op, origin="replica-0", unordered=unordered)


def make_cert(digest):
    ring = KeyRing(b"master-secret-00")
    tss = TrustedCounterSubsystem("tss-0", ring.troxy_group())
    tss.create("c")
    return tss.certify_next("c", digest)


def test_request_digest_stable_and_distinct():
    assert make_request().digest() == make_request().digest()
    assert make_request(rid=1).digest() != make_request(rid=2).digest()
    assert make_request().digest() != make_request(unordered=True).digest()


def test_request_wire_size_includes_operation():
    small = make_request()
    op = Operation(OpKind.WRITE, "set", "k", Payload(b"v", padded_size=4096))
    big = Request("client-1", 1, op, origin="replica-0")
    assert big.wire_size - small.wire_size >= 4000


def test_reply_matches_semantics():
    request = make_request()
    a = Reply("replica-0", "client-1", 1, Payload(b"r"), request.digest())
    b = Reply("replica-1", "client-1", 1, Payload(b"r"), request.digest())
    c = Reply("replica-2", "client-1", 1, Payload(b"DIFFERENT"), request.digest())
    assert a.matches(b)
    assert not a.matches(c)


def test_reply_wire_size_counts_troxy_tag():
    request = make_request()
    bare = Reply("replica-0", "client-1", 1, Payload(b"r"), request.digest())
    tagged = Reply(
        "replica-0", "client-1", 1, Payload(b"r"), request.digest(),
        troxy_tag=b"\x00" * 32,
    )
    assert tagged.wire_size == bare.wire_size + 32


def test_order_content_digest_binds_view_seq_request():
    d = sha256(b"req")
    base = Order.content_digest(0, 1, d)
    assert base != Order.content_digest(1, 1, d)
    assert base != Order.content_digest(0, 2, d)
    assert base != Order.content_digest(0, 1, sha256(b"other"))


def test_commit_content_digest_binds_sender():
    d = sha256(b"req")
    assert Commit.content_digest(0, 1, d, "replica-1") != Commit.content_digest(
        0, 1, d, "replica-2"
    )


def test_order_wire_size_dominated_by_request():
    request = make_request()
    cert = make_cert(sha256(b"x"))
    order = Order(0, 1, request, cert, "replica-0")
    assert order.wire_size > request.wire_size


def test_forward_and_tagged_sizes():
    request = make_request()
    forward = Forward(request, "replica-1")
    tagged = Tagged(forward, "replica-1", b"\x00" * 32)
    assert forward.wire_size > request.wire_size
    assert tagged.wire_size == forward.wire_size + 32


def test_forward_auth_bytes_cover_sender():
    request = make_request()
    assert Forward(request, "replica-1").auth_bytes() != Forward(
        request, "replica-2"
    ).auth_bytes()
