"""Adversarial message validation at the replica level.

Crafts protocol messages directly (valid and forged counter
certificates) and checks the replica's acceptance rules.
"""

import pytest

from repro.apps.base import Operation, OpKind, Payload
from repro.apps.kvstore import KvStore
from repro.bench.clusters import build_baseline
from repro.crypto import KeyRing
from repro.hybster.messages import Commit, Order, Request
from repro.sgx.counters import TrustedCounterSubsystem


@pytest.fixture
def cluster():
    return build_baseline(seed=71, app_factory=KvStore)


def make_request(rid=1):
    op = Operation(OpKind.WRITE, "put", "k", Payload(b"v"))
    return Request("client-x", rid, op, origin="client-machine-0")


def run(cluster, until=2.0):
    cluster.env.run(until=cluster.env.now + until)


def leader_order(cluster, seq, request, view=0, sender=None):
    """A genuinely certified ORDER from the real leader's subsystem."""
    leader = cluster.replicas[0]
    content = Order.content_digest(view, seq, request.digest())
    cert = leader.counters.certify_at(f"order/{view}", seq, content)
    return Order(view, seq, request, cert, sender or leader.replica_id)


def test_follower_accepts_valid_order_and_commits(cluster):
    follower = cluster.replicas[1]
    order = leader_order(cluster, 1, make_request())
    follower.dispatch(order)
    run(cluster)
    assert follower.stats.commits_sent == 1
    assert follower.log[1].order is order


def test_order_from_non_leader_rejected(cluster):
    follower = cluster.replicas[1]
    # replica-2 certifies with its own (genuine) subsystem but is not the
    # leader of view 0.
    impostor = cluster.replicas[2]
    impostor._ensure_counter("order/0")
    request = make_request()
    content = Order.content_digest(0, 1, request.digest())
    cert = impostor.counters.certify_at("order/0", 1, content)
    order = Order(0, 1, request, cert, "replica-2")
    follower.dispatch(order)
    run(cluster)
    assert follower.stats.invalid_messages == 1
    assert follower.stats.commits_sent == 0


def test_order_with_mismatched_counter_value_rejected(cluster):
    follower = cluster.replicas[1]
    leader = cluster.replicas[0]
    request = make_request()
    content = Order.content_digest(0, 1, request.digest())
    cert = leader.counters.certify_at("order/0", 7, content)  # value != seq
    order = Order(0, 1, request, cert, leader.replica_id)
    follower.dispatch(order)
    run(cluster)
    assert follower.stats.invalid_messages == 1


def test_order_with_foreign_group_key_rejected(cluster):
    follower = cluster.replicas[1]
    outsider = TrustedCounterSubsystem(
        "evil", KeyRing(b"not-the-real-master").troxy_group()
    )
    outsider.create("order/0")
    request = make_request()
    content = Order.content_digest(0, 1, request.digest())
    cert = outsider.certify_at("order/0", 1, content)
    order = Order(0, 1, request, cert, "replica-0")
    follower.dispatch(order)
    run(cluster)
    assert follower.stats.invalid_messages == 1


def test_commit_with_wrong_digest_rejected(cluster):
    leader = cluster.replicas[0]
    replica2 = cluster.replicas[2]
    request = make_request()
    # Legitimate order first, committed at the leader.
    order = leader_order(cluster, 1, request)
    # replica-2 certifies a commit whose content digest does not match
    # the claimed fields.
    replica2._ensure_counter("commit/0")
    bogus_content = Commit.content_digest(0, 1, b"\x00" * 32, "replica-2")
    cert = replica2.counters.certify_at("commit/0", 1, bogus_content)
    commit = Commit(0, 1, request.digest(), cert, "replica-2")
    leader.dispatch(commit)
    run(cluster)
    assert leader.stats.invalid_messages == 1


def test_out_of_order_orders_are_buffered_until_gap_fills(cluster):
    follower = cluster.replicas[1]
    first = leader_order(cluster, 1, make_request(1))
    second = leader_order(cluster, 2, make_request(2))
    follower.dispatch(second)  # arrives first
    run(cluster)
    assert follower.stats.commits_sent == 0  # waiting for seq 1
    follower.dispatch(first)
    run(cluster)
    assert follower.stats.commits_sent == 2  # both committed, in order
    assert follower.counters.current("commit/0") == 2


def test_unknown_payload_counted_invalid(cluster):
    replica = cluster.replicas[1]
    replica.dispatch(object())
    run(cluster)
    assert replica.stats.invalid_messages == 1
